"""Figure 10: attack impact in real-world NFT marketplaces.

Generate the synthetic Optimism/Arbitrum snapshot population, scan it
for reorderable price differentials, and aggregate profit opportunity
per chain x frequency tier.  Paper observations to reproduce:

* Arbitrum-deployed collections show higher arbitrage opportunity than
  Optimism ones (higher churn);
* every tier has non-trivial opportunity, with the tiers trading off
  per-event differential (LFT widest) against event count (HFT most).
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis import format_table
from ..config import SnapshotStudyConfig
from ..market import (
    ArbitrageScanner,
    SnapshotStore,
    TierSummary,
    generate_study_collections,
)


def run_fig10(
    config: Optional[SnapshotStudyConfig] = None,
    scanner: Optional[ArbitrageScanner] = None,
) -> List[TierSummary]:
    """Full snapshot study: generate, ingest, scan, summarize."""
    store = SnapshotStore(generate_study_collections(config))
    return (scanner or ArbitrageScanner()).summarize(store)


def render_fig10(summaries: Optional[List[TierSummary]] = None) -> str:
    """Figure 10's cells as a table."""
    data = summaries if summaries is not None else run_fig10()
    rows = [
        (
            cell.chain.value,
            cell.tier.value.upper(),
            cell.collections,
            cell.findings,
            f"{cell.total_profit_eth:.3f}",
            f"{cell.mean_profit_eth:.4f}",
        )
        for cell in data
    ]
    return format_table(
        (
            "Chain", "FT tier", "Collections", "Findings",
            "Total profit (ETH)", "Mean/collection (ETH)",
        ),
        rows,
    )
