"""Run-everything orchestration with archived artifacts.

``run_all`` executes every registered experiment at a chosen effort
preset and writes, per experiment, both the rendered text (what the
paper's table/figure shows) and a JSON payload with the structured
results — so a full reproduction run leaves a self-describing artifact
directory behind.  The CLI exposes it as ``parole run-all``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ReproError
from .common import EffortPreset, QUICK
from . import (
    defense_eval,
    fig5_cases,
    fig6_profit,
    fig7_adversarial,
    fig8_learning,
    fig9_solutions,
    fig10_snapshots,
    fig11_solvers,
    table3_gas,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: id, runner, renderer, JSON extractor."""

    experiment_id: str
    description: str
    run: Callable[[EffortPreset], Any]
    render: Callable[[Any], str]
    to_json: Callable[[Any], Any]


def _dataclass_list(items: Any) -> Any:
    if isinstance(items, list):
        return [_dataclass_list(item) for item in items]
    if isinstance(items, dict):
        return {str(k): _dataclass_list(v) for k, v in items.items()}
    if dataclasses.is_dataclass(items) and not isinstance(items, type):
        return _dataclass_list(dataclasses.asdict(items))
    if isinstance(items, (tuple, set)):
        return [_dataclass_list(item) for item in items]
    if hasattr(items, "value") and items.__class__.__module__.startswith("repro"):
        return items.value  # enums
    return items


REGISTRY: Tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        "table3",
        "PT gas/fee behaviour in OpenSea transactions",
        lambda preset: table3_gas.run_table3(),
        table3_gas.render_table3,
        _dataclass_list,
    ),
    ExperimentSpec(
        "fig5",
        "Section VI case studies",
        lambda preset: fig5_cases.run_case_studies(),
        fig5_cases.render_case_studies,
        _dataclass_list,
    ),
    ExperimentSpec(
        "fig6",
        "average profit per IFU vs #IFUs",
        lambda preset: fig6_profit.run_fig6(
            # The paper's grid at FULL; a reduced grid for QUICK runs.
            mempool_sizes=(25, 50, 100) if preset.name == "full" else (10, 25),
            ifu_counts=(1, 2, 3, 4) if preset.name == "full" else (1, 2, 4),
            num_aggregators=10 if preset.name == "full" else 6,
            preset=preset,
        ),
        fig6_profit.render_fig6,
        _dataclass_list,
    ),
    ExperimentSpec(
        "fig7",
        "total profit vs adversarial fraction",
        lambda preset: fig7_adversarial.run_fig7(
            mempool_sizes=(50, 100) if preset.name == "full" else (25, 50),
            fractions=(
                (0.1, 0.2, 0.3, 0.4, 0.5) if preset.name == "full"
                else (0.25, 0.5, 0.75)
            ),
            num_aggregators=10 if preset.name == "full" else 4,
            preset=preset,
        ),
        fig7_adversarial.render_fig7,
        _dataclass_list,
    ),
    ExperimentSpec(
        "fig8",
        "DQN learning curves vs exploration",
        lambda preset: fig8_learning.run_fig8(
            ifu_counts=(1,), mempool_size=12, preset=preset,
            epsilon_decay=0.3 if preset.episodes < 50 else 0.05,
        ),
        fig8_learning.render_fig8,
        _dataclass_list,
    ),
    ExperimentSpec(
        "fig9",
        "KDE of solution sizes",
        lambda preset: fig9_solutions.run_fig9(
            mempool_sizes=(12,), ifu_counts=(1, 2), preset=preset,
        ),
        fig9_solutions.render_fig9,
        lambda curves: [
            {
                "mempool_size": c.mempool_size,
                "num_ifus": c.num_ifus,
                "solution_sizes": list(c.solution_sizes),
                "mode": c.mode,
            }
            for c in curves
        ],
    ),
    ExperimentSpec(
        "fig10",
        "NFT snapshot study",
        lambda preset: fig10_snapshots.run_fig10(),
        fig10_snapshots.render_fig10,
        _dataclass_list,
    ),
    ExperimentSpec(
        "fig11",
        "DQN inference vs NLP solvers",
        lambda preset: fig11_solvers.run_fig11(
            sizes=(
                (5, 10, 25, 50, 100) if preset.name == "full"
                else (5, 10, 25)
            ),
        ),
        fig11_solvers.render_fig11,
        _dataclass_list,
    ),
    ExperimentSpec(
        "defense",
        "Section VIII detection + demotion",
        lambda preset: defense_eval.run_defense_eval(
            thresholds=(0.01, 0.3), rounds=2, preset=preset,
        ),
        defense_eval.render_defense_eval,
        _dataclass_list,
    ),
)


@dataclass
class RunRecord:
    """Outcome of one experiment run."""

    experiment_id: str
    elapsed_seconds: float
    text_path: str
    json_path: str
    ok: bool
    error: Optional[str] = None


def run_all(
    output_dir: pathlib.Path,
    preset: EffortPreset = QUICK,
    only: Optional[List[str]] = None,
) -> List[RunRecord]:
    """Run every (or the selected) experiment, archiving artifacts."""
    output_dir = pathlib.Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    wanted = set(only) if only else None
    unknown = (wanted or set()) - {spec.experiment_id for spec in REGISTRY}
    if unknown:
        raise ReproError(f"unknown experiment ids: {sorted(unknown)}")
    records: List[RunRecord] = []
    for spec in REGISTRY:
        if wanted is not None and spec.experiment_id not in wanted:
            continue
        text_path = output_dir / f"{spec.experiment_id}.txt"
        json_path = output_dir / f"{spec.experiment_id}.json"
        started = time.perf_counter()
        try:
            result = spec.run(preset)
            text_path.write_text(spec.render(result) + "\n")
            json_path.write_text(
                json.dumps(
                    {
                        "experiment": spec.experiment_id,
                        "description": spec.description,
                        "preset": preset.name,
                        "data": spec.to_json(result),
                    },
                    indent=2,
                    default=str,
                )
            )
            records.append(
                RunRecord(
                    experiment_id=spec.experiment_id,
                    elapsed_seconds=time.perf_counter() - started,
                    text_path=str(text_path),
                    json_path=str(json_path),
                    ok=True,
                )
            )
        except Exception as exc:  # archive partial failures, keep going
            records.append(
                RunRecord(
                    experiment_id=spec.experiment_id,
                    elapsed_seconds=time.perf_counter() - started,
                    text_path=str(text_path),
                    json_path=str(json_path),
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
    return records
