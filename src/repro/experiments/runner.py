"""Run-everything orchestration with archived artifacts.

``run_all`` executes every registered experiment at a chosen effort
preset and writes, per experiment, the rendered text (what the paper's
table/figure shows), a JSON payload with the structured results, and a
run manifest (``<id>.manifest.json`` — config hash, seed, git revision,
duration, peak memory, and a dump of every telemetry metric the run
recorded) — so a full reproduction run leaves a self-describing
artifact directory behind.  Passing a :class:`~repro.config.TelemetryConfig`
additionally records a JSONL span trace next to the results.  The CLI
exposes it as ``parole run-all``.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from ..config import SnapshotStudyConfig, TelemetryConfig
from ..errors import ReproError
from ..matrix.runner import (
    matrix_to_json,
    render_matrix,
    run_matrix_experiment,
)
from ..parallel import SerialRunner, TaskRunner, get_runner
from ..store import CodecError, ResultStore, decode, encode, experiment_key
from ..telemetry import ManifestRecorder, configure, get_metrics, get_tracer
from .common import EffortPreset, QUICK
from . import (
    defense_eval,
    fig5_cases,
    fig6_profit,
    fig7_adversarial,
    fig8_learning,
    fig9_solutions,
    fig10_snapshots,
    fig11_solvers,
    table3_gas,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: id, runner, renderer, JSON extractor.

    ``run`` receives the effort preset, the RNG seed *and* the task
    runner, so every stochastic experiment is seeded explicitly from
    the spec (the seed lands in the run manifest) and its sweep fans
    out over the shared execution fabric.  ``seed`` is the default used
    by ``run_all``; deterministic experiments simply ignore both the
    seed and the runner.
    """

    experiment_id: str
    description: str
    run: Callable[[EffortPreset, int, TaskRunner], Any]
    render: Callable[[Any], str]
    to_json: Callable[[Any], Any]
    seed: int = 0


def _dataclass_list(items: Any) -> Any:
    if isinstance(items, list):
        return [_dataclass_list(item) for item in items]
    if isinstance(items, dict):
        return {str(k): _dataclass_list(v) for k, v in items.items()}
    if dataclasses.is_dataclass(items) and not isinstance(items, type):
        return _dataclass_list(dataclasses.asdict(items))
    if isinstance(items, (tuple, set)):
        return [_dataclass_list(item) for item in items]
    if isinstance(items, enum.Enum):
        return items.value
    return items


REGISTRY: Tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        "table3",
        "PT gas/fee behaviour in OpenSea transactions",
        table3_gas.run_table3,
        table3_gas.render_table3,
        _dataclass_list,
    ),
    ExperimentSpec(
        "fig5",
        "Section VI case studies",
        fig5_cases.run_case_studies,
        fig5_cases.render_case_studies,
        _dataclass_list,
    ),
    ExperimentSpec(
        "fig6",
        "average profit per IFU vs #IFUs",
        lambda preset, seed, runner: fig6_profit.run_fig6(
            # The paper's grid at FULL; a reduced grid for QUICK runs.
            mempool_sizes=(25, 50, 100) if preset.name == "full" else (10, 25),
            ifu_counts=(1, 2, 3, 4) if preset.name == "full" else (1, 2, 4),
            num_aggregators=10 if preset.name == "full" else 6,
            preset=preset,
            seed=seed,
            runner=runner,
        ),
        fig6_profit.render_fig6,
        _dataclass_list,
    ),
    ExperimentSpec(
        "fig7",
        "total profit vs adversarial fraction",
        lambda preset, seed, runner: fig7_adversarial.run_fig7(
            mempool_sizes=(50, 100) if preset.name == "full" else (25, 50),
            fractions=(
                (0.1, 0.2, 0.3, 0.4, 0.5) if preset.name == "full"
                else (0.25, 0.5, 0.75)
            ),
            num_aggregators=10 if preset.name == "full" else 4,
            preset=preset,
            seed=seed,
            runner=runner,
        ),
        fig7_adversarial.render_fig7,
        _dataclass_list,
    ),
    ExperimentSpec(
        "fig8",
        "DQN learning curves vs exploration",
        lambda preset, seed, runner: fig8_learning.run_fig8(
            ifu_counts=(1,), mempool_size=12, preset=preset,
            epsilon_decay=0.3 if preset.episodes < 50 else 0.05,
            seed=seed,
            runner=runner,
        ),
        fig8_learning.render_fig8,
        _dataclass_list,
    ),
    ExperimentSpec(
        "fig9",
        "KDE of solution sizes",
        lambda preset, seed, runner: fig9_solutions.run_fig9(
            mempool_sizes=(12,), ifu_counts=(1, 2), preset=preset,
            seed=seed,
            runner=runner,
        ),
        fig9_solutions.render_fig9,
        lambda curves: [
            {
                "mempool_size": c.mempool_size,
                "num_ifus": c.num_ifus,
                "solution_sizes": list(c.solution_sizes),
                "mode": c.mode,
            }
            for c in curves
        ],
    ),
    ExperimentSpec(
        "fig10",
        "NFT snapshot study",
        lambda preset, seed, runner: fig10_snapshots.run_fig10(
            SnapshotStudyConfig(seed=seed)
        ),
        fig10_snapshots.render_fig10,
        _dataclass_list,
    ),
    ExperimentSpec(
        "fig11",
        "DQN inference vs NLP solvers",
        lambda preset, seed, runner: fig11_solvers.run_fig11(
            sizes=(
                (5, 10, 25, 50, 100) if preset.name == "full"
                else (5, 10, 25)
            ),
            seed=seed,
            runner=runner,
        ),
        fig11_solvers.render_fig11,
        _dataclass_list,
    ),
    ExperimentSpec(
        "defense",
        "Section VIII detection + demotion",
        lambda preset, seed, runner: defense_eval.run_defense_eval(
            thresholds=(0.01, 0.3), rounds=2, preset=preset, seed=seed,
            runner=runner,
        ),
        defense_eval.render_defense_eval,
        _dataclass_list,
    ),
    ExperimentSpec(
        "matrix",
        "strategies x defenses x fault-plans leaderboard",
        run_matrix_experiment,
        render_matrix,
        matrix_to_json,
    ),
)


@dataclass
class SpecOutcome:
    """What one :func:`execute_spec` call produced.

    ``result`` is the live experiment result object on a cold run; on a
    cache hit it is the decoded stored result, or ``None`` when the
    result object was not storable (the rendered ``text``/``json_text``
    are always present and byte-identical to the cold run's).
    """

    result: Any
    text: str
    json_text: str
    cache_hit: bool = False


def execute_spec(
    spec: ExperimentSpec,
    preset: EffortPreset = QUICK,
    seed: Optional[int] = None,
    task_runner: Optional[TaskRunner] = None,
    store: Optional[ResultStore] = None,
) -> SpecOutcome:
    """Run one experiment through the uniform spec interface.

    The single execution path shared by :func:`run_all` and the
    :mod:`repro.api` facade.  With a ``store``, the whole experiment is
    memoized under :func:`~repro.store.keys.experiment_key` — a warm
    call returns the archived text/JSON renderings without recomputing
    anything — and the task runner's per-cell cache is pointed at the
    same store for the duration of the call.
    """
    seed = spec.seed if seed is None else seed
    runner = task_runner if task_runner is not None else SerialRunner()
    key = experiment_key(
        spec.experiment_id, preset.name, {"preset": preset}, seed
    )
    if store is not None:
        payload, found = store.fetch(key)
        if found:
            get_metrics().counter("store.experiment_hits").inc()
            result = None
            if payload.get("result") is not None:
                try:
                    result = decode(payload["result"])
                except CodecError:
                    result = None
            return SpecOutcome(
                result=result,
                text=payload["text"],
                json_text=payload["json"],
                cache_hit=True,
            )
        get_metrics().counter("store.experiment_misses").inc()
    previous_store = getattr(runner, "store", None)
    if store is not None:
        runner.store = store
    try:
        with get_tracer().span("experiment", experiment=spec.experiment_id):
            result = spec.run(preset, seed, runner)
    finally:
        runner.store = previous_store
    text = spec.render(result) + "\n"
    json_text = json.dumps(
        {
            "experiment": spec.experiment_id,
            "description": spec.description,
            "preset": preset.name,
            "seed": seed,
            "data": spec.to_json(result),
        },
        indent=2,
        default=str,
    )
    if store is not None:
        try:
            encoded = encode(result)
        except CodecError:
            encoded = None
        store.put(key, {"text": text, "json": json_text, "result": encoded})
    return SpecOutcome(result=result, text=text, json_text=json_text)


@dataclass
class RunRecord:
    """Outcome of one experiment run."""

    experiment_id: str
    elapsed_seconds: float
    text_path: str
    json_path: str
    ok: bool
    error: Optional[str] = None
    manifest_path: Optional[str] = None
    #: Per-experiment cache accounting (None when no store was active):
    #: experiment_hit flag, task hit/miss deltas and the task hit ratio.
    cache: Optional[dict] = None


def _cache_summary(
    store: ResultStore,
    before: dict,
    experiment_hit: bool,
) -> dict:
    """Task-cache deltas for one experiment, plus its hit ratio."""
    after = store.stats.snapshot()
    delta = {k: after[k] - before.get(k, 0) for k in after}
    looked_up = delta["hits"] + delta["misses"]
    return {
        "experiment_hit": experiment_hit,
        "hits": delta["hits"],
        "misses": delta["misses"],
        "puts": delta["puts"],
        "bytes_written": delta["bytes_written"],
        "bytes_read": delta["bytes_read"],
        "hit_ratio": delta["hits"] / looked_up if looked_up else 0.0,
    }


def run_all(
    output_dir: pathlib.Path,
    preset: EffortPreset = QUICK,
    only: Optional[List[str]] = None,
    telemetry: Optional[TelemetryConfig] = None,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    workers: Optional[List[str]] = None,
    schedule: Optional[str] = None,
) -> List[RunRecord]:
    """Run every (or the selected) experiment, archiving artifacts.

    Each experiment gets a ``<id>.manifest.json`` next to its results.
    When ``telemetry`` is enabled, metrics and a JSONL span trace
    (``trace.jsonl`` in ``output_dir`` unless the config names a path)
    are recorded for the whole run, and each manifest snapshots the
    registry as of that experiment's completion.

    ``jobs`` selects the execution fabric backend each experiment's
    internal sweep fans out over: ``1`` (default) runs serially in
    process, ``N > 1`` uses a pool of N worker processes, and a
    negative value auto-sizes to the machine.  ``workers`` (a list of
    ``host:port`` specs) routes the sweeps to remote ``parole worker
    serve`` hosts instead, and ``schedule="static"`` pins the chunked
    pool over the default work-stealing scheduler.  Results are
    identical for every ``jobs``/``workers``/``schedule`` value; worker
    telemetry is merged back into the parent registry, so manifests
    carry the complete stats either way.

    With a ``store``, completed experiments and their individual sweep
    cells are memoized content-addressed (see :mod:`repro.store`): a
    killed run resumes from the last completed task, and a warm rerun
    replays every artifact byte-identically from cache.  Each record
    (and manifest) carries its per-experiment hit accounting.
    """
    output_dir = pathlib.Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    wanted = set(only) if only else None
    unknown = (wanted or set()) - {spec.experiment_id for spec in REGISTRY}
    if unknown:
        raise ReproError(f"unknown experiment ids: {sorted(unknown)}")
    session = None
    if telemetry is not None and telemetry.enabled:
        if telemetry.trace_path is None:
            telemetry = dataclasses.replace(
                telemetry, trace_path=str(output_dir / "trace.jsonl")
            )
        session = configure(telemetry)
    records: List[RunRecord] = []
    try:
        with get_runner(
            jobs, store=store, workers=workers, schedule=schedule
        ) as task_runner:
            for spec in REGISTRY:
                if wanted is not None and spec.experiment_id not in wanted:
                    continue
                records.append(
                    _run_one(spec, preset, output_dir, task_runner, store)
                )
        if session is not None:
            get_tracer().emit_metrics("run_all.final")
    finally:
        if session is not None:
            session.shutdown()
    return records


def _run_one(
    spec: ExperimentSpec,
    preset: EffortPreset,
    output_dir: pathlib.Path,
    task_runner: Optional[TaskRunner] = None,
    store: Optional[ResultStore] = None,
) -> RunRecord:
    text_path = output_dir / f"{spec.experiment_id}.txt"
    json_path = output_dir / f"{spec.experiment_id}.json"
    started = time.perf_counter()
    recorder = ManifestRecorder(
        experiment_id=spec.experiment_id,
        description=spec.description,
        preset=preset.name,
        seed=spec.seed,
        config={"preset": preset, "seed": spec.seed},
        out_dir=output_dir,
    )
    stats_before = store.stats.snapshot() if store is not None else {}
    cache_info: Optional[dict] = None
    try:
        with recorder:
            outcome = execute_spec(
                spec, preset, task_runner=task_runner, store=store
            )
            text_path.write_text(outcome.text)
            json_path.write_text(outcome.json_text)
            recorder.add_artifact("text", text_path)
            recorder.add_artifact("json", json_path)
            if store is not None:
                cache_info = _cache_summary(
                    store, stats_before, outcome.cache_hit
                )
                recorder.extra["cache"] = cache_info
            get_metrics().counter("experiments.completed").inc()
        return RunRecord(
            experiment_id=spec.experiment_id,
            elapsed_seconds=time.perf_counter() - started,
            text_path=str(text_path),
            json_path=str(json_path),
            ok=True,
            manifest_path=str(recorder.path) if recorder.path else None,
            cache=cache_info,
        )
    except Exception as exc:  # archive partial failures, keep going
        get_metrics().counter("experiments.failed").inc()
        if store is not None:
            cache_info = _cache_summary(store, stats_before, False)
        return RunRecord(
            experiment_id=spec.experiment_id,
            elapsed_seconds=time.perf_counter() - started,
            text_path=str(text_path),
            json_path=str(json_path),
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            manifest_path=str(recorder.path) if recorder.path else None,
            cache=cache_info,
        )
