"""Figure 11: DQN inference vs NLP solvers (time and memory).

For mempool sizes {5, 10, 25, 50, 100}: profile the DQN's greedy
inference and the APOPT/MINOS/SNOPT stand-ins on the same reordering
problem.  Paper observations to reproduce:

* DQN inference time grows near-linearly with mempool size and is the
  fastest overall (SNOPT may edge it out only at N=5);
* the NLP solvers' time and memory blow up super-linearly;
* DQN memory stays near-flat (the Q-network dominates and is fixed per
  problem size class).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis import format_table
from ..config import GenTranSeqConfig, WorkloadConfig
from ..parallel import SerialRunner, Task, TaskRunner
from ..solvers import (
    ApoptLikeSolver,
    DQNInferenceSolver,
    MinosLikeSolver,
    ReorderProblem,
    SnoptLikeSolver,
    profile_solver,
)
from ..workloads import generate_workload
from .common import mempool_admit

DEFAULT_SIZES: Tuple[int, ...] = (5, 10, 25, 50, 100)


@dataclass(frozen=True)
class Fig11Row:
    """One (solver, mempool size) measurement."""

    solver_name: str
    mempool_size: int
    elapsed_seconds: float
    peak_memory_kib: float
    profit_eth: float


def _problem_for(size: int, seed: int) -> ReorderProblem:
    workload = generate_workload(
        WorkloadConfig(
            mempool_size=size,
            num_users=max(12, size // 4),
            num_ifus=1,
            min_ifu_involvement=max(2, size // 10),
            seed=seed,
        )
    )
    return ReorderProblem(
        pre_state=workload.pre_state,
        # Fee-priority admission: behavior-neutral, records mempool stats.
        transactions=mempool_admit(workload),
        ifus=workload.ifus,
    )


def _fig11_size(
    size: int,
    dqn_train_episodes: int,
    nlp_restarts: int,
    nlp_max_iterations: int,
    *,
    seed: int,
) -> List[Fig11Row]:
    """Profile every solver at one mempool size (one fabric task)."""
    problem = _problem_for(size, seed)
    dqn = DQNInferenceSolver(
        config=GenTranSeqConfig(
            episodes=max(dqn_train_episodes, 1),
            steps_per_episode=40,
            seed=seed,
        ),
        train_episodes=dqn_train_episodes,
        max_swaps=min(size, 50),
    )
    dqn.ensure_trained(problem)
    solvers = [
        (dqn, dqn.model_memory_bytes()),
        (ApoptLikeSolver(restarts=nlp_restarts, max_iterations=nlp_max_iterations), 0),
        (MinosLikeSolver(restarts=nlp_restarts, max_iterations=nlp_max_iterations), 0),
        (SnoptLikeSolver(restarts=nlp_restarts, max_iterations=nlp_max_iterations), 0),
    ]
    rows: List[Fig11Row] = []
    for solver, extra_memory in solvers:
        fresh = _problem_for(size, seed)
        profiled = profile_solver(solver, fresh, extra_memory_bytes=extra_memory)
        rows.append(
            Fig11Row(
                solver_name=solver.name,
                mempool_size=size,
                elapsed_seconds=profiled.elapsed_seconds,
                peak_memory_kib=profiled.peak_memory_kib,
                profit_eth=profiled.result.profit,
            )
        )
    return rows


def run_fig11(
    sizes: Sequence[int] = DEFAULT_SIZES,
    dqn_train_episodes: int = 4,
    nlp_restarts: int = 1,
    nlp_max_iterations: int = 40,
    seed: int = 0,
    runner: Optional[TaskRunner] = None,
) -> List[Fig11Row]:
    """Profile every solver at every mempool size.

    The DQN trains offline first (not billed); the profiled call is the
    greedy inference rollout, mirroring Section VII-F's setup.  Each
    mempool size is one fabric task; note the wall-clock timings this
    figure reports are inherently non-deterministic, so byte-identity
    across backends is not a goal here (solutions and profits still
    are identical).
    """
    runner = runner if runner is not None else SerialRunner()
    tasks = [
        Task(
            fn=_fig11_size,
            args=(size, dqn_train_episodes, nlp_restarts, nlp_max_iterations),
            seed=seed,
            label=f"fig11[mempool={size}]",
        )
        for size in sizes
    ]
    rows: List[Fig11Row] = []
    for size_rows in runner.map(tasks):
        rows.extend(size_rows)
    return rows


def render_fig11(rows: Optional[List[Fig11Row]] = None) -> str:
    """Both panels (time and memory) as one table."""
    data = rows if rows is not None else run_fig11()
    formatted = [
        (
            row.solver_name,
            row.mempool_size,
            f"{row.elapsed_seconds * 1000:.1f} ms",
            f"{row.peak_memory_kib:.0f} KiB",
            f"{row.profit_eth:.4f}",
        )
        for row in data
    ]
    return format_table(
        ("Solver", "Mempool", "Exec time", "Peak memory", "Profit (ETH)"),
        formatted,
    )
