"""Shared experiment plumbing: effort presets and attack rounds."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..config import AttackConfig, GenTranSeqConfig, WorkloadConfig
from ..core import ParoleAttack
from ..core.parole import AttackOutcome
from ..rollup.mempool import BedrockMempool
from ..rollup.transaction import NFTTransaction
from ..workloads import Workload, generate_workload


@dataclass(frozen=True)
class EffortPreset:
    """Training budget preset for experiment sweeps."""

    name: str
    episodes: int
    steps_per_episode: int
    trials: int

    def config(self, seed: int = 0, **overrides: object) -> GenTranSeqConfig:
        """A GENTRANSEQ config at this effort level."""
        base = GenTranSeqConfig(
            episodes=self.episodes,
            steps_per_episode=self.steps_per_episode,
            seed=seed,
        )
        if overrides:
            base = base.with_overrides(**overrides)
        return base


#: CI/benchmark preset: seconds per sweep point, same qualitative shape.
QUICK = EffortPreset(name="quick", episodes=6, steps_per_episode=40, trials=2)

#: Paper-faithful Table II preset.
FULL = EffortPreset(name="full", episodes=100, steps_per_episode=200, trials=5)


def quick_config(seed: int = 0, **overrides: object) -> GenTranSeqConfig:
    """Shorthand for ``QUICK.config(...)``."""
    return QUICK.config(seed=seed, **overrides)


def mempool_admit(workload: Workload) -> Tuple[NFTTransaction, ...]:
    """Run a workload through Bedrock mempool admission.

    Generated workloads stamp strictly decreasing fees (fee-priority
    order == generated order), so collecting the whole pool returns
    exactly the generated sequence — the pass is behavior-neutral, but
    it records the ``mempool.*`` telemetry (submitted/collected counts,
    pending gauge, fee histogram) an experiment's trace and run manifest
    should carry.  If a workload ever violates the fee-order invariant,
    the generated order is kept so results never change.
    """
    pool = BedrockMempool()
    pool.submit_all(workload.transactions)
    collected = pool.collect(len(workload.transactions))
    if collected != tuple(workload.transactions):
        return tuple(workload.transactions)
    return collected


def attack_round(
    mempool_size: int,
    num_ifus: int,
    preset: EffortPreset = QUICK,
    seed: int = 0,
    num_users: int = 20,
) -> AttackOutcome:
    """Generate one workload and run the PAROLE attack on it.

    Returns the attack outcome, whose ``per_ifu_profit`` carries the
    quantities Figures 6 and 7 aggregate.
    """
    workload_config = WorkloadConfig(
        mempool_size=mempool_size,
        num_users=max(num_users, num_ifus + 4),
        num_ifus=num_ifus,
        min_ifu_involvement=max(2, mempool_size // 12),
        seed=seed,
    )
    workload = generate_workload(workload_config)
    attack_config = AttackConfig(
        ifu_accounts=workload.ifus,
        gentranseq=preset.config(seed=seed),
    )
    attack = ParoleAttack(config=attack_config)
    return attack.run(workload.pre_state, workload.transactions)


def shared_pool_round(
    mempool_size: int,
    num_ifus: int,
    num_aggregators: int,
    adversarial_fraction: float,
    preset: EffortPreset = QUICK,
    seed: int = 0,
) -> Tuple[List[AttackOutcome], Workload]:
    """A full round over a shared transaction pool (Figures 6-7).

    One big pool of ``num_aggregators * mempool_size`` transactions is
    generated; aggregators collect fee-priority slices in turn, and a
    random ``adversarial_fraction`` of them run PAROLE on their slice.
    The IFUs' exploitable transactions are finite across the pool, which
    produces the saturation the paper observes for small mempools.
    """
    rng = np.random.default_rng(seed)
    pool_size = num_aggregators * mempool_size
    workload_config = WorkloadConfig(
        mempool_size=pool_size,
        num_users=max(20, num_ifus + 6),
        num_ifus=num_ifus,
        min_ifu_involvement=max(2, pool_size // (8 * num_ifus)),
        seed=seed,
    )
    workload = generate_workload(workload_config)
    adversarial_count = max(1, round(adversarial_fraction * num_aggregators))
    adversarial_slots = set(
        int(i) for i in rng.choice(num_aggregators, adversarial_count, replace=False)
    )
    outcomes: List[AttackOutcome] = []
    for slot in range(num_aggregators):
        batch = workload.transactions[
            slot * mempool_size : (slot + 1) * mempool_size
        ]
        if slot not in adversarial_slots or len(batch) < 2:
            continue
        attack = ParoleAttack(
            config=AttackConfig(
                ifu_accounts=workload.ifus,
                gentranseq=preset.config(seed=seed + slot),
            ),
            # Serving several IFUs means *every* IFU must benefit; the
            # min-gain objective encodes that, and it is what makes the
            # per-IFU profit fall with the IFU count (Figure 6).
            objective_name="min-gain" if num_ifus > 1 else "mean",
        )
        outcomes.append(attack.run(workload.pre_state, batch))
    return outcomes, workload
