"""Figure 9: KDE of solution sizes (swaps to the first candidate order).

For mempool sizes 50 and 100 and 1-4 IFUs, collect — per episode — the
number of swap actions the agent performed before first producing a
feasible, profitable order, then fit a Gaussian KDE.  Paper observations
to reproduce:

* with 1 IFU the mass concentrates at small solution sizes (~5 swaps);
* serving more IFUs spreads the distribution to larger sizes;
* at mempool 100 the 3-4 IFU curves become multi-modal (multiple
  candidate strategies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis import KDECurve, kde_curve
from ..config import GenTranSeqConfig, WorkloadConfig
from ..core import GenTranSeq
from ..parallel import SerialRunner, Task, TaskRunner
from ..workloads import generate_workload
from .common import QUICK, EffortPreset


@dataclass(frozen=True)
class Fig9Curve:
    """One KDE curve of Figure 9."""

    mempool_size: int
    num_ifus: int
    solution_sizes: Tuple[int, ...]
    kde: Optional[KDECurve]

    @property
    def mode(self) -> Optional[float]:
        """Most probable solution size (the KDE peak)."""
        if self.kde is None:
            return None
        return self.kde.peak()[0]


def _fig9_trial(
    mempool_size: int,
    num_ifus: int,
    preset: EffortPreset,
    workload_seed: int,
    config_seed: int,
) -> List[int]:
    """One (grid cell, trial): swap counts of every first solution.

    Figure 9 historically drew its workload and agent seeds from two
    different streams, so both are explicit arguments rather than the
    fabric's single ``seed`` keyword.
    """
    workload = generate_workload(
        WorkloadConfig(
            mempool_size=mempool_size,
            num_users=max(20, num_ifus + 6),
            num_ifus=num_ifus,
            min_ifu_involvement=max(2, mempool_size // 10),
            seed=workload_seed,
        )
    )
    config = GenTranSeqConfig(
        episodes=preset.episodes,
        steps_per_episode=preset.steps_per_episode,
        seed=config_seed,
    )
    module = GenTranSeq(config=config)
    result = module.optimize(
        workload.pre_state, workload.transactions, workload.ifus
    )
    return list(result.first_solution_swaps)


def run_fig9(
    mempool_sizes: Sequence[int] = (50, 100),
    ifu_counts: Sequence[int] = (1, 2, 3, 4),
    preset: EffortPreset = QUICK,
    seed: int = 0,
    runner: Optional[TaskRunner] = None,
) -> List[Fig9Curve]:
    """Collect solution sizes and fit KDEs for the full grid.

    Trials fan out as independent tasks over ``runner`` (serial by
    default); per-cell sizes are reassembled in trial order so the KDE
    input — and hence the curve — is backend-independent.
    """
    runner = runner if runner is not None else SerialRunner()
    cells = [
        (mempool_size, num_ifus)
        for mempool_size in mempool_sizes
        for num_ifus in ifu_counts
    ]
    tasks = [
        Task(
            fn=_fig9_trial,
            args=(mempool_size, num_ifus, preset, seed + 31 * trial, seed + trial),
            label=f"fig9[mempool={mempool_size},ifus={num_ifus}]#{trial}",
        )
        for mempool_size, num_ifus in cells
        for trial in range(preset.trials)
    ]
    values = runner.map(tasks)
    curves: List[Fig9Curve] = []
    for cell_index, (mempool_size, num_ifus) in enumerate(cells):
        sizes: List[int] = []
        for trial_sizes in values[
            cell_index * preset.trials : (cell_index + 1) * preset.trials
        ]:
            sizes.extend(trial_sizes)
        kde = kde_curve(sizes, grid_min=0.0) if sizes else None
        curves.append(
            Fig9Curve(
                mempool_size=mempool_size,
                num_ifus=num_ifus,
                solution_sizes=tuple(sizes),
                kde=kde,
            )
        )
    return curves


def render_fig9(curves: Optional[List[Fig9Curve]] = None) -> str:
    """Each curve's sample count, mode and peak locations."""
    data = curves if curves is not None else run_fig9()
    lines = []
    for curve in data:
        if curve.kde is None:
            lines.append(
                f"mempool={curve.mempool_size} ifus={curve.num_ifus}: "
                "no profitable solutions found"
            )
            continue
        peaks = ", ".join(f"{p:.1f}" for p in curve.kde.peaks())
        lines.append(
            f"mempool={curve.mempool_size} ifus={curve.num_ifus}: "
            f"n={len(curve.solution_sizes)} mode={curve.mode:.1f} "
            f"peaks=[{peaks}]"
        )
    return "\n".join(lines)
