"""Section VIII defense evaluation (extension experiment).

Sweeps the detection threshold over attacked mempools and measures:
detection rate, demotions needed, and residual worst-case profit.  Not a
paper figure — the paper leaves the defense's validation to future work
— but DESIGN.md lists it as the natural ablation of the proposal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis import format_table
from ..config import DefenseConfig, GenTranSeqConfig, WorkloadConfig
from ..defense import MempoolGuard, plan_demotion
from ..parallel import SerialRunner, Task, TaskRunner
from ..workloads import generate_workload
from .common import QUICK, EffortPreset


@dataclass(frozen=True)
class DefensePoint:
    """One threshold setting's aggregate outcome."""

    threshold_eth: float
    rounds: int
    flagged_rounds: int
    resolved_rounds: int
    mean_demotions: float
    mean_residual_profit_eth: float

    @property
    def detection_rate(self) -> float:
        """Fraction of rounds flagged."""
        return self.flagged_rounds / self.rounds if self.rounds else 0.0


def _defense_threshold(
    threshold: float,
    rounds: int,
    mempool_size: int,
    preset: EffortPreset,
    *,
    seed: int,
) -> DefensePoint:
    """Probe + demote across all rounds for one threshold setting."""
    probe_config = GenTranSeqConfig(
        episodes=preset.episodes,
        steps_per_episode=preset.steps_per_episode,
        seed=seed,
    )
    guard = MempoolGuard(
        config=DefenseConfig(
            profit_threshold_eth=threshold, fee_scaled_threshold=False
        ),
        probe_config=probe_config,
    )
    flagged = resolved = 0
    demotions: List[int] = []
    residuals: List[float] = []
    for round_index in range(rounds):
        workload = generate_workload(
            WorkloadConfig(
                mempool_size=mempool_size,
                num_users=10,
                num_ifus=1,
                min_ifu_involvement=3,
                seed=seed + 101 * round_index,
            )
        )
        report = guard.inspect(workload.pre_state, workload.transactions)
        if not report.flagged:
            residuals.append(report.worst_case_profit_eth)
            continue
        flagged += 1
        plan = plan_demotion(
            guard, workload.pre_state, workload.transactions,
            max_demotions=mempool_size // 2,
        )
        demotions.append(plan.demoted_count)
        residuals.append(plan.final_report.worst_case_profit_eth)
        if plan.resolved:
            resolved += 1
    return DefensePoint(
        threshold_eth=threshold,
        rounds=rounds,
        flagged_rounds=flagged,
        resolved_rounds=resolved,
        mean_demotions=(
            sum(demotions) / len(demotions) if demotions else 0.0
        ),
        mean_residual_profit_eth=(
            sum(residuals) / len(residuals) if residuals else 0.0
        ),
    )


def run_defense_eval(
    thresholds: Sequence[float] = (0.01, 0.05, 0.2),
    rounds: int = 3,
    mempool_size: int = 12,
    preset: EffortPreset = QUICK,
    seed: int = 0,
    runner: Optional[TaskRunner] = None,
) -> List[DefensePoint]:
    """Probe + demote across rounds for each threshold.

    Each threshold is one independent fabric task; the guard's probe is
    fully seeded so results match across backends and worker counts.
    """
    runner = runner if runner is not None else SerialRunner()
    tasks = [
        Task(
            fn=_defense_threshold,
            args=(threshold, rounds, mempool_size, preset),
            seed=seed,
            label=f"defense[threshold={threshold}]",
        )
        for threshold in thresholds
    ]
    return runner.map(tasks)


def render_defense_eval(points: Optional[List[DefensePoint]] = None) -> str:
    """Threshold sweep as a table."""
    data = points if points is not None else run_defense_eval()
    rows = [
        (
            f"{point.threshold_eth:.3f}",
            point.rounds,
            f"{point.detection_rate:.0%}",
            point.resolved_rounds,
            f"{point.mean_demotions:.1f}",
            f"{point.mean_residual_profit_eth:.4f}",
        )
        for point in data
    ]
    return format_table(
        (
            "Threshold (ETH)", "Rounds", "Flagged", "Resolved",
            "Mean demotions", "Residual profit (ETH)",
        ),
        rows,
    )
