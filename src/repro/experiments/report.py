"""Markdown report generation from run-all artifacts.

``parole run-all`` leaves a directory of per-experiment text and JSON
artifacts; :func:`build_report` stitches them into one self-contained
Markdown document with the reproduction checklist up top — the file a
reviewer would read first.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Union

from ..errors import ReproError

#: Section ordering and titles for the report.
SECTIONS = (
    ("table3", "Table III — PT gas/fee behaviour"),
    ("fig5", "Figure 5 — case studies"),
    ("fig6", "Figure 6 — profit per IFU vs #IFUs"),
    ("fig7", "Figure 7 — profit vs adversarial fraction"),
    ("fig8", "Figure 8 — DQN learning curves"),
    ("fig9", "Figure 9 — solution-size KDEs"),
    ("fig10", "Figure 10 — NFT snapshot study"),
    ("fig11", "Figure 11 — solver comparison"),
    ("defense", "Section VIII — defense evaluation"),
)


def build_report(
    artifact_dir: Union[str, pathlib.Path],
    title: str = "PAROLE reproduction report",
) -> str:
    """Assemble a Markdown report from an artifact directory.

    Missing experiments appear in the checklist as *not run* rather than
    failing the whole report.
    """
    directory = pathlib.Path(artifact_dir)
    if not directory.is_dir():
        raise ReproError(f"artifact directory {directory} does not exist")

    lines: List[str] = [f"# {title}", ""]

    lines.append("## Checklist")
    lines.append("")
    lines.append("| Experiment | Status | Preset |")
    lines.append("|---|---|---|")
    payloads: Dict[str, dict] = {}
    for experiment_id, section_title in SECTIONS:
        json_path = directory / f"{experiment_id}.json"
        if json_path.exists():
            try:
                payload = json.loads(json_path.read_text())
                payloads[experiment_id] = payload
                status = "reproduced"
                preset = payload.get("preset", "?")
            except json.JSONDecodeError:
                status, preset = "corrupt artifact", "?"
        else:
            status, preset = "not run", "-"
        lines.append(f"| {section_title} | {status} | {preset} |")
    lines.append("")

    for experiment_id, section_title in SECTIONS:
        text_path = directory / f"{experiment_id}.txt"
        if not text_path.exists():
            continue
        lines.append(f"## {section_title}")
        lines.append("")
        description = payloads.get(experiment_id, {}).get("description")
        if description:
            lines.append(f"*{description}*")
            lines.append("")
        lines.append("```")
        lines.append(text_path.read_text().rstrip())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(
    artifact_dir: Union[str, pathlib.Path],
    output_path: Optional[Union[str, pathlib.Path]] = None,
) -> pathlib.Path:
    """Build and write the report; returns the written path."""
    directory = pathlib.Path(artifact_dir)
    target = (
        pathlib.Path(output_path)
        if output_path is not None
        else directory / "REPORT.md"
    )
    target.write_text(build_report(directory) + "\n")
    return target
