"""Experiment harnesses: one module per paper table/figure.

Each harness exposes a ``run_*`` function returning structured results
plus a ``render`` helper that prints the same rows/series the paper
reports.  Benchmarks, examples and the CLI all call into this package,
so the reproduction logic lives in exactly one place.

Scale presets: every harness accepts an :class:`EffortPreset`.  ``FULL``
matches Table II budgets (minutes of compute per point); ``QUICK``
shrinks training budgets for CI/benchmark runs while preserving the
figures' qualitative shape.
"""

from .common import EffortPreset, QUICK, FULL, attack_round, quick_config
from .table3_gas import run_table3, render_table3
from .fig5_cases import CaseTrace, run_case_studies, render_case_studies
from .fig6_profit import Fig6Point, run_fig6, render_fig6
from .fig7_adversarial import Fig7Point, run_fig7, render_fig7
from .fig8_learning import Fig8Series, run_fig8, render_fig8
from .fig9_solutions import Fig9Curve, run_fig9, render_fig9
from .fig10_snapshots import run_fig10, render_fig10
from .fig11_solvers import Fig11Row, run_fig11, render_fig11
from .defense_eval import DefensePoint, run_defense_eval, render_defense_eval
from .runner import (
    REGISTRY,
    ExperimentSpec,
    RunRecord,
    SpecOutcome,
    execute_spec,
    run_all,
)
from .report import build_report, write_report

__all__ = [
    "EffortPreset",
    "QUICK",
    "FULL",
    "attack_round",
    "quick_config",
    "run_table3",
    "render_table3",
    "CaseTrace",
    "run_case_studies",
    "render_case_studies",
    "Fig6Point",
    "run_fig6",
    "render_fig6",
    "Fig7Point",
    "run_fig7",
    "render_fig7",
    "Fig8Series",
    "run_fig8",
    "render_fig8",
    "Fig9Curve",
    "run_fig9",
    "render_fig9",
    "run_fig10",
    "render_fig10",
    "Fig11Row",
    "run_fig11",
    "render_fig11",
    "DefensePoint",
    "run_defense_eval",
    "render_defense_eval",
    "REGISTRY",
    "ExperimentSpec",
    "RunRecord",
    "SpecOutcome",
    "execute_spec",
    "run_all",
    "build_report",
    "write_report",
]
