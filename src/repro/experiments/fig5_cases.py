"""Figure 5: the three case studies of Section VI.

``run_case_studies`` replays the original sequence (case 1), the
paper's candidate altered sequence (case 2) and the paper's optimal
sequence (case 3) through the OVM, returning the per-step price and IFU
balance columns of the figure.  It also runs an exhaustive solver to
certify the best achievable balance under the batch-netting semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis import format_table
from ..parallel import TaskRunner
from ..rollup import OVM
from ..solvers import ExhaustiveSolver, ReorderProblem
from ..workloads import CASE2_ORDER, CASE3_ORDER, case_study_fixture
from ..workloads.scenarios import IFU
from .common import QUICK, EffortPreset


@dataclass(frozen=True)
class CaseTrace:
    """One case's per-transaction rows plus its headline numbers."""

    name: str
    order_labels: Tuple[str, ...]
    prices: Tuple[float, ...]
    ifu_balances: Tuple[float, ...]
    final_balance: float
    final_l2_balance: float

    def l2_gain_percent(self, baseline_l2: float) -> float:
        """L2-token balance gain over the original order, in percent."""
        if baseline_l2 == 0.0:
            return 0.0
        return 100.0 * (self.final_l2_balance - baseline_l2) / baseline_l2


def _trace_case(name: str, order: Tuple[int, ...]) -> CaseTrace:
    workload = case_study_fixture()
    sequence = tuple(workload.transactions[i] for i in order)
    trace = OVM().replay(workload.pre_state, sequence, watch=(IFU,))
    return CaseTrace(
        name=name,
        order_labels=tuple(tx.label for tx in sequence),
        prices=tuple(trace.price_trajectory()),
        ifu_balances=tuple(trace.wealth_trajectory(IFU)),
        final_balance=trace.final_wealth(IFU),
        final_l2_balance=trace.final_state.balance(IFU),
    )


def run_case_studies(
    preset: EffortPreset = QUICK,
    seed: int = 0,
    runner: Optional[TaskRunner] = None,
    *,
    certify_optimum: bool = False,
) -> Dict[str, CaseTrace]:
    """All three Figure 5 cases (plus the certified optimum if asked).

    Uses the uniform ``(preset, seed, runner)`` experiment signature so
    the registry addresses every experiment the same way; the case
    studies replay a fixed paper fixture, so all three parameters are
    deliberately ignored (the run is fully deterministic).

    ``certify_optimum`` adds a ``"best"`` entry: the exhaustive-search
    optimum over all 8! orders under the batch-netting semantics — which
    slightly exceeds the paper's case 3 because the paper's own case 2
    already relies on within-batch inventory netting (see
    EXPERIMENTS.md).
    """
    del preset, seed, runner  # deterministic paper fixture
    workload = case_study_fixture()
    cases = {
        "case1": _trace_case("case1", tuple(range(8))),
        "case2": _trace_case("case2", CASE2_ORDER),
        "case3": _trace_case("case3", CASE3_ORDER),
    }
    if certify_optimum:
        problem = ReorderProblem(
            pre_state=workload.pre_state,
            transactions=workload.transactions,
            ifus=(IFU,),
        )
        result = ExhaustiveSolver(max_size=8).solve(problem)
        cases["best"] = _trace_case("best", result.best_order)
    return cases


def render_case_studies(cases: Optional[Dict[str, CaseTrace]] = None) -> str:
    """Figure 5's three tables as text."""
    data = cases if cases is not None else run_case_studies()
    blocks: List[str] = []
    baseline_l2 = data["case1"].final_l2_balance
    for name in sorted(data):
        case = data[name]
        rows = [
            (label, f"{price:.2f} ETH", f"{balance:.2f} ETH")
            for label, price, balance in zip(
                case.order_labels, case.prices, case.ifu_balances
            )
        ]
        table = format_table(("TX", "PT Price (1 unit)", "IFU Total Balance"), rows)
        gain = case.l2_gain_percent(baseline_l2)
        blocks.append(
            f"[{case.name}] final balance {case.final_balance:.4f} ETH, "
            f"L2 balance {case.final_l2_balance:.4f} ETH "
            f"({gain:+.1f}% vs case 1)\n{table}"
        )
    return "\n\n".join(blocks)
