"""Figure 6: average attack profit per IFU vs number of IFUs served.

Two panels — 10% and 50% of aggregators adversarial — each sweeping the
number of IFUs (1-4) for aggregator mempool sizes {25, 50, 100}.  The
paper's observations to reproduce:

* average profit per IFU *decreases* as more IFUs are served;
* larger mempools earn more, with diminishing returns (the 50 -> 100
  gap is smaller than the 25 -> 50 gap);
* 50% adversarial earns substantially more per IFU than 10%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis import bootstrap_ci, format_table
from ..config import eth_to_satoshi
from ..parallel import SerialRunner, Task, TaskRunner
from .common import QUICK, EffortPreset, shared_pool_round

DEFAULT_MEMPOOL_SIZES: Tuple[int, ...] = (25, 50, 100)
DEFAULT_IFU_COUNTS: Tuple[int, ...] = (1, 2, 3, 4)
DEFAULT_AGGREGATORS = 10


@dataclass(frozen=True)
class Fig6Point:
    """One sweep point of Figure 6."""

    adversarial_fraction: float
    mempool_size: int
    num_ifus: int
    avg_profit_per_ifu_eth: float
    total_profit_eth: float
    attacks_fired: int
    #: Per-trial total profits, for uncertainty quantification.
    trial_totals: Tuple[float, ...] = ()

    @property
    def avg_profit_per_ifu_satoshi(self) -> float:
        """Figure 6's y-axis units."""
        return eth_to_satoshi(self.avg_profit_per_ifu_eth)

    def profit_ci(self, confidence: float = 0.95):
        """Bootstrap CI over the per-trial totals (None if < 2 trials)."""
        if len(self.trial_totals) < 2:
            return None
        return bootstrap_ci(self.trial_totals, confidence=confidence)


def _fig6_trial(
    fraction: float,
    mempool_size: int,
    num_ifus: int,
    num_aggregators: int,
    preset: EffortPreset,
    *,
    seed: int,
) -> Tuple[float, int]:
    """One (sweep point, trial): returns (total profit, attacks fired).

    Module-level so the execution fabric can ship it to worker
    processes; all randomness derives from the explicit ``seed``.
    """
    outcomes, _ = shared_pool_round(
        mempool_size=mempool_size,
        num_ifus=num_ifus,
        num_aggregators=num_aggregators,
        adversarial_fraction=fraction,
        preset=preset,
        seed=seed,
    )
    total = sum(outcome.total_profit for outcome in outcomes)
    fired = sum(1 for outcome in outcomes if outcome.attacked)
    return total, fired


def run_fig6(
    adversarial_fractions: Sequence[float] = (0.1, 0.5),
    mempool_sizes: Sequence[int] = DEFAULT_MEMPOOL_SIZES,
    ifu_counts: Sequence[int] = DEFAULT_IFU_COUNTS,
    num_aggregators: int = DEFAULT_AGGREGATORS,
    preset: EffortPreset = QUICK,
    seed: int = 0,
    runner: Optional[TaskRunner] = None,
) -> List[Fig6Point]:
    """Sweep the full Figure 6 grid.

    Every (sweep point, trial) pair is an independent, explicitly seeded
    task fanned out over ``runner`` (serial by default) — results are
    identical for every backend and worker count.
    """
    runner = runner if runner is not None else SerialRunner()
    cells = [
        (fraction, mempool_size, num_ifus)
        for fraction in adversarial_fractions
        for mempool_size in mempool_sizes
        for num_ifus in ifu_counts
    ]
    tasks = [
        Task(
            fn=_fig6_trial,
            args=(fraction, mempool_size, num_ifus, num_aggregators, preset),
            seed=seed + 1000 * trial,
            label=(
                f"fig6[frac={fraction},mempool={mempool_size},"
                f"ifus={num_ifus}]#{trial}"
            ),
        )
        for fraction, mempool_size, num_ifus in cells
        for trial in range(preset.trials)
    ]
    values = runner.map(tasks)
    points: List[Fig6Point] = []
    for cell_index, (fraction, mempool_size, num_ifus) in enumerate(cells):
        cell_values = values[
            cell_index * preset.trials : (cell_index + 1) * preset.trials
        ]
        trial_totals = [total for total, _ in cell_values]
        fired = sum(count for _, count in cell_values)
        total = sum(trial_totals) / max(len(trial_totals), 1)
        points.append(
            Fig6Point(
                adversarial_fraction=fraction,
                mempool_size=mempool_size,
                num_ifus=num_ifus,
                avg_profit_per_ifu_eth=total / num_ifus,
                total_profit_eth=total,
                attacks_fired=fired,
                trial_totals=tuple(trial_totals),
            )
        )
    return points


def render_fig6(points: Optional[List[Fig6Point]] = None) -> str:
    """Figure 6 as a table grouped by panel."""
    data = points if points is not None else run_fig6()
    rows = [
        (
            f"{point.adversarial_fraction:.0%}",
            point.mempool_size,
            point.num_ifus,
            f"{point.avg_profit_per_ifu_eth:.4f}",
            f"{point.avg_profit_per_ifu_satoshi:,.0f}",
        )
        for point in data
    ]
    return format_table(
        (
            "Adversarial", "Mempool", "#IFUs",
            "Avg profit/IFU (ETH)", "Avg profit/IFU (Satoshi)",
        ),
        rows,
    )
