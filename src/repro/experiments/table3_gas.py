"""Table III: behaviour of the PAROLE Token in OpenSea transactions."""

from __future__ import annotations

from typing import List, Optional

from ..analysis import format_table
from ..market import TransactionRecord, table3_rows
from ..parallel import TaskRunner
from .common import QUICK, EffortPreset


def run_table3(
    preset: EffortPreset = QUICK,
    seed: int = 0,
    runner: Optional[TaskRunner] = None,
) -> List[TransactionRecord]:
    """Regenerate the three Table III rows from the gas model.

    Takes the uniform ``(preset, seed, runner)`` experiment signature so
    the registry addresses every experiment the same way; the table is
    derived from fixed on-chain constants, so all three parameters are
    deliberately ignored (the run is fully deterministic).
    """
    del preset, seed, runner  # deterministic gas-model constants
    return table3_rows()


def render_table3(records: List[TransactionRecord] = None) -> str:
    """The table in the paper's column layout."""
    rows = records if records is not None else run_table3()
    return format_table(
        headers=(
            "TX Type", "TX Hash", "Block Number",
            "L1 state index", "Gas usage", "TX fees",
        ),
        rows=[record.as_row() for record in rows],
    )
