"""Table III: behaviour of the PAROLE Token in OpenSea transactions."""

from __future__ import annotations

from typing import List

from ..analysis import format_table
from ..market import TransactionRecord, table3_rows


def run_table3() -> List[TransactionRecord]:
    """Regenerate the three Table III rows from the gas model."""
    return table3_rows()


def render_table3(records: List[TransactionRecord] = None) -> str:
    """The table in the paper's column layout."""
    rows = records if records is not None else run_table3()
    return format_table(
        headers=(
            "TX Type", "TX Hash", "Block Number",
            "L1 state index", "Gas usage", "TX fees",
        ),
        rows=[record.as_row() for record in rows],
    )
