"""Figure 7: total profit vs the fraction of adversarial aggregators.

Two panels (1 IFU, 2 IFUs), sweeping the adversarial fraction 10-50% for
mempool sizes {50, 100}.  Paper observations to reproduce:

* total profit rises with the adversarial fraction;
* with mempool 50 the rise saturates (the pool's exploitable
  transactions are finite), while mempool 100 stays near-linear;
* serving 2 IFUs yields a sub-linear total compared to 1 IFU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis import bootstrap_ci, format_table
from ..config import eth_to_satoshi
from ..parallel import SerialRunner, Task, TaskRunner
from .common import QUICK, EffortPreset, shared_pool_round

DEFAULT_FRACTIONS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)
DEFAULT_MEMPOOL_SIZES: Tuple[int, ...] = (50, 100)


@dataclass(frozen=True)
class Fig7Point:
    """One sweep point of Figure 7."""

    num_ifus: int
    mempool_size: int
    adversarial_fraction: float
    total_profit_eth: float
    #: Per-trial totals, for uncertainty quantification.
    trial_totals: Tuple[float, ...] = ()

    @property
    def total_profit_satoshi(self) -> float:
        """Figure 7's y-axis units."""
        return eth_to_satoshi(self.total_profit_eth)

    def profit_ci(self, confidence: float = 0.95):
        """Bootstrap CI over the per-trial totals (None if < 2 trials)."""
        if len(self.trial_totals) < 2:
            return None
        return bootstrap_ci(self.trial_totals, confidence=confidence)


def _fig7_trial(
    num_ifus: int,
    mempool_size: int,
    fraction: float,
    num_aggregators: int,
    preset: EffortPreset,
    *,
    seed: int,
) -> float:
    """One (sweep point, trial): returns the total attack profit."""
    outcomes, _ = shared_pool_round(
        mempool_size=mempool_size,
        num_ifus=num_ifus,
        num_aggregators=num_aggregators,
        adversarial_fraction=fraction,
        preset=preset,
        seed=seed,
    )
    return sum(outcome.total_profit for outcome in outcomes)


def run_fig7(
    ifu_counts: Sequence[int] = (1, 2),
    mempool_sizes: Sequence[int] = DEFAULT_MEMPOOL_SIZES,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    num_aggregators: int = 10,
    preset: EffortPreset = QUICK,
    seed: int = 0,
    runner: Optional[TaskRunner] = None,
) -> List[Fig7Point]:
    """Sweep the full Figure 7 grid.

    Trials fan out as independent seeded tasks over ``runner`` (serial
    by default); results are backend- and worker-count-independent.
    """
    runner = runner if runner is not None else SerialRunner()
    cells = [
        (num_ifus, mempool_size, fraction)
        for num_ifus in ifu_counts
        for mempool_size in mempool_sizes
        for fraction in fractions
    ]
    tasks = [
        Task(
            fn=_fig7_trial,
            args=(num_ifus, mempool_size, fraction, num_aggregators, preset),
            seed=seed + 1000 * trial,
            label=(
                f"fig7[ifus={num_ifus},mempool={mempool_size},"
                f"frac={fraction}]#{trial}"
            ),
        )
        for num_ifus, mempool_size, fraction in cells
        for trial in range(preset.trials)
    ]
    values = runner.map(tasks)
    points: List[Fig7Point] = []
    for cell_index, (num_ifus, mempool_size, fraction) in enumerate(cells):
        trial_totals = values[
            cell_index * preset.trials : (cell_index + 1) * preset.trials
        ]
        points.append(
            Fig7Point(
                num_ifus=num_ifus,
                mempool_size=mempool_size,
                adversarial_fraction=fraction,
                total_profit_eth=(
                    sum(trial_totals) / max(len(trial_totals), 1)
                ),
                trial_totals=tuple(trial_totals),
            )
        )
    return points


def render_fig7(points: Optional[List[Fig7Point]] = None) -> str:
    """Figure 7 as a table grouped by panel."""
    data = points if points is not None else run_fig7()
    rows = [
        (
            point.num_ifus,
            point.mempool_size,
            f"{point.adversarial_fraction:.0%}",
            f"{point.total_profit_eth:.4f}",
            f"{point.total_profit_satoshi:,.0f}",
        )
        for point in data
    ]
    return format_table(
        ("#IFUs", "Mempool", "Adversarial", "Total profit (ETH)", "Total (Satoshi)"),
        rows,
    )
