"""Tests for the L2 state machine (Eq. 1-6 semantics, both modes)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NFTContractConfig
from repro.errors import InvalidTransactionError
from repro.rollup import ExecutionMode, L2State, NFTTransaction, TxKind
from repro.tokens import TxValidity


def mint(sender, **kw):
    return NFTTransaction(kind=TxKind.MINT, sender=sender, **kw)


def transfer(sender, recipient, **kw):
    return NFTTransaction(kind=TxKind.TRANSFER, sender=sender, recipient=recipient, **kw)


def burn(sender, **kw):
    return NFTTransaction(kind=TxKind.BURN, sender=sender, **kw)


class TestConstruction:
    def test_initial_price_reflects_inventory(self, pt_config):
        state = L2State(pt_config, inventory={"a": 5})
        assert state.unit_price == pytest.approx(0.4)

    def test_over_supply_inventory_rejected(self, pt_config):
        with pytest.raises(InvalidTransactionError):
            L2State(pt_config, inventory={"a": 11})

    def test_negative_inventory_rejected(self, pt_config):
        with pytest.raises(InvalidTransactionError):
            L2State(pt_config, inventory={"a": -1})

    def test_wealth_combines_cash_and_tokens(self, pt_config):
        state = L2State(pt_config, balances={"a": 1.5}, inventory={"a": 2, "b": 3})
        assert state.wealth("a") == pytest.approx(1.5 + 2 * 0.4)


class TestMintSemantics:
    def test_mint_applies_eq2(self, basic_state):
        price_before = basic_state.unit_price
        result = basic_state.apply(mint("alice"))
        assert result.executed
        assert basic_state.holdings("alice") == 2
        assert basic_state.balance("alice") == pytest.approx(2.0 - price_before)
        assert basic_state.remaining_supply == 7

    def test_mint_insufficient_balance_skipped(self, pt_config):
        state = L2State(pt_config, balances={"poor": 0.05})
        result = state.apply(mint("poor"))
        assert not result.executed
        assert result.validity is TxValidity.INSUFFICIENT_BALANCE
        assert state.holdings("poor") == 0

    def test_mint_supply_exhausted_skipped(self, pt_config):
        state = L2State(
            pt_config, balances={"rich": 100.0},
            inventory={"whale": 10},
        )
        result = state.apply(mint("rich"))
        assert not result.executed
        assert result.validity is TxValidity.SUPPLY_EXHAUSTED

    def test_skipped_tx_freezes_price(self, pt_config):
        state = L2State(pt_config, balances={"poor": 0.01})
        result = state.apply(mint("poor"))
        assert result.price_before == result.price_after


class TestTransferSemantics:
    def test_transfer_applies_eq4(self, basic_state):
        price = basic_state.unit_price
        result = basic_state.apply(transfer("alice", "bob"))
        assert result.executed
        assert basic_state.holdings("alice") == 0
        assert basic_state.holdings("bob") == 2
        assert basic_state.balance("alice") == pytest.approx(2.0 + price)
        assert basic_state.balance("bob") == pytest.approx(2.0 - price)

    def test_transfer_keeps_price(self, basic_state):
        before = basic_state.unit_price
        basic_state.apply(transfer("alice", "bob"))
        assert basic_state.unit_price == before

    def test_transfer_conserves_cash(self, basic_state):
        total = sum(basic_state.balances.values())
        basic_state.apply(transfer("alice", "bob"))
        assert sum(basic_state.balances.values()) == pytest.approx(total)

    def test_poor_buyer_skipped_in_both_modes(self, pt_config):
        for mode in ExecutionMode:
            state = L2State(
                pt_config, balances={"a": 5.0, "b": 0.0},
                inventory={"a": 1}, mode=mode,
            )
            result = state.apply(transfer("a", "b"))
            assert not result.executed
            assert result.validity is TxValidity.INSUFFICIENT_BALANCE


class TestBurnSemantics:
    def test_burn_applies_eq6(self, basic_state):
        price_before = basic_state.unit_price
        result = basic_state.apply(burn("alice"))
        assert result.executed
        assert basic_state.holdings("alice") == 0
        assert basic_state.remaining_supply == 9
        assert basic_state.unit_price < price_before

    def test_burn_does_not_touch_balances(self, basic_state):
        basic_state.apply(burn("alice"))
        assert basic_state.balance("alice") == 2.0


class TestModes:
    def test_strict_blocks_non_owner_transfer(self, pt_config):
        state = L2State(
            pt_config, balances={"a": 5.0, "b": 5.0},
            mode=ExecutionMode.STRICT,
        )
        result = state.apply(transfer("a", "b"))
        assert not result.executed
        assert result.validity is TxValidity.NOT_OWNER

    def test_batch_allows_transient_negative_inventory(self, pt_config):
        state = L2State(
            pt_config, balances={"a": 5.0, "b": 5.0},
            mode=ExecutionMode.BATCH,
        )
        result = state.apply(transfer("a", "b"))
        assert result.executed
        assert state.holdings("a") == -1
        assert not state.inventory_is_consistent()

    def test_batch_netting_restores_consistency(self, pt_config):
        state = L2State(
            pt_config, balances={"a": 5.0, "b": 5.0},
            mode=ExecutionMode.BATCH,
        )
        state.apply(transfer("a", "b"))   # a goes to -1
        state.apply(mint("a"))            # nets back to 0
        assert state.inventory_is_consistent()

    def test_strict_blocks_non_owner_burn(self, pt_config):
        state = L2State(pt_config, balances={"a": 5.0}, mode=ExecutionMode.STRICT)
        result = state.apply(burn("a"))
        assert not result.executed
        assert result.validity is TxValidity.NOT_OWNER


class TestCopy:
    def test_copy_is_deep(self, basic_state):
        clone = basic_state.copy()
        clone.apply(mint("alice"))
        assert basic_state.holdings("alice") == 1
        assert clone.holdings("alice") == 2

    def test_canonical_items_stable(self, basic_state):
        assert basic_state.canonical_items() == basic_state.copy().canonical_items()


class TestInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2), max_size=25))
    def test_property_supply_conserved_in_strict_mode(self, choices):
        state = L2State(
            NFTContractConfig(max_supply=12, initial_price_eth=0.05),
            balances={"a": 100.0, "b": 100.0},
            inventory={"a": 2, "b": 2},
            mode=ExecutionMode.STRICT,
        )
        txs = [mint("a"), transfer("a", "b"), burn("b")]
        for choice in choices:
            state.apply(txs[choice])
            live = state.minted_count
            assert live + state.remaining_supply == 12
            assert state.inventory_is_consistent()
            assert all(b >= -1e-9 for b in state.balances.values())
