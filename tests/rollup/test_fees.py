"""Tests for opt-in L2 fee charging."""

import pytest

from repro.rollup import ExecutionMode, L2State, NFTTransaction, OVM, TxKind


@pytest.fixture
def fee_state(pt_config):
    return L2State(
        pt_config,
        balances={"a": 5.0, "b": 5.0},
        inventory={"a": 1},
        mode=ExecutionMode.BATCH,
        charge_fees=True,
    )


class TestFeeCharging:
    def test_fees_move_to_pool(self, fee_state):
        tx = NFTTransaction(
            kind=TxKind.MINT, sender="a", base_fee=1.0, priority_fee=0.5
        )
        price = fee_state.unit_price
        fee_state.apply(tx)
        assert fee_state.fee_pool() == pytest.approx(1.5)
        assert fee_state.balance("a") == pytest.approx(5.0 - price - 1.5)

    def test_skipped_tx_pays_no_fee(self, pt_config):
        state = L2State(
            pt_config, balances={"poor": 0.01},
            charge_fees=True,
        )
        state.apply(NFTTransaction(kind=TxKind.MINT, sender="poor",
                                   base_fee=1.0))
        assert state.fee_pool() == 0.0

    def test_default_state_charges_nothing(self, basic_state):
        basic_state.apply(NFTTransaction(kind=TxKind.MINT, sender="alice",
                                         base_fee=1.0))
        assert basic_state.fee_pool() == 0.0

    def test_copy_preserves_flag(self, fee_state):
        assert fee_state.copy().charge_fees

    def test_total_value_conserved_with_fees(self, fee_state):
        """Cash only moves between users, the NFT contract sink, and the
        fee pool — transfers conserve the grand total."""
        tx = NFTTransaction(
            kind=TxKind.TRANSFER, sender="a", recipient="b",
            base_fee=0.3, priority_fee=0.0,
        )
        total_before = sum(fee_state.balances.values())
        fee_state.apply(tx)
        assert sum(fee_state.balances.values()) == pytest.approx(total_before)

    def test_ovm_replay_accumulates_fees(self, fee_state):
        txs = [
            NFTTransaction(kind=TxKind.MINT, sender="a", base_fee=0.5, nonce=0),
            NFTTransaction(kind=TxKind.MINT, sender="b", base_fee=0.5, nonce=1),
        ]
        trace = OVM().replay(fee_state, txs)
        assert trace.final_state.fee_pool() == pytest.approx(1.0)
