"""Tests for honest and adversarial aggregators."""


from repro.rollup import AdversarialAggregator, Aggregator


class TestHonestAggregator:
    def test_keeps_collected_order(self, case_workload):
        aggregator = Aggregator("honest")
        result = aggregator.process(
            case_workload.pre_state, case_workload.transactions
        )
        assert result.executed_order == case_workload.transactions
        assert not result.reordered

    def test_batch_attributed_to_aggregator(self, case_workload):
        result = Aggregator("agg-7").process(
            case_workload.pre_state, case_workload.transactions
        )
        assert result.batch.aggregator == "agg-7"


class TestAdversarialAggregator:
    def test_applies_reorderer(self, case_workload):
        def reverse(pre_state, collected):
            return tuple(reversed(collected))

        aggregator = AdversarialAggregator("evil", reverse)
        result = aggregator.process(
            case_workload.pre_state, case_workload.transactions
        )
        assert result.executed_order == tuple(reversed(case_workload.transactions))
        assert result.reordered
        assert aggregator.rounds_attacked == 1

    def test_identity_reorderer_counts_no_attack(self, case_workload):
        aggregator = AdversarialAggregator("evil", lambda s, c: tuple(c))
        result = aggregator.process(
            case_workload.pre_state, case_workload.transactions
        )
        assert not result.reordered
        assert aggregator.rounds_attacked == 0

    def test_dropping_reorderer_falls_back_to_honest(self, case_workload):
        def drop_one(pre_state, collected):
            return tuple(collected)[1:]

        aggregator = AdversarialAggregator("evil", drop_one)
        result = aggregator.process(
            case_workload.pre_state, case_workload.transactions
        )
        assert result.executed_order == case_workload.transactions

    def test_injecting_reorderer_falls_back_to_honest(self, case_workload):
        def inject(pre_state, collected):
            extra = list(collected) + [collected[0]]
            return tuple(extra)

        aggregator = AdversarialAggregator("evil", inject)
        result = aggregator.process(
            case_workload.pre_state, case_workload.transactions
        )
        assert result.executed_order == case_workload.transactions
