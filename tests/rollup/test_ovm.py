"""Tests for the OVM — including exact Figure 5 table reproduction."""

import pytest

from repro.rollup import ExecutionMode, NFTTransaction, OVM, TxKind
from repro.workloads import CASE2_ORDER, CASE3_ORDER
from repro.workloads.scenarios import IFU


@pytest.fixture
def ovm():
    return OVM()


class TestCase1ExactValues:
    """Figure 5(a): the original sequence's price and balance columns."""

    def test_price_column(self, case_workload, ovm):
        trace = ovm.replay(case_workload.pre_state, case_workload.transactions)
        expected = [0.4, 0.5, 0.5, 0.5, 2 / 3, 2 / 3, 0.5, 0.5]
        assert trace.price_trajectory() == pytest.approx(expected)

    def test_balance_column(self, case_workload, ovm):
        trace = ovm.replay(
            case_workload.pre_state, case_workload.transactions, watch=(IFU,)
        )
        expected = [2.3, 2.5, 2.5, 2.5, 2.5 + 1 / 3, 2.5 + 1 / 3, 2.5, 2.5]
        assert trace.wealth_trajectory(IFU) == pytest.approx(expected)

    def test_final_balance(self, case_workload, ovm):
        trace = ovm.replay(
            case_workload.pre_state, case_workload.transactions, watch=(IFU,)
        )
        assert trace.final_wealth(IFU) == pytest.approx(2.5)

    def test_all_executed(self, case_workload, ovm):
        trace = ovm.replay(case_workload.pre_state, case_workload.transactions)
        assert trace.all_executed
        assert trace.consistent()


class TestCase2ExactValues:
    """Figure 5(b): the candidate altered sequence."""

    def test_final_balance_is_2_567(self, case_workload, ovm):
        sequence = [case_workload.transactions[i] for i in CASE2_ORDER]
        trace = ovm.replay(case_workload.pre_state, sequence, watch=(IFU,))
        assert trace.final_wealth(IFU) == pytest.approx(2.5 + 1 / 15)

    def test_l2_balance_gain_about_7_percent(self, case_workload, ovm):
        sequence = [case_workload.transactions[i] for i in CASE2_ORDER]
        trace = ovm.replay(case_workload.pre_state, sequence)
        gain = (trace.final_state.balance(IFU) - 1.0) / 1.0
        assert gain == pytest.approx(1 / 15, abs=1e-9)  # ~6.7%, paper: 7%

    def test_burn_dip_to_one_third(self, case_workload, ovm):
        sequence = [case_workload.transactions[i] for i in CASE2_ORDER]
        trace = ovm.replay(case_workload.pre_state, sequence)
        assert trace.price_trajectory()[1] == pytest.approx(1 / 3)

    def test_all_executed_and_consistent(self, case_workload, ovm):
        sequence = [case_workload.transactions[i] for i in CASE2_ORDER]
        trace = ovm.replay(case_workload.pre_state, sequence)
        assert trace.all_executed
        assert trace.consistent()


class TestCase3ExactValues:
    """Figure 5(c): the paper's optimal altered sequence."""

    def test_final_balance_is_2_733(self, case_workload, ovm):
        sequence = [case_workload.transactions[i] for i in CASE3_ORDER]
        trace = ovm.replay(case_workload.pre_state, sequence, watch=(IFU,))
        assert trace.final_wealth(IFU) == pytest.approx(2.5 + 7 / 30)

    def test_l2_balance_gain_about_24_percent(self, case_workload, ovm):
        sequence = [case_workload.transactions[i] for i in CASE3_ORDER]
        trace = ovm.replay(case_workload.pre_state, sequence)
        gain = (trace.final_state.balance(IFU) - 1.0) / 1.0
        assert gain == pytest.approx(7 / 30, abs=1e-9)  # ~23.3%, paper: 24%

    def test_case3_beats_case2_beats_case1(self, case_workload, ovm):
        finals = []
        for order in (tuple(range(8)), CASE2_ORDER, CASE3_ORDER):
            sequence = [case_workload.transactions[i] for i in order]
            finals.append(
                ovm.replay(case_workload.pre_state, sequence, watch=(IFU,))
                .final_wealth(IFU)
            )
        assert finals[0] < finals[1] < finals[2]

    def test_pt_holdings_value_equal_across_cases(self, case_workload, ovm):
        """Section VI-B: all three cases end with 3 tokens at 0.5 ETH."""
        for order in (tuple(range(8)), CASE2_ORDER, CASE3_ORDER):
            sequence = [case_workload.transactions[i] for i in order]
            final = ovm.replay(case_workload.pre_state, sequence).final_state
            assert final.holdings(IFU) == 3
            assert final.unit_price == pytest.approx(0.5)


class TestReplayMechanics:
    def test_replay_does_not_mutate_input_state(self, case_workload, ovm):
        before = dict(case_workload.pre_state.balances)
        ovm.replay(case_workload.pre_state, case_workload.transactions)
        assert case_workload.pre_state.balances == before

    def test_skipped_transactions_reported(self, pt_config, ovm):
        from repro.rollup import L2State
        state = L2State(pt_config, balances={"poor": 0.01, "rich": 5.0})
        txs = [
            NFTTransaction(kind=TxKind.MINT, sender="poor", nonce=0),
            NFTTransaction(kind=TxKind.MINT, sender="rich", nonce=1),
        ]
        trace = ovm.replay(state, txs)
        assert trace.skipped_indices == (0,)
        assert trace.executed_count == 1

    def test_executed_mask(self, pt_config, ovm):
        from repro.rollup import L2State
        state = L2State(pt_config, balances={"poor": 0.01, "rich": 5.0})
        txs = [
            NFTTransaction(kind=TxKind.MINT, sender="rich", nonce=0),
            NFTTransaction(kind=TxKind.MINT, sender="poor", nonce=1),
        ]
        assert ovm.executed_mask(state, txs) == (True, False)

    def test_mode_override(self, pt_config):
        from repro.rollup import L2State
        state = L2State(
            pt_config, balances={"a": 5.0, "b": 5.0}, mode=ExecutionMode.BATCH
        )
        strict_ovm = OVM(mode=ExecutionMode.STRICT)
        tx = NFTTransaction(kind=TxKind.TRANSFER, sender="a", recipient="b")
        trace = strict_ovm.replay(state, [tx])
        assert not trace.steps[0].executed  # 'a' owns nothing under STRICT

    def test_final_wealth_shortcut(self, case_workload, ovm):
        direct = ovm.final_wealth(
            case_workload.pre_state, case_workload.transactions, IFU
        )
        assert direct == pytest.approx(2.5)
