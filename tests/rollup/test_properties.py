"""Metamorphic / property tests on the OVM and batch economics."""

from itertools import permutations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NFTContractConfig
from repro.rollup import ExecutionMode, L2State, NFTTransaction, OVM, TxKind
from repro.rollup.batch import build_batch
from repro.workloads import CASE3_ORDER


def transfer(sender, recipient, nonce):
    return NFTTransaction(
        kind=TxKind.TRANSFER, sender=sender, recipient=recipient, nonce=nonce
    )


@pytest.fixture
def rich_state(pt_config):
    return L2State(
        pt_config,
        balances={"a": 10.0, "b": 10.0, "c": 10.0},
        inventory={"a": 2, "b": 2, "c": 1},
        mode=ExecutionMode.BATCH,
    )


class TestTransferOnlyInvariance:
    """Transfers never move the price, so for transfer-only batches the
    *price* is order-invariant and total cash is conserved."""

    @settings(max_examples=20, deadline=None)
    @given(st.permutations(list(range(4))))
    def test_price_invariant_under_permutation(self, order, ):
        state = L2State(
            NFTContractConfig(max_supply=10, initial_price_eth=0.2),
            balances={"a": 10.0, "b": 10.0, "c": 10.0},
            inventory={"a": 2, "b": 2, "c": 1},
            mode=ExecutionMode.BATCH,
        )
        txs = [
            transfer("a", "b", 0),
            transfer("b", "c", 1),
            transfer("c", "a", 2),
            transfer("a", "c", 3),
        ]
        ovm = OVM()
        trace = ovm.replay(state, [txs[i] for i in order])
        assert trace.final_price == pytest.approx(state.unit_price)
        assert sum(trace.final_state.balances.values()) == pytest.approx(30.0)

    def test_total_inventory_conserved(self, rich_state):
        txs = [transfer("a", "b", 0), transfer("b", "c", 1)]
        trace = OVM().replay(rich_state, txs)
        assert sum(trace.final_state.inventory.values()) == 5


class TestMintBurnCounting:
    """The final price depends only on the *count* of executed mints and
    burns (Eq. 10), never on where transfers sit between them."""

    def test_final_price_depends_on_net_supply_change(self, rich_state):
        txs = [
            NFTTransaction(kind=TxKind.MINT, sender="a", nonce=0),
            transfer("b", "c", 1),
            NFTTransaction(kind=TxKind.BURN, sender="b", nonce=2),
            transfer("c", "a", 3),
        ]
        ovm = OVM()
        finals = set()
        for order in permutations(range(4)):
            trace = ovm.replay(rich_state, [txs[i] for i in order])
            if trace.all_executed:
                finals.add(round(trace.final_price, 12))
        assert len(finals) == 1  # net supply change 0 -> same final price

    def test_case_study_final_price_order_invariant(self, case_workload):
        """All-executed orders of the case study end at price 0.5: two
        mints and one burn net to one unit scarcer."""
        ovm = OVM()
        for order in (tuple(range(8)), CASE3_ORDER):
            trace = ovm.replay(
                case_workload.pre_state,
                [case_workload.transactions[i] for i in order],
            )
            assert trace.all_executed
            assert trace.final_price == pytest.approx(0.5)


class TestFeeInvariance:
    """Reordering changes balances, never the aggregator's fee revenue."""

    def test_fee_revenue_permutation_invariant(self, case_workload):
        original, _ = build_batch(
            "agg", case_workload.pre_state, case_workload.transactions
        )
        reordered, _ = build_batch(
            "agg",
            case_workload.pre_state,
            [case_workload.transactions[i] for i in CASE3_ORDER],
        )
        assert original.fee_revenue == pytest.approx(reordered.fee_revenue)

    def test_fee_revenue_positive(self, case_workload):
        batch, _ = build_batch(
            "agg", case_workload.pre_state, case_workload.transactions
        )
        assert batch.fee_revenue > 0


class TestWealthAccounting:
    """Total system wealth = cash + inventory * price; only mints (cash
    sink into the contract) and price moves change it."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=6))
    def test_cash_only_leaves_via_mints(self, mint_count):
        state = L2State(
            NFTContractConfig(max_supply=20, initial_price_eth=0.1),
            balances={"a": 50.0, "b": 50.0},
            mode=ExecutionMode.BATCH,
        )
        txs = [
            NFTTransaction(kind=TxKind.MINT, sender="a", nonce=i)
            for i in range(mint_count)
        ]
        trace = OVM().replay(state, txs)
        total_cash = sum(trace.final_state.balances.values())
        minted_cost = sum(
            step.result.price_before for step in trace.steps if step.executed
        )
        assert total_cash == pytest.approx(100.0 - minted_cost)
