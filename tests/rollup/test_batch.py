"""Tests for batch construction and fraud proofs."""

import pytest

from repro.errors import BatchError
from repro.rollup import build_batch, state_root
from repro.rollup.fraud_proof import FraudProof, recompute_post_root


class TestStateRoot:
    def test_deterministic(self, basic_state):
        assert state_root(basic_state) == state_root(basic_state.copy())

    def test_insertion_order_irrelevant(self, pt_config):
        from repro.rollup import L2State
        a = L2State(pt_config, balances={"x": 1.0, "y": 2.0})
        b = L2State(pt_config, balances={"y": 2.0, "x": 1.0})
        assert state_root(a) == state_root(b)

    def test_balance_change_changes_root(self, basic_state):
        clone = basic_state.copy()
        clone.balances["alice"] += 0.5
        assert state_root(basic_state) != state_root(clone)

    def test_inventory_change_changes_root(self, basic_state):
        clone = basic_state.copy()
        clone.inventory["bob"] += 1
        assert state_root(basic_state) != state_root(clone)


class TestBuildBatch:
    def test_empty_batch_rejected(self, case_workload):
        with pytest.raises(BatchError):
            build_batch("agg", case_workload.pre_state, [])

    def test_batch_records_roots(self, case_workload):
        batch, trace = build_batch(
            "agg", case_workload.pre_state, case_workload.transactions
        )
        assert batch.pre_state_root == state_root(case_workload.pre_state)
        assert batch.post_state_root == state_root(trace.final_state)
        assert batch.executed_count == 8

    def test_tx_root_verifies(self, case_workload):
        batch, _ = build_batch(
            "agg", case_workload.pre_state, case_workload.transactions
        )
        assert batch.verify_tx_root()

    def test_reordered_batch_changes_post_root(self, case_workload):
        from repro.workloads import CASE3_ORDER
        original, _ = build_batch(
            "agg", case_workload.pre_state, case_workload.transactions
        )
        reordered_txs = [case_workload.transactions[i] for i in CASE3_ORDER]
        reordered, _ = build_batch(
            "agg", case_workload.pre_state, reordered_txs
        )
        # Balances differ between orders, so the state roots differ too.
        assert original.post_state_root != reordered.post_state_root
        assert original.tx_root != reordered.tx_root

    def test_batch_len(self, case_workload):
        batch, _ = build_batch(
            "agg", case_workload.pre_state, case_workload.transactions
        )
        assert len(batch) == 8


class TestRecompute:
    def test_recompute_matches_honest_commitment(self, case_workload):
        batch, _ = build_batch(
            "agg", case_workload.pre_state, case_workload.transactions
        )
        recomputed = recompute_post_root(
            case_workload.pre_state, batch.transactions
        )
        assert recomputed == batch.post_state_root

    def test_recompute_detects_forged_root(self, case_workload):
        batch, _ = build_batch(
            "agg", case_workload.pre_state, case_workload.transactions
        )
        recomputed = recompute_post_root(
            case_workload.pre_state, batch.transactions
        )
        assert recomputed != "0xforged"

    def test_proof_digest_stable(self):
        proof = FraudProof("t", "pre", "post")
        assert proof.digest == FraudProof("t", "pre", "post").digest
        assert proof.digest != FraudProof("t", "pre", "other").digest
