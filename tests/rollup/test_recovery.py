"""Crash-recovery semantics of the rollup pipeline.

Regression coverage for the mid-round failure paths: transactions from a
failed or successfully-challenged batch must always return to the
mempool, commitment retries are bounded with sim-time backoff, and
rounds degrade gracefully while operators are down.
"""

import pytest

from repro.config import RollupConfig, WorkloadConfig
from repro.rollup import Aggregator, RollupNode, Sequencer, Verifier
from repro.rollup.node import CommitRetry, RoundFailure
from repro.workloads import generate_workload


class ExplodingAggregator(Aggregator):
    """Raises mid-execution on demand."""

    def __init__(self, address, fail_times=1):
        super().__init__(address)
        self.fail_times = fail_times

    def process(self, pre_state, collected):
        if self.fail_times > 0:
            self.fail_times -= 1
            raise RuntimeError("boom")
        return super().process(pre_state, collected)


class LyingAggregator(Aggregator):
    """Always commits a forged post-state root."""

    def process(self, pre_state, collected):
        import dataclasses

        result = super().process(pre_state, collected)
        forged = dataclasses.replace(result.batch, post_state_root="0xforged")
        return dataclasses.replace(result, batch=forged)


@pytest.fixture
def workload():
    return generate_workload(
        WorkloadConfig(mempool_size=12, num_users=8, num_ifus=1,
                       min_ifu_involvement=3, seed=3)
    )


def make_node(workload, **config_overrides):
    config = RollupConfig(
        aggregator_mempool_size=6, challenge_period_blocks=2,
        **config_overrides,
    )
    node = RollupNode(l2_state=workload.pre_state.copy(), config=config)
    for user in workload.users:
        node.fund_and_deposit(user, 1.0)
    return node


class TestExecutionFailureRecovery:
    def test_failed_execution_requeues_and_reports(self, workload):
        """Regression: run_round used to propagate mid-round and silently
        lose the collected transactions."""
        node = make_node(workload)
        node.add_aggregator(ExplodingAggregator("agg-bad"))
        for tx in workload.transactions:
            node.submit(tx)
        before = len(node.mempool)
        root_before = node.current_state_root()

        report = node.run_round()

        assert len(node.mempool) == before  # nothing lost
        assert node.current_state_root() == root_before  # no half-advance
        assert report.results == []
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert isinstance(failure, RoundFailure)
        assert failure.stage == "execute"
        assert failure.requeued == 6
        assert "boom" in failure.error

    def test_later_aggregators_still_commit_after_failure(self, workload):
        node = make_node(workload)
        node.add_aggregator(ExplodingAggregator("agg-bad"))
        node.add_aggregator(Aggregator("agg-ok"))
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round()
        assert len(report.failures) == 1
        assert len(report.results) == 1
        assert report.results[0].batch.aggregator == "agg-ok"

    def test_next_round_drains_requeued_transactions(self, workload):
        node = make_node(workload)
        node.add_aggregator(ExplodingAggregator("agg", fail_times=1))
        for tx in workload.transactions:
            node.submit(tx)
        node.run_round()
        report = node.run_round()  # aggregator recovered
        assert len(report.results) == 1
        assert report.failures == []


class TestCommitRetry:
    def test_injected_failure_below_budget_recovers(self, workload):
        node = make_node(workload)
        node.add_aggregator(Aggregator("agg-0"))
        node.inject_commit_failures(count=1)
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round()
        assert len(report.results) == 1
        assert report.failures == []
        assert len(report.commit_retries) == 1
        retry = report.commit_retries[0]
        assert isinstance(retry, CommitRetry)
        assert retry.attempts == 2
        assert retry.backoff == pytest.approx(
            node.config.commit_backoff_base
        )

    def test_backoff_doubles_per_attempt(self, workload):
        node = make_node(workload, commit_max_retries=4)
        node.add_aggregator(Aggregator("agg-0"))
        node.inject_commit_failures(count=3)
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round()
        base = node.config.commit_backoff_base
        assert report.commit_retries[0].attempts == 4
        assert report.commit_retries[0].backoff == pytest.approx(
            base + 2 * base + 4 * base
        )

    def test_exhausted_retries_requeue_collection(self, workload):
        node = make_node(workload)
        node.add_aggregator(Aggregator("agg-0"))
        node.inject_commit_failures(count=node.config.commit_max_retries)
        for tx in workload.transactions:
            node.submit(tx)
        before = len(node.mempool)
        report = node.run_round()
        assert report.results == []
        assert len(node.mempool) == before
        assert report.failures[0].stage == "commit"
        assert report.failures[0].attempts == node.config.commit_max_retries
        assert node.contract.batches == []

    def test_targeted_injection_spares_other_aggregators(self, workload):
        node = make_node(workload)
        node.add_aggregator(Aggregator("agg-0"))
        node.add_aggregator(Aggregator("agg-1"))
        node.inject_commit_failures(
            count=node.config.commit_max_retries, aggregator="agg-0"
        )
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round()
        assert [f.aggregator for f in report.failures] == ["agg-0"]
        assert [r.batch.aggregator for r in report.results] == ["agg-1"]


class TestCrashRestart:
    def test_crashed_aggregator_is_skipped(self, workload):
        node = make_node(workload)
        node.add_aggregator(Aggregator("agg-0"))
        node.add_aggregator(Aggregator("agg-1"))
        node.aggregator_by_address("agg-0").crash()
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round()
        assert report.skipped_aggregators == ["agg-0"]
        assert [r.batch.aggregator for r in report.results] == ["agg-1"]

    def test_restart_rejoins_rotation(self, workload):
        node = make_node(workload)
        node.add_aggregator(Aggregator("agg-0"))
        node.aggregator_by_address("agg-0").crash()
        for tx in workload.transactions:
            node.submit(tx)
        assert node.run_round().results == []
        node.aggregator_by_address("agg-0").restart()
        assert len(node.run_round().results) == 1

    def test_crashed_verifier_does_not_inspect(self, workload):
        node = make_node(workload)
        node.add_aggregator(LyingAggregator("agg-liar"))
        node.add_verifier(Verifier("ver-0"))
        node.verifier_by_address("ver-0").crash()
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round()
        assert report.challenges == []
        node.verifier_by_address("ver-0").restart()
        report = node.run_round()
        assert report.challenges != []


class TestChallengedBatchRevert:
    def test_upheld_challenge_reverts_state_and_requeues(self, workload):
        node = make_node(workload)
        node.add_aggregator(LyingAggregator("agg-liar"))
        node.add_verifier(Verifier("ver-0"))
        for tx in workload.transactions:
            node.submit(tx)
        before = len(node.mempool)
        root_before = node.current_state_root()

        report = node.run_round()

        assert report.reverted_batch_ids == [0]
        assert node.contract.batch(0).status.value == "reverted"
        # The committed batch's transactions are back in the pool...
        assert len(node.mempool) == before
        # ...and the L2 state rolled back to the pre-state.
        assert node.current_state_root() == root_before

    def test_second_verifier_does_not_rechallenge_reverted_batch(self, workload):
        node = make_node(workload)
        node.add_aggregator(LyingAggregator("agg-liar"))
        node.add_verifier(Verifier("ver-0"))
        node.add_verifier(Verifier("ver-1"))
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round()
        assert len(report.challenges) == 1  # inspection stops after revert


class TestMempoolStall:
    def test_stalled_mempool_produces_no_batch(self, workload):
        node = make_node(workload)
        node.add_aggregator(Aggregator("agg-0"))
        for tx in workload.transactions:
            node.submit(tx)
        node.mempool.stall()
        report = node.run_round()
        assert report.results == []
        node.mempool.resume()
        assert len(node.run_round().results) == 1


class TestSequencerDegradation:
    def test_rotation_skips_crashed_aggregators(self, workload):
        sequencer = Sequencer(workload.pre_state.copy())
        good, bad = Aggregator("good"), Aggregator("bad")
        sequencer.register(bad)
        sequencer.register(good)
        bad.crash()
        for tx in workload.transactions:
            sequencer.submit(tx)
        blocks = sequencer.run_until_empty()
        assert blocks
        assert all(block.aggregator == "good" for block in blocks)

    def test_all_crashed_skips_slot_instead_of_raising(self, workload):
        sequencer = Sequencer(workload.pre_state.copy())
        aggregator = Aggregator("only")
        sequencer.register(aggregator)
        aggregator.crash()
        sequencer.submit(workload.transactions[0])
        for _ in range(sequencer.config.block_interval):
            assert sequencer.tick() is None
        aggregator.restart()
        for _ in range(sequencer.config.block_interval):
            outcome = sequencer.tick()
        assert outcome is not None

    def test_failed_production_requeues(self, workload):
        sequencer = Sequencer(workload.pre_state.copy())
        sequencer.register(ExplodingAggregator("flaky", fail_times=1))
        for tx in workload.transactions:
            sequencer.submit(tx)
        pending_before = len(sequencer.mempool)
        blocks = sequencer.run_until_empty()
        assert sequencer.failed_blocks == 1
        assert len(sequencer.mempool) == 0
        assert sum(block.tx_count for block in blocks) == pending_before
