"""Tests for the fixed-interval L2 sequencer."""

import pytest

from repro.config import RollupConfig, WorkloadConfig
from repro.errors import RollupError
from repro.rollup import Aggregator, AdversarialAggregator, Sequencer
from repro.workloads import generate_workload


@pytest.fixture
def setup():
    workload = generate_workload(
        WorkloadConfig(mempool_size=12, num_users=8, num_ifus=1, seed=4)
    )
    sequencer = Sequencer(
        workload.pre_state.copy(),
        config=RollupConfig(block_interval=2, aggregator_mempool_size=4),
    )
    sequencer.register(Aggregator("agg-0"))
    return workload, sequencer


class TestClock:
    def test_no_block_off_interval(self, setup):
        workload, sequencer = setup
        sequencer.submit(workload.transactions[0])
        assert sequencer.tick() is None      # tick 1: off-interval
        assert sequencer.tick() is not None  # tick 2: block boundary

    def test_empty_interval_seals_nothing(self, setup):
        _, sequencer = setup
        assert sequencer.tick() is None
        assert sequencer.tick() is None
        assert sequencer.height == 0

    def test_no_aggregators_raises(self, setup):
        workload, _ = setup
        lonely = Sequencer(workload.pre_state.copy())
        with pytest.raises(RollupError):
            lonely.tick()


class TestBlockProduction:
    def test_run_until_empty_drains(self, setup):
        workload, sequencer = setup
        for tx in workload.transactions:
            sequencer.submit(tx)
        blocks = sequencer.run_until_empty()
        assert len(sequencer.mempool) == 0
        assert len(blocks) == 3  # 12 txs / 4 per block
        assert sum(b.tx_count for b in blocks) == 12

    def test_blocks_numbered_sequentially(self, setup):
        workload, sequencer = setup
        for tx in workload.transactions:
            sequencer.submit(tx)
        blocks = sequencer.run_until_empty()
        assert [b.number for b in blocks] == [0, 1, 2]

    def test_parent_hashes_chain(self, setup):
        workload, sequencer = setup
        for tx in workload.transactions:
            sequencer.submit(tx)
        sequencer.run_until_empty()
        assert sequencer.verify_chain()

    def test_head_state_root_matches_state(self, setup):
        workload, sequencer = setup
        from repro.rollup import state_root
        for tx in workload.transactions:
            sequencer.submit(tx)
        sequencer.run_until_empty()
        assert sequencer.head.state_root == state_root(sequencer.state)

    def test_round_robin_aggregators(self, setup):
        workload, sequencer = setup
        sequencer.register(Aggregator("agg-1"))
        for tx in workload.transactions:
            sequencer.submit(tx)
        blocks = sequencer.run_until_empty()
        assert [b.aggregator for b in blocks] == ["agg-0", "agg-1", "agg-0"]

    def test_adversarial_aggregator_in_rotation(self, setup):
        workload, sequencer = setup
        sequencer.register(
            AdversarialAggregator("evil", lambda s, c: tuple(reversed(c)))
        )
        for tx in workload.transactions:
            sequencer.submit(tx)
        blocks = sequencer.run_until_empty()
        assert sequencer.verify_chain()
        assert any(b.aggregator == "evil" for b in blocks)
