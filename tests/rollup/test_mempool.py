"""Tests for Bedrock's private mempool."""

import pytest

from repro.errors import MempoolError
from repro.rollup import BedrockMempool, NFTTransaction, TxKind


def make_tx(sender, priority=0.0, nonce=0):
    return NFTTransaction(
        kind=TxKind.MINT, sender=sender, priority_fee=priority, nonce=nonce
    )


@pytest.fixture
def pool():
    return BedrockMempool()


class TestSubmission:
    def test_submit_returns_hash(self, pool):
        tx_hash = pool.submit(make_tx("a"))
        assert tx_hash in pool
        assert len(pool) == 1

    def test_duplicate_rejected(self, pool):
        tx = make_tx("a", priority=0.3)
        stamped_hash = pool.submit(tx)
        # The same pre-stamped transaction cannot enter twice.
        stamped = pool.drop(stamped_hash)
        pool.submit(stamped)
        with pytest.raises(MempoolError):
            pool.submit(stamped)

    def test_arrival_stamped(self, pool):
        pool.submit(make_tx("a"))
        pool.submit(make_tx("b"))
        pending = pool.pending()
        assert {tx.submitted_at for tx in pending} == {1, 2}

    def test_submit_all_preserves_count(self, pool):
        pool.submit_all([make_tx("a"), make_tx("b", nonce=1)])
        assert len(pool) == 2


class TestCollection:
    def test_collect_highest_fee_first(self, pool):
        pool.submit(make_tx("low", priority=0.1))
        pool.submit(make_tx("high", priority=0.9))
        collected = pool.collect(1)
        assert collected[0].sender == "high"

    def test_collect_removes_from_pool(self, pool):
        pool.submit(make_tx("a", priority=0.5))
        pool.collect(1)
        assert len(pool) == 0

    def test_collect_fee_ties_fcfs(self, pool):
        pool.submit(make_tx("first"))
        pool.submit(make_tx("second", nonce=1))
        assert pool.collect(2)[0].sender == "first"

    def test_collect_more_than_pending(self, pool):
        pool.submit(make_tx("a"))
        assert len(pool.collect(10)) == 1

    def test_collect_nonpositive_raises(self, pool):
        with pytest.raises(MempoolError):
            pool.collect(0)

    def test_peek_does_not_remove(self, pool):
        pool.submit(make_tx("a"))
        pool.peek(1)
        assert len(pool) == 1


class TestRequeue:
    def test_requeue_restores(self, pool):
        pool.submit(make_tx("a", priority=0.5))
        collected = pool.collect(1)
        pool.requeue(collected)
        assert len(pool) == 1

    def test_requeue_duplicate_rejected(self, pool):
        pool.submit(make_tx("a", priority=0.5))
        pending = pool.pending()
        with pytest.raises(MempoolError):
            pool.requeue(pending)

    def test_drop_unknown_raises(self, pool):
        with pytest.raises(MempoolError):
            pool.drop("0xdeadbeef")

    def test_pending_in_priority_order(self, pool):
        pool.submit(make_tx("low", priority=0.1))
        pool.submit(make_tx("high", priority=0.8))
        pool.submit(make_tx("mid", priority=0.4))
        assert [tx.sender for tx in pool.pending()] == ["high", "mid", "low"]
