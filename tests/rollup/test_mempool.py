"""Tests for Bedrock's private mempool."""

import pytest

from repro.errors import MempoolError, MempoolStalledError
from repro.rollup import BedrockMempool, NFTTransaction, TxKind


def make_tx(sender, priority=0.0, nonce=0):
    return NFTTransaction(
        kind=TxKind.MINT, sender=sender, priority_fee=priority, nonce=nonce
    )


@pytest.fixture
def pool():
    return BedrockMempool()


class TestSubmission:
    def test_submit_returns_hash(self, pool):
        tx_hash = pool.submit(make_tx("a"))
        assert tx_hash in pool
        assert len(pool) == 1

    def test_duplicate_rejected(self, pool):
        tx = make_tx("a", priority=0.3)
        stamped_hash = pool.submit(tx)
        # The same pre-stamped transaction cannot enter twice.
        stamped = pool.drop(stamped_hash)
        pool.submit(stamped)
        with pytest.raises(MempoolError):
            pool.submit(stamped)

    def test_arrival_stamped(self, pool):
        pool.submit(make_tx("a"))
        pool.submit(make_tx("b"))
        pending = pool.pending()
        assert {tx.submitted_at for tx in pending} == {1, 2}

    def test_submit_all_preserves_count(self, pool):
        pool.submit_all([make_tx("a"), make_tx("b", nonce=1)])
        assert len(pool) == 2

    def test_prestamped_submission_is_restamped(self, pool):
        # Regression: submit() used to keep a caller-supplied
        # ``submitted_at``, so pre-stamped transactions bypassed the
        # pool's own arrival counter entirely.
        tx = NFTTransaction(kind=TxKind.MINT, sender="a", submitted_at=99)
        pool.submit(tx)
        assert pool.pending()[0].submitted_at == 1

    def test_fee_ties_fcfs_despite_prestamped_arrival(self, pool):
        # Regression: a submitter could jump the FCFS queue within a fee
        # level by pre-stamping a low submitted_at; admission order must
        # win regardless of the stamp the transaction arrived with.
        pool.submit(make_tx("first"))
        pool.submit(make_tx("second", nonce=1))
        jumper = NFTTransaction(
            kind=TxKind.MINT, sender="jumper", nonce=2, submitted_at=1
        )
        pool.submit(jumper)
        order = [tx.sender for tx in pool.collect(3)]
        assert order == ["first", "second", "jumper"]

    def test_duplicate_detected_across_stamps(self, pool):
        # The same logical transaction is a duplicate no matter how the
        # resubmitted copy was stamped.
        pool.submit(make_tx("a"))
        with pytest.raises(MempoolError):
            pool.submit(
                NFTTransaction(kind=TxKind.MINT, sender="a", submitted_at=77)
            )


class TestCollection:
    def test_collect_highest_fee_first(self, pool):
        pool.submit(make_tx("low", priority=0.1))
        pool.submit(make_tx("high", priority=0.9))
        collected = pool.collect(1)
        assert collected[0].sender == "high"

    def test_collect_removes_from_pool(self, pool):
        pool.submit(make_tx("a", priority=0.5))
        pool.collect(1)
        assert len(pool) == 0

    def test_collect_fee_ties_fcfs(self, pool):
        pool.submit(make_tx("first"))
        pool.submit(make_tx("second", nonce=1))
        assert pool.collect(2)[0].sender == "first"

    def test_collect_more_than_pending(self, pool):
        pool.submit(make_tx("a"))
        assert len(pool.collect(10)) == 1

    def test_collect_nonpositive_raises(self, pool):
        with pytest.raises(MempoolError):
            pool.collect(0)

    def test_peek_does_not_remove(self, pool):
        pool.submit(make_tx("a"))
        pool.peek(1)
        assert len(pool) == 1

    def test_peek_matches_collect_prefix(self, pool):
        for index, priority in enumerate([0.3, 0.9, 0.1, 0.9, 0.5]):
            pool.submit(make_tx(f"s{index}", priority=priority, nonce=index))
        preview = pool.peek(3)
        assert pool.collect(3) == preview

    def test_drop_leaves_priority_order_intact(self, pool):
        top = pool.submit(make_tx("gone", priority=0.9))
        pool.submit(make_tx("kept", priority=0.1, nonce=1))
        pool.drop(top)
        assert [tx.sender for tx in pool.collect(2)] == ["kept"]


class TestStall:
    def test_collect_while_stalled_raises(self, pool):
        # Regression: a stalled pool used to answer collect() with an
        # empty tuple, indistinguishable from a drained pool.
        pool.submit(make_tx("a"))
        pool.stall()
        with pytest.raises(MempoolStalledError):
            pool.collect(1)
        pool.resume()
        assert len(pool.collect(1)) == 1

    def test_stalled_error_is_a_mempool_error(self, pool):
        pool.stall()
        with pytest.raises(MempoolError):
            pool.collect(1)

    def test_stalled_pool_still_accepts_submissions(self, pool):
        pool.stall()
        pool.submit(make_tx("a"))
        assert len(pool) == 1


class TestRequeue:
    def test_requeue_restores(self, pool):
        pool.submit(make_tx("a", priority=0.5))
        collected = pool.collect(1)
        pool.requeue(collected)
        assert len(pool) == 1

    def test_requeue_duplicate_rejected(self, pool):
        pool.submit(make_tx("a", priority=0.5))
        pending = pool.pending()
        with pytest.raises(MempoolError):
            pool.requeue(pending)

    def test_requeue_then_collect_restores_fcfs_position(self, pool):
        # A requeued transaction keeps its original arrival stamp, so it
        # re-enters fee-tie order ahead of anything submitted since.
        pool.submit(make_tx("early"))
        pool.submit(make_tx("later", nonce=1))
        collected = pool.collect(2)
        pool.submit(make_tx("newest", nonce=2))
        pool.requeue(collected)
        order = [tx.sender for tx in pool.collect(3)]
        assert order == ["early", "later", "newest"]

    def test_requeue_ties_broken_by_original_arrival(self, pool):
        # Requeue order must not matter: ties re-resolve by the stamps
        # the transactions were first admitted with.
        pool.submit(make_tx("a"))
        pool.submit(make_tx("b", nonce=1))
        first, second = pool.collect(2)
        pool.requeue([second])
        pool.requeue([first])
        assert [tx.sender for tx in pool.collect(2)] == ["a", "b"]

    def test_requeue_then_collect_deterministic(self, pool):
        # Same submissions + same requeues => same drain order, run to run.
        def run():
            p = BedrockMempool()
            p.submit_all(
                [make_tx(f"u{i}", priority=0.5, nonce=i) for i in range(6)]
            )
            taken = p.collect(3)
            p.submit(make_tx("late", priority=0.5, nonce=6))
            p.requeue(taken)
            return [tx.sender for tx in p.collect(7)]

        assert run() == run()
        assert run()[:3] == ["u0", "u1", "u2"]

    def test_drop_unknown_raises(self, pool):
        with pytest.raises(MempoolError):
            pool.drop("0xdeadbeef")

    def test_pending_in_priority_order(self, pool):
        pool.submit(make_tx("low", priority=0.1))
        pool.submit(make_tx("high", priority=0.8))
        pool.submit(make_tx("mid", priority=0.4))
        assert [tx.sender for tx in pool.pending()] == ["high", "mid", "low"]
