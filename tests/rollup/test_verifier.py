"""Tests for verifiers — the attack's invisibility to fraud proofs."""

import dataclasses

import pytest

from repro.rollup import Verifier, build_batch
from repro.workloads import CASE3_ORDER


@pytest.fixture
def verifier():
    return Verifier("verifier-0")


class TestInspection:
    def test_honest_batch_not_challenged(self, case_workload, verifier):
        batch, _ = build_batch(
            "agg", case_workload.pre_state, case_workload.transactions
        )
        report = verifier.inspect(batch, case_workload.pre_state)
        assert not report.should_challenge

    def test_parole_reordered_batch_not_challenged(self, case_workload, verifier):
        """The paper's central point: reordering survives verification."""
        reordered = [case_workload.transactions[i] for i in CASE3_ORDER]
        batch, _ = build_batch("agg", case_workload.pre_state, reordered)
        report = verifier.inspect(batch, case_workload.pre_state)
        assert not report.should_challenge

    def test_forged_post_root_challenged(self, case_workload, verifier):
        batch, _ = build_batch(
            "agg", case_workload.pre_state, case_workload.transactions
        )
        forged = dataclasses.replace(batch, post_state_root="0xlies")
        report = verifier.inspect(forged, case_workload.pre_state)
        assert report.should_challenge

    def test_tampered_tx_root_challenged(self, case_workload, verifier):
        batch, _ = build_batch(
            "agg", case_workload.pre_state, case_workload.transactions
        )
        forged = dataclasses.replace(batch, tx_root="0xwrong")
        report = verifier.inspect(forged, case_workload.pre_state)
        assert report.should_challenge
        assert not report.tx_root_ok

    def test_report_carries_recomputed_root(self, case_workload, verifier):
        batch, _ = build_batch(
            "agg", case_workload.pre_state, case_workload.transactions
        )
        report = verifier.inspect(batch, case_workload.pre_state)
        assert report.recomputed_post_root == batch.post_state_root
