"""Tests for NFT transactions and fee ordering."""

import pytest

from repro.errors import RollupError
from repro.rollup import NFTTransaction, TxKind
from repro.rollup.transaction import involvement_counts, sort_by_fee


class TestValidation:
    def test_transfer_requires_recipient(self):
        with pytest.raises(RollupError):
            NFTTransaction(kind=TxKind.TRANSFER, sender="a")

    def test_mint_rejects_recipient(self):
        with pytest.raises(RollupError):
            NFTTransaction(kind=TxKind.MINT, sender="a", recipient="b")

    def test_burn_rejects_recipient(self):
        with pytest.raises(RollupError):
            NFTTransaction(kind=TxKind.BURN, sender="a", recipient="b")

    def test_negative_fee_rejected(self):
        with pytest.raises(RollupError):
            NFTTransaction(kind=TxKind.MINT, sender="a", base_fee=-1.0)


class TestProperties:
    def test_total_fee(self):
        tx = NFTTransaction(
            kind=TxKind.MINT, sender="a", base_fee=1.0, priority_fee=0.5
        )
        assert tx.total_fee == pytest.approx(1.5)

    def test_tx_hash_stable(self):
        a = NFTTransaction(kind=TxKind.MINT, sender="a", nonce=1)
        b = NFTTransaction(kind=TxKind.MINT, sender="a", nonce=1)
        assert a.tx_hash == b.tx_hash

    def test_tx_hash_distinguishes_nonce(self):
        a = NFTTransaction(kind=TxKind.MINT, sender="a", nonce=1)
        b = NFTTransaction(kind=TxKind.MINT, sender="a", nonce=2)
        assert a.tx_hash != b.tx_hash

    def test_involves_sender_and_recipient(self):
        tx = NFTTransaction(kind=TxKind.TRANSFER, sender="a", recipient="b")
        assert tx.involves("a") and tx.involves("b")
        assert not tx.involves("c")

    def test_parties(self):
        transfer = NFTTransaction(kind=TxKind.TRANSFER, sender="a", recipient="b")
        burn = NFTTransaction(kind=TxKind.BURN, sender="a")
        assert transfer.parties() == ("a", "b")
        assert burn.parties() == ("a",)

    def test_describe_matches_case_study_format(self):
        tx = NFTTransaction(kind=TxKind.TRANSFER, sender="U1", recipient="U2")
        assert tx.describe() == "Transfer PT: U1 -> U2"
        assert NFTTransaction(kind=TxKind.MINT, sender="U19").describe() == "Mint PT: U19"


class TestFeeOrdering:
    def test_sorts_descending_by_total_fee(self):
        txs = [
            NFTTransaction(kind=TxKind.MINT, sender="a", priority_fee=0.1, nonce=0),
            NFTTransaction(kind=TxKind.MINT, sender="b", priority_fee=0.9, nonce=1),
            NFTTransaction(kind=TxKind.MINT, sender="c", priority_fee=0.5, nonce=2),
        ]
        ordered = sort_by_fee(txs)
        assert [tx.sender for tx in ordered] == ["b", "c", "a"]

    def test_fee_ties_broken_by_arrival(self):
        txs = [
            NFTTransaction(kind=TxKind.MINT, sender="late", submitted_at=5, nonce=0),
            NFTTransaction(kind=TxKind.MINT, sender="early", submitted_at=1, nonce=1),
        ]
        assert sort_by_fee(txs)[0].sender == "early"

    def test_involvement_counts(self):
        txs = [
            NFTTransaction(kind=TxKind.TRANSFER, sender="a", recipient="b", nonce=0),
            NFTTransaction(kind=TxKind.MINT, sender="a", nonce=1),
            NFTTransaction(kind=TxKind.BURN, sender="c", nonce=2),
        ]
        counts = involvement_counts(txs, ["a", "b", "c", "d"])
        assert counts == {"a": 2, "b": 1, "c": 1, "d": 0}
