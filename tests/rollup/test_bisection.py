"""Tests for the interactive fraud-proof bisection game."""

import math

import pytest

from repro.errors import ChallengeError
from repro.rollup import (
    BisectionGame,
    CorruptExecutor,
    ExecutionCommitment,
    honest_commitment,
)
from repro.workloads import CASE3_ORDER


@pytest.fixture
def game(case_workload):
    return BisectionGame(case_workload.pre_state)


class TestHonestCommitment:
    def test_root_count(self, case_workload):
        commitment = honest_commitment(
            case_workload.pre_state, case_workload.transactions
        )
        assert len(commitment.roots) == 9

    def test_pre_root_matches_state(self, case_workload):
        from repro.rollup import state_root
        commitment = honest_commitment(
            case_workload.pre_state, case_workload.transactions
        )
        assert commitment.pre_root == state_root(case_workload.pre_state)

    def test_wrong_root_count_rejected(self, case_workload):
        with pytest.raises(ChallengeError):
            ExecutionCommitment(
                transactions=case_workload.transactions, roots=("a", "b")
            )


class TestGame:
    def test_honest_commitment_finds_no_fraud(self, case_workload, game):
        commitment = honest_commitment(
            case_workload.pre_state, case_workload.transactions
        )
        result = game.play(commitment)
        assert not result.fraud_found
        assert result.divergent_step is None

    def test_reordered_batch_finds_no_fraud(self, case_workload, game):
        """The paper's point, sharpened: even interactive bisection sees
        nothing wrong with a PAROLE-reordered batch."""
        reordered = [case_workload.transactions[i] for i in CASE3_ORDER]
        commitment = honest_commitment(case_workload.pre_state, reordered)
        result = game.play(commitment)
        assert not result.fraud_found

    @pytest.mark.parametrize("fault_step", [0, 3, 7])
    def test_corrupt_execution_localised_exactly(
        self, case_workload, game, fault_step
    ):
        corrupt = CorruptExecutor(fault_step=fault_step)
        commitment = corrupt.commitment(
            case_workload.pre_state, case_workload.transactions
        )
        result = game.play(commitment)
        assert result.fraud_found
        assert result.divergent_step == fault_step
        assert result.claimed_root_at_step != result.recomputed_root_at_step

    def test_rounds_logarithmic(self, case_workload, game):
        corrupt = CorruptExecutor(fault_step=5)
        commitment = corrupt.commitment(
            case_workload.pre_state, case_workload.transactions
        )
        result = game.play(commitment)
        assert result.rounds_played <= math.ceil(math.log2(8)) + 1

    def test_adjudicate_single_step(self, case_workload, game):
        honest = honest_commitment(
            case_workload.pre_state, case_workload.transactions
        )
        corrupt = CorruptExecutor(fault_step=4).commitment(
            case_workload.pre_state, case_workload.transactions
        )
        assert game.adjudicate_step(honest, 4)
        assert not game.adjudicate_step(corrupt, 4)

    def test_adjudicate_out_of_range(self, case_workload, game):
        honest = honest_commitment(
            case_workload.pre_state, case_workload.transactions
        )
        with pytest.raises(ChallengeError):
            game.adjudicate_step(honest, 99)

    def test_fault_step_out_of_range(self, case_workload):
        corrupt = CorruptExecutor(fault_step=50)
        with pytest.raises(ChallengeError):
            corrupt.commitment(
                case_workload.pre_state, case_workload.transactions
            )

    def test_wrong_pre_root_caught_immediately(self, case_workload, game):
        honest = honest_commitment(
            case_workload.pre_state, case_workload.transactions
        )
        forged = ExecutionCommitment(
            transactions=honest.transactions,
            roots=("0xlie",) + honest.roots[1:],
        )
        result = game.play(forged)
        assert result.fraud_found
        assert result.divergent_step == 0
        assert result.rounds_played == 0
