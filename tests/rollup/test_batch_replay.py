"""Differential tests for the columnar batch replay kernel.

The load-bearing property: ``BatchReplayEngine.evaluate_many(orders)``
must be *bit-identical* — objective inputs, executed set, feasibility,
final price, wealth floats — to K independent ``IncrementalOVM``
replays of the same orders, in both execution modes, with and without
fee charging, including infeasible and reverting candidates.  Both
kernel backends (the compiled C step loop and the pure-numpy fallback)
are held to the same contract.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NFTContractConfig, WorkloadConfig
from repro.errors import TokenError
from repro.rollup import (
    BatchReplayEngine,
    ExecutionMode,
    IncrementalOVM,
    L2State,
    NFTTransaction,
    ReplayEngineStats,
    TxKind,
)
from repro.rollup.ckernel import load_kernel
from repro.workloads import generate_workload


USERS = ("ifu", "u1", "u2", "u3")

BACKENDS = ("c", "numpy")


def _mint(sender, **kw):
    return NFTTransaction(kind=TxKind.MINT, sender=sender, **kw)


def _transfer(sender, recipient, **kw):
    return NFTTransaction(
        kind=TxKind.TRANSFER, sender=sender, recipient=recipient, **kw
    )


def _burn(sender, **kw):
    return NFTTransaction(kind=TxKind.BURN, sender=sender, **kw)


def _random_collection(rng: np.random.Generator, size: int):
    """Mixed mint/transfer/burn collection (burns capped below supply
    poisoning — the reverting case gets its own dedicated tests)."""
    txs = []
    burns = 0
    for nonce in range(size):
        kind = rng.choice(3)
        sender = USERS[rng.choice(len(USERS))]
        fee = float(rng.uniform(0.1, 2.0))
        if kind == 2 and burns >= 4:
            kind = 0
        if kind == 0:
            txs.append(_mint(sender, nonce=nonce, priority_fee=fee))
        elif kind == 1:
            others = [u for u in USERS if u != sender]
            recipient = others[rng.choice(len(others))]
            txs.append(
                _transfer(sender, recipient, nonce=nonce, priority_fee=fee)
            )
        else:
            burns += 1
            txs.append(_burn(sender, nonce=nonce, priority_fee=fee))
    return tuple(txs)


def _pre_state(mode: ExecutionMode, charge_fees: bool) -> L2State:
    return L2State(
        NFTContractConfig(max_supply=12),
        balances={"ifu": 4.0, "u1": 3.0, "u2": 1.0, "u3": 0.3},
        inventory={"ifu": 2, "u1": 1, "u2": 1},
        mode=mode,
        charge_fees=charge_fees,
    )


def _batch_engine(backend, pre, txs, **kw):
    engine = BatchReplayEngine(pre, txs, **kw)
    if backend == "c":
        if engine._ckernel is None:
            pytest.skip("compiled kernel unavailable on this host")
    else:
        engine._ckernel = None
    return engine


def _assert_summaries_identical(batch, serial):
    """Every EvalSummary field, compared bit-for-bit (== on floats)."""
    assert batch.order == serial.order
    assert batch.executed == serial.executed
    assert batch.prices_before == serial.prices_before
    assert batch.remaining_after == serial.remaining_after
    assert batch.final_price == serial.final_price
    assert batch.consistent == serial.consistent
    assert batch.executed_count == serial.executed_count
    assert batch.wealth == serial.wealth
    for user, value in batch.wealth.items():
        # Not just == — identical IEEE-754 bit patterns.
        assert repr(value) == repr(serial.wealth[user])


class TestDifferentialIdentity:
    """evaluate_many ≡ K independent IncrementalOVM.evaluate calls."""

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        mode=st.sampled_from(list(ExecutionMode)),
        charge_fees=st.booleans(),
        backend=st.sampled_from(BACKENDS),
    )
    def test_matches_serial_engine(self, seed, mode, charge_fees, backend):
        rng = np.random.default_rng(seed)
        size = int(rng.integers(3, 9))
        txs = _random_collection(rng, size)
        pre = _pre_state(mode, charge_fees)
        engine = _batch_engine(
            backend, pre, txs, wealth_users=("ifu", "u1")
        )
        # Mixed-length candidate set: full permutations, ragged
        # prefixes, the empty order and one with duplicate indices.
        orders = [tuple(range(size))]
        orders += [
            tuple(int(x) for x in rng.permutation(size)) for _ in range(6)
        ]
        orders += [
            tuple(int(x) for x in rng.permutation(size)[: size // 2])
            for _ in range(2)
        ]
        orders += [(), (0,) * min(3, size)]
        summaries = engine.evaluate_many(orders)
        assert len(summaries) == len(orders)
        for order, batch_summary in zip(orders, summaries):
            serial = IncrementalOVM(
                pre, txs, wealth_users=("ifu", "u1")
            ).evaluate(order)
            _assert_summaries_identical(batch_summary, serial)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1_000),
        backend=st.sampled_from(BACKENDS),
    )
    def test_generated_workload_matches(self, seed, backend):
        workload = generate_workload(
            WorkloadConfig(mempool_size=12, seed=seed)
        )
        pre, txs = workload.pre_state, workload.transactions
        users = tuple(sorted(pre.balances))[:3]
        engine = _batch_engine(backend, pre, txs, wealth_users=users)
        rng = np.random.default_rng(seed)
        orders = [
            tuple(int(x) for x in rng.permutation(len(txs)))
            for _ in range(8)
        ]
        for order, batch_summary in zip(
            orders, engine.evaluate_many(orders)
        ):
            serial = IncrementalOVM(pre, txs, wealth_users=users).evaluate(
                order
            )
            _assert_summaries_identical(batch_summary, serial)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_agree_bit_for_bit(self, backend):
        """The two backends are interchangeable on the same candidates."""
        rng = np.random.default_rng(7)
        txs = _random_collection(rng, 8)
        pre = _pre_state(ExecutionMode.BATCH, True)
        orders = [
            tuple(int(x) for x in rng.permutation(8)) for _ in range(16)
        ]
        mine = _batch_engine(
            backend, pre, txs, wealth_users=("ifu",)
        ).evaluate_many(orders)
        other = _batch_engine(
            BACKENDS[1 - BACKENDS.index(backend)],
            pre,
            txs,
            wealth_users=("ifu",),
        ).evaluate_many(orders)
        for a, b in zip(mine, other):
            _assert_summaries_identical(a, b)


class TestInfeasibleAndReverting:
    """Candidates that fail must fail identically to the serial engine."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_infeasible_candidates_report_inconsistent(self, backend, mode):
        # u3 cannot afford a mint in STRICT, and double-spends of the
        # same token mark the batch inconsistent — both must round-trip.
        pre = _pre_state(mode, False)
        txs = (
            _mint("u3", nonce=0),
            _transfer("u1", "u2", nonce=1),
            _transfer("u1", "u3", nonce=2),
            _mint("ifu", nonce=3),
        )
        engine = _batch_engine(backend, pre, txs, wealth_users=("ifu",))
        orders = [
            (0, 1, 2, 3),
            (1, 2, 0, 3),
            (3, 2, 1, 0),
            (2, 1, 3, 0),
        ]
        for order, batch_summary in zip(orders, engine.evaluate_many(orders)):
            serial = IncrementalOVM(pre, txs, wealth_users=("ifu",)).evaluate(
                order
            )
            _assert_summaries_identical(batch_summary, serial)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_supply_exhaustion_matches(self, backend):
        pre = L2State(
            NFTContractConfig(max_supply=3),
            balances={u: 50.0 for u in USERS},
            inventory={"ifu": 1, "u1": 1},
            mode=ExecutionMode.BATCH,
        )
        txs = tuple(
            _mint(USERS[i % len(USERS)], nonce=i) for i in range(4)
        ) + (_transfer("ifu", "u2", nonce=4),)
        engine = _batch_engine(backend, pre, txs, wealth_users=("ifu",))
        rng = np.random.default_rng(0)
        orders = [
            tuple(int(x) for x in rng.permutation(5)) for _ in range(20)
        ]
        for order, batch_summary in zip(orders, engine.evaluate_many(orders)):
            serial = IncrementalOVM(pre, txs, wealth_users=("ifu",)).evaluate(
                order
            )
            _assert_summaries_identical(batch_summary, serial)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_burn_poisoning_raises_identically(self, backend):
        """Burning the supply past ``max_supply`` reverts (TokenError) —
        the batch call must raise the identical error, as a serial
        scoring loop would fail at that candidate."""
        pre = L2State(
            NFTContractConfig(max_supply=4),
            balances={u: 50.0 for u in USERS},
            inventory={"ifu": 2, "u1": 1, "u2": 1},
            mode=ExecutionMode.BATCH,
        )
        txs = (
            _burn("ifu", nonce=0),
            _burn("u1", nonce=1),
            _burn("u2", nonce=2),
            _burn("ifu", nonce=3),
            _burn("u3", nonce=4),
        )
        engine = _batch_engine(backend, pre, txs, wealth_users=("ifu",))
        poison = (0, 1, 2, 3, 4)  # fifth burn pushes supply past max
        with pytest.raises(TokenError) as batch_error:
            engine.evaluate_many([(0, 1, 2, 3), poison])
        with pytest.raises(TokenError) as serial_error:
            IncrementalOVM(pre, txs).evaluate(poison)
        assert str(batch_error.value) == str(serial_error.value)


class TestBatchBookkeeping:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stats_counters(self, backend):
        rng = np.random.default_rng(1)
        txs = _random_collection(rng, 6)
        stats = ReplayEngineStats()
        engine = _batch_engine(
            backend,
            _pre_state(ExecutionMode.BATCH, False),
            txs,
            stats=stats,
        )
        orders = [tuple(int(x) for x in rng.permutation(6)) for _ in range(5)]
        engine.evaluate_many(orders)
        assert stats.batch_calls == 1
        assert stats.batch_candidates == 5
        assert stats.batch_steps == 30
        assert stats.mean_batch_size == 5.0
        assert "mean_batch_size" in stats.as_dict()

    def test_empty_candidate_set(self):
        rng = np.random.default_rng(2)
        txs = _random_collection(rng, 4)
        engine = BatchReplayEngine(_pre_state(ExecutionMode.BATCH, False), txs)
        assert engine.evaluate_many([]) == []

    def test_kernel_backend_property(self):
        rng = np.random.default_rng(3)
        txs = _random_collection(rng, 4)
        engine = BatchReplayEngine(_pre_state(ExecutionMode.BATCH, False), txs)
        assert engine.kernel_backend in ("c", "numpy")
        engine._ckernel = None
        assert engine.kernel_backend == "numpy"

    def test_out_of_range_index_rejected(self):
        rng = np.random.default_rng(4)
        txs = _random_collection(rng, 4)
        engine = BatchReplayEngine(_pre_state(ExecutionMode.BATCH, False), txs)
        with pytest.raises(IndexError):
            engine.evaluate_many([(0, 1), (0, 99)])


class TestKernelLoader:
    def test_disable_via_environment(self, monkeypatch):
        from repro.rollup import ckernel

        monkeypatch.setenv("REPRO_BATCH_CKERNEL", "0")
        ckernel._reset_for_tests()
        try:
            assert load_kernel() is None
            assert ckernel.kernel_backend() == "numpy"
        finally:
            monkeypatch.delenv("REPRO_BATCH_CKERNEL")
            ckernel._reset_for_tests()

    def test_loader_is_cached(self):
        assert load_kernel() is load_kernel()
