"""Differential and unit tests for the incremental replay engine.

The load-bearing property: :class:`IncrementalOVM` must be
*behaviour-identical* to a from-scratch ``OVM.replay`` — step for step,
float for float — in both execution modes, with and without fee
charging, across arbitrary evaluation orders (which exercise arbitrary
rewind/resume depths).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NFTContractConfig
from repro.rollup import (
    ExecutionMode,
    IncrementalOVM,
    L2State,
    NFTTransaction,
    OVM,
    PermutationCache,
    ReplayEngineStats,
    TxKind,
)
from repro.rollup.state import CountingInventory


USERS = ("ifu", "u1", "u2", "u3")


def _mint(sender, **kw):
    return NFTTransaction(kind=TxKind.MINT, sender=sender, **kw)


def _transfer(sender, recipient, **kw):
    return NFTTransaction(
        kind=TxKind.TRANSFER, sender=sender, recipient=recipient, **kw
    )


def _burn(sender, **kw):
    return NFTTransaction(kind=TxKind.BURN, sender=sender, **kw)


def _random_collection(rng: np.random.Generator, size: int):
    """A mixed mint/transfer/burn collection over the fixed user set.

    Burns are capped at the pre-minted total (4): burning the global
    supply above ``max_supply`` poisons Eq. 10 and raises in the scratch
    OVM too, so such sequences are outside the replay contract.
    """
    txs = []
    burns = 0
    for nonce in range(size):
        kind = rng.choice(3)
        sender = USERS[rng.choice(len(USERS))]
        fee = float(rng.uniform(0.1, 2.0))
        if kind == 2 and burns >= 4:
            kind = 0
        if kind == 0:
            txs.append(_mint(sender, nonce=nonce, priority_fee=fee))
        elif kind == 1:
            others = [u for u in USERS if u != sender]
            recipient = others[rng.choice(len(others))]
            txs.append(
                _transfer(sender, recipient, nonce=nonce, priority_fee=fee)
            )
        else:
            burns += 1
            txs.append(_burn(sender, nonce=nonce, priority_fee=fee))
    return tuple(txs)


def _pre_state(mode: ExecutionMode, charge_fees: bool) -> L2State:
    return L2State(
        NFTContractConfig(max_supply=12),
        balances={"ifu": 4.0, "u1": 3.0, "u2": 1.0, "u3": 0.3},
        inventory={"ifu": 2, "u1": 1, "u2": 1},
        mode=mode,
        charge_fees=charge_fees,
    )


def _assert_traces_identical(incremental, scratch):
    assert len(incremental.steps) == len(scratch.steps)
    for mine, theirs in zip(incremental.steps, scratch.steps):
        assert mine.index == theirs.index
        assert mine.tx == theirs.tx
        assert mine.result.executed == theirs.result.executed
        assert mine.result.validity == theirs.result.validity
        assert mine.result.price_before == theirs.result.price_before
        assert mine.result.price_after == theirs.result.price_after
        assert (
            mine.result.remaining_supply == theirs.result.remaining_supply
        )
        assert mine.watched_wealth == theirs.watched_wealth
    assert (
        incremental.final_state.canonical_items()
        == scratch.final_state.canonical_items()
    )
    assert incremental.consistent() == scratch.consistent()


class TestDifferentialIdentity:
    """IncrementalOVM ≡ OVM.replay over randomized order sequences."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        mode=st.sampled_from(list(ExecutionMode)),
        charge_fees=st.booleans(),
    )
    def test_matches_scratch_replay(self, seed, mode, charge_fees):
        rng = np.random.default_rng(seed)
        size = int(rng.integers(3, 9))
        txs = _random_collection(rng, size)
        pre = _pre_state(mode, charge_fees)
        engine = IncrementalOVM(
            pre, txs, watch=("ifu", "u1"), wealth_users=("ifu", "u1")
        )
        scratch = OVM()
        # A run of orders: identity, then random permutations — forcing
        # rewinds of every depth against the engine's current order.
        orders = [tuple(range(size))]
        orders += [
            tuple(int(x) for x in rng.permutation(size)) for _ in range(8)
        ]
        for order in orders:
            sequence = tuple(txs[i] for i in order)
            incremental = engine.replay_order(order)
            reference = scratch.replay(pre, sequence, watch=("ifu", "u1"))
            _assert_traces_identical(incremental, reference)
            # The allocation-light scoring path must agree column for
            # column with the trace-shaped reference.
            summary = engine.evaluate(order)
            assert summary.executed == [s.executed for s in reference.steps]
            assert summary.prices_before == [
                s.result.price_before for s in reference.steps
            ]
            assert summary.remaining_after == [
                s.result.remaining_supply for s in reference.steps
            ]
            assert summary.final_price == reference.final_state.unit_price
            assert summary.consistent == reference.consistent()
            assert summary.executed_count == reference.executed_count
            assert summary.wealth == {
                user: reference.final_state.wealth(user)
                for user in ("ifu", "u1")
            }

    def test_single_swap_resume(self):
        """A pairwise swap resumes from min(i, j), results unchanged."""
        rng = np.random.default_rng(7)
        txs = _random_collection(rng, 8)
        pre = _pre_state(ExecutionMode.BATCH, False)
        stats = ReplayEngineStats()
        engine = IncrementalOVM(pre, txs, stats=stats)
        order = list(range(8))
        engine.replay_order(order)
        assert stats.scratch_replays == 1
        order[2], order[5] = order[5], order[2]
        trace = engine.replay_order(order)
        assert stats.incremental_replays == 1
        assert stats.resume_depth_total == 2  # resumed at min(2, 5)
        reference = OVM().replay(pre, tuple(txs[i] for i in order))
        _assert_traces_identical(trace, reference)

    def test_trace_final_state_survives_later_evaluations(self):
        rng = np.random.default_rng(11)
        txs = _random_collection(rng, 6)
        pre = _pre_state(ExecutionMode.BATCH, False)
        engine = IncrementalOVM(pre, txs)
        first = engine.replay_order(range(6))
        items_before = first.final_state.canonical_items()
        engine.replay_order(tuple(reversed(range(6))))
        assert first.final_state.canonical_items() == items_before

    def test_prefix_orders_supported(self):
        rng = np.random.default_rng(3)
        txs = _random_collection(rng, 6)
        pre = _pre_state(ExecutionMode.STRICT, True)
        engine = IncrementalOVM(pre, txs)
        engine.replay_order(range(6))
        partial = engine.replay_order((0, 1, 2))
        reference = OVM().replay(pre, txs[:3])
        _assert_traces_identical(partial, reference)

    def test_replay_accepts_transaction_sequences(self):
        rng = np.random.default_rng(5)
        txs = _random_collection(rng, 5)
        pre = _pre_state(ExecutionMode.BATCH, False)
        engine = IncrementalOVM(pre, txs)
        sequence = (txs[3], txs[0], txs[4], txs[1], txs[2])
        trace = engine.replay(sequence)
        _assert_traces_identical(trace, OVM().replay(pre, sequence))

    def test_engine_recovers_after_apply_error(self):
        """A mid-replay error (burn beyond supply) leaves the engine usable."""
        from repro.errors import TokenError

        pre = L2State(
            NFTContractConfig(max_supply=3),
            balances={"a": 5.0, "b": 5.0},
            inventory={"a": 1},
            mode=ExecutionMode.BATCH,
        )
        txs = (_burn("a", nonce=0), _burn("a", nonce=1), _mint("b", nonce=2))
        engine = IncrementalOVM(pre, txs)
        # Order (0, 1, 2): the second burn pushes supply above max -> raises,
        # exactly as OVM.replay would on the same sequence.
        with pytest.raises(TokenError):
            engine.replay_order((0, 1, 2))
        with pytest.raises(TokenError):
            OVM().replay(pre, (txs[0], txs[1], txs[2]))
        # The engine must still answer valid orders correctly afterwards.
        order = (0, 2, 1)
        trace = engine.replay_order(order)
        reference = OVM().replay(pre, tuple(txs[i] for i in order))
        _assert_traces_identical(trace, reference)

    def test_foreign_transaction_rejected(self):
        rng = np.random.default_rng(5)
        txs = _random_collection(rng, 4)
        engine = IncrementalOVM(_pre_state(ExecutionMode.BATCH, False), txs)
        foreign = _mint("stranger", nonce=99)
        with pytest.raises(ValueError):
            engine.replay((foreign,))


class TestCountingInventory:
    """O(1) counters stay exact under every mutation path."""

    def test_initial_totals(self):
        inv = CountingInventory({"a": 3, "b": 2})
        assert inv.total == 5
        assert inv.negative_count == 0

    def test_setitem_tracks_total_and_negatives(self):
        inv = CountingInventory()
        inv["a"] = 2
        inv["b"] = -1
        assert inv.total == 1
        assert inv.negative_count == 1
        inv["b"] = 1  # negative entry repaired
        assert inv.total == 3
        assert inv.negative_count == 0

    def test_delete_and_pop(self):
        inv = CountingInventory({"a": 2, "b": -3})
        del inv["a"]
        assert inv.total == -3
        assert inv.pop("b") == -3
        assert inv.total == 0
        assert inv.negative_count == 0
        assert inv.pop("missing", 7) == 7
        with pytest.raises(KeyError):
            inv.pop("missing")

    def test_update_clear_setdefault(self):
        inv = CountingInventory()
        inv.update({"a": 1, "b": 2})
        assert inv.total == 3
        assert inv.setdefault("c", 4) == 4
        assert inv.setdefault("a", 99) == 1
        assert inv.total == 7
        inv.clear()
        assert inv.total == 0 and inv.negative_count == 0

    def test_copy_independent(self):
        inv = CountingInventory({"a": 1})
        dup = inv.copy()
        dup["a"] = 5
        assert inv.total == 1
        assert dup.total == 5


class TestStateCounterInvalidation:
    """Cached price / supply stay correct through every transition."""

    def _state(self):
        return L2State(
            NFTContractConfig(max_supply=10),
            balances={"a": 5.0, "b": 5.0},
            inventory={"a": 2},
        )

    def test_mint_invalidates_price(self):
        state = self._state()
        before = state.unit_price
        state.apply(_mint("a"))
        assert state.minted_count == 3
        assert state.unit_price == state.pricing.price(7)
        assert state.unit_price > before

    def test_burn_invalidates_price(self):
        state = self._state()
        state.apply(_burn("a"))
        assert state.minted_count == 1
        assert state.unit_price == state.pricing.price(9)

    def test_transfer_keeps_cached_price(self):
        state = self._state()
        before = state.unit_price
        state.apply(_transfer("a", "b"))
        assert state.unit_price == before
        assert state.minted_count == 2

    def test_skipped_tx_changes_nothing(self):
        state = L2State(
            NFTContractConfig(max_supply=10), balances={"poor": 0.01}
        )
        before = state.unit_price
        result = state.apply(_mint("poor"))
        assert not result.executed
        assert state.unit_price == before
        assert state.minted_count == 0

    def test_external_inventory_mutation_seen(self):
        state = self._state()
        state.inventory["b"] = 3
        assert state.minted_count == 5
        assert state.unit_price == state.pricing.price(5)
        state.inventory["b"] = -1
        assert not state.inventory_is_consistent()

    def test_consistency_counter_matches_scan(self):
        state = self._state()
        state.mode = ExecutionMode.BATCH
        state.apply(_transfer("b", "a"))  # b goes net-negative in BATCH
        assert state.inventory["b"] == -1
        assert not state.inventory_is_consistent()
        state.apply(_mint("b"))
        assert state.inventory_is_consistent()


class TestPermutationCache:
    def test_hit_miss_counting(self):
        stats = ReplayEngineStats()
        cache = PermutationCache(maxsize=2, stats=stats)
        assert cache.get((0, 1)) is None
        cache.put((0, 1), "a")
        assert cache.get((0, 1)) == "a"
        assert stats.cache_misses == 1
        assert stats.cache_hits == 1
        assert stats.cache_hit_rate == 0.5

    def test_lru_eviction_order(self):
        stats = ReplayEngineStats()
        cache = PermutationCache(maxsize=2, stats=stats)
        cache.put((0,), "a")
        cache.put((1,), "b")
        cache.get((0,))  # refresh (0,) — (1,) becomes LRU
        cache.put((2,), "c")
        assert stats.cache_evictions == 1
        assert (1,) not in cache
        assert cache.get((0,)) == "a"
        assert cache.get((2,)) == "c"

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            PermutationCache(maxsize=0)
