"""Tests for the end-to-end rollup node."""

import pytest

from repro.config import RollupConfig, WorkloadConfig
from repro.errors import RollupError
from repro.rollup import (
    AdversarialAggregator,
    Aggregator,
    RollupNode,
    Verifier,
)
from repro.workloads import generate_workload


@pytest.fixture
def node_setup():
    workload = generate_workload(
        WorkloadConfig(mempool_size=12, num_users=8, num_ifus=1,
                       min_ifu_involvement=3, seed=3)
    )
    node = RollupNode(
        l2_state=workload.pre_state,
        config=RollupConfig(aggregator_mempool_size=6,
                            challenge_period_blocks=2),
    )
    for user in workload.users:
        node.fund_and_deposit(user, 1.0)
    return node, workload


class TestSetup:
    def test_deposit_credits_l2(self, node_setup):
        node, workload = node_setup
        user = workload.users[0]
        assert node.contract.l2_balance(user) > 0

    def test_round_without_aggregators_raises(self, node_setup):
        node, _ = node_setup
        with pytest.raises(RollupError):
            node.run_round()


class TestRounds:
    def test_round_commits_batches(self, node_setup):
        node, workload = node_setup
        node.add_aggregator(Aggregator("agg-0"))
        node.add_aggregator(Aggregator("agg-1"))
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round()
        assert len(report.batches) == 2
        assert len(node.contract.batches) == 2

    def test_honest_round_unchallenged(self, node_setup):
        node, workload = node_setup
        node.add_aggregator(Aggregator("agg-0"))
        node.add_verifier(Verifier("ver-0"))
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round()
        assert report.challenges == []

    def test_adversarial_round_also_unchallenged(self, node_setup):
        node, workload = node_setup
        node.add_aggregator(
            AdversarialAggregator("evil", lambda s, c: tuple(reversed(c)))
        )
        node.add_verifier(Verifier("ver-0"))
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round()
        assert report.attacked
        assert report.challenges == []

    def test_mempool_drained_in_fee_order(self, node_setup):
        node, workload = node_setup
        node.add_aggregator(Aggregator("agg-0"))
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round(collect_per_aggregator=4)
        fees = [tx.total_fee for tx in report.results[0].original_order]
        assert fees == sorted(fees, reverse=True)

    def test_finalization_after_window(self, node_setup):
        node, workload = node_setup
        node.add_aggregator(Aggregator("agg-0"))
        for tx in workload.transactions:
            node.submit(tx)
        node.run_round()
        assert node.finalize_ready_batches() == []  # window still open
        node.advance_challenge_window()
        finalized = node.finalize_ready_batches()
        assert finalized != []

    def test_state_advances_across_batches(self, node_setup):
        node, workload = node_setup
        node.add_aggregator(Aggregator("agg-0"))
        root_before = node.current_state_root()
        for tx in workload.transactions:
            node.submit(tx)
        node.run_round()
        assert node.current_state_root() != root_before

    def test_l1_chain_grows_per_round(self, node_setup):
        node, workload = node_setup
        node.add_aggregator(Aggregator("agg-0"))
        for tx in workload.transactions:
            node.submit(tx)
        height_before = node.chain.height
        node.run_round()
        assert node.chain.height == height_before + 1
        assert node.chain.verify_ancestry()
