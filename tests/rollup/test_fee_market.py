"""Tests for the EIP-1559 fee market."""

import pytest

from repro.errors import RollupError
from repro.rollup import FeeMarket


@pytest.fixture
def market():
    return FeeMarket(base_fee=1.0, target_fullness=0.5)


class TestController:
    def test_full_block_raises_base_fee(self, market):
        updated = market.on_block(1.0)
        assert updated == pytest.approx(1.0 + 1.0 / 8.0)

    def test_empty_block_lowers_base_fee(self, market):
        updated = market.on_block(0.0)
        assert updated == pytest.approx(1.0 - 1.0 / 8.0)

    def test_target_block_keeps_base_fee(self, market):
        assert market.on_block(0.5) == pytest.approx(1.0)

    def test_change_clamped_to_one_eighth(self, market):
        # fullness=1 with target 0.25 gives pressure 3; still clamps.
        tight = FeeMarket(base_fee=1.0, target_fullness=0.25)
        assert tight.on_block(1.0) == pytest.approx(1.0 + 1.0 / 8.0)

    def test_base_fee_floor(self):
        market = FeeMarket(base_fee=0.011, min_base_fee=0.01)
        for _ in range(20):
            market.on_block(0.0)
        assert market.base_fee == pytest.approx(0.01)

    def test_sustained_congestion_compounds(self, market):
        fees = market.simulate([1.0] * 10)
        assert fees[-1] == pytest.approx((1.0 + 1.0 / 8.0) ** 10)
        assert all(a < b for a, b in zip(fees, fees[1:]))

    def test_fullness_validated(self, market):
        with pytest.raises(RollupError):
            market.on_block(1.5)

    def test_history_recorded(self, market):
        market.simulate([0.3, 0.9])
        assert len(market.history) == 2
        assert market.history[0][0] == 0.3


class TestSuggestions:
    def test_priority_fee_scales_with_urgency(self, market):
        patient = market.suggest_priority_fee(0.0)
        urgent = market.suggest_priority_fee(1.0)
        assert urgent > patient > 0

    def test_priority_fee_scales_with_base_fee(self, market):
        low = market.suggest_priority_fee(0.5)
        market.simulate([1.0] * 5)
        high = market.suggest_priority_fee(0.5)
        assert high > low

    def test_total_fee(self, market):
        assert market.total_fee(0.5) == pytest.approx(
            market.base_fee + market.suggest_priority_fee(0.5)
        )

    def test_urgency_validated(self, market):
        with pytest.raises(RollupError):
            market.suggest_priority_fee(2.0)


class TestSequencerIntegration:
    def test_sequencer_updates_market(self):
        from repro.config import RollupConfig, WorkloadConfig
        from repro.rollup import Aggregator, Sequencer
        from repro.workloads import generate_workload

        workload = generate_workload(
            WorkloadConfig(mempool_size=12, num_users=8, num_ifus=1, seed=4)
        )
        market = FeeMarket(base_fee=1.0, target_fullness=0.5)
        sequencer = Sequencer(
            workload.pre_state.copy(),
            config=RollupConfig(block_interval=1, aggregator_mempool_size=4),
            fee_market=market,
        )
        sequencer.register(Aggregator("agg-0"))
        for tx in workload.transactions:
            sequencer.submit(tx)
        sequencer.run_until_empty()
        # Three full blocks (4/4 fullness) -> base fee compounds upward.
        assert market.base_fee == pytest.approx((1.0 + 1.0 / 8.0) ** 3)
        assert len(market.history) == 3
