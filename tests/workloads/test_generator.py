"""Tests for the random workload generator."""

import pytest

from repro.config import WorkloadConfig
from repro.rollup import ExecutionMode, OVM
from repro.workloads import generate_workload


class TestValidity:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_original_order_strictly_valid(self, seed):
        workload = generate_workload(
            WorkloadConfig(mempool_size=20, num_users=10, num_ifus=1, seed=seed)
        )
        strict = OVM(mode=ExecutionMode.STRICT)
        trace = strict.replay(workload.pre_state, workload.transactions)
        assert trace.all_executed

    def test_requested_size_honoured(self):
        workload = generate_workload(WorkloadConfig(mempool_size=15, seed=0))
        assert workload.mempool_size == 15

    def test_supply_never_oversubscribed(self):
        workload = generate_workload(WorkloadConfig(mempool_size=30, seed=2))
        trace = OVM().replay(workload.pre_state, workload.transactions)
        for step in trace.steps:
            assert step.result.remaining_supply >= 0


class TestIFUGuarantees:
    @pytest.mark.parametrize("num_ifus", [1, 2, 3])
    def test_min_involvement_met(self, num_ifus):
        config = WorkloadConfig(
            mempool_size=30, num_users=12, num_ifus=num_ifus,
            min_ifu_involvement=3, seed=5,
        )
        workload = generate_workload(config)
        involvement = workload.ifu_involvement()
        assert all(count >= 3 for count in involvement.values())

    def test_ifus_start_with_inventory(self):
        workload = generate_workload(
            WorkloadConfig(mempool_size=10, num_users=8, num_ifus=2, seed=1)
        )
        for ifu in workload.ifus:
            assert workload.pre_state.holdings(ifu) >= 1

    def test_ifus_hold_tokens_at_low_premint_fraction(self):
        # Regression: with premint < num_ifus the pre-state builder
        # truncated the holder list and silently dropped the "every IFU
        # starts with a token" invariant.
        workload = generate_workload(
            WorkloadConfig(
                mempool_size=10,
                num_users=8,
                num_ifus=3,
                max_supply=20,
                premint_fraction=0.05,
                seed=1,
            )
        )
        for ifu in workload.ifus:
            assert workload.pre_state.holdings(ifu) >= 1

    def test_premint_zero_still_seeds_ifus(self):
        workload = generate_workload(
            WorkloadConfig(
                mempool_size=10,
                num_users=8,
                num_ifus=2,
                max_supply=20,
                premint_fraction=0.0,
                seed=3,
            )
        )
        total = sum(
            workload.pre_state.holdings(user) for user in workload.users
        )
        assert total == 2  # exactly one token per IFU, nothing else

    def test_ifu_names_distinct_from_users(self):
        workload = generate_workload(
            WorkloadConfig(mempool_size=10, num_users=8, num_ifus=2, seed=1)
        )
        assert set(workload.ifus) <= set(workload.users)
        assert len(set(workload.users)) == 8


class TestFees:
    def test_fee_order_equals_generated_order(self):
        workload = generate_workload(WorkloadConfig(mempool_size=20, seed=3))
        fees = [tx.total_fee for tx in workload.transactions]
        assert fees == sorted(fees, reverse=True)

    def test_fees_strictly_decreasing(self):
        workload = generate_workload(WorkloadConfig(mempool_size=20, seed=3))
        fees = [tx.total_fee for tx in workload.transactions]
        assert all(a > b for a, b in zip(fees, fees[1:]))

    def test_labels_and_nonces_unique(self):
        workload = generate_workload(WorkloadConfig(mempool_size=20, seed=3))
        assert len({tx.label for tx in workload.transactions}) == 20
        assert len({tx.nonce for tx in workload.transactions}) == 20


class TestDeterminism:
    def test_same_seed_same_workload(self):
        a = generate_workload(WorkloadConfig(mempool_size=15, seed=9))
        b = generate_workload(WorkloadConfig(mempool_size=15, seed=9))
        assert [tx.tx_hash for tx in a.transactions] == [
            tx.tx_hash for tx in b.transactions
        ]

    def test_different_seeds_differ(self):
        a = generate_workload(WorkloadConfig(mempool_size=15, seed=9))
        b = generate_workload(WorkloadConfig(mempool_size=15, seed=10))
        assert [tx.tx_hash for tx in a.transactions] != [
            tx.tx_hash for tx in b.transactions
        ]

    def test_auto_supply_scales_with_mempool(self):
        workload = generate_workload(WorkloadConfig(mempool_size=60, seed=0))
        assert workload.pre_state.nft_config.max_supply >= 60
