"""Tests for the named scenario fixtures."""

import pytest

from repro.rollup import ExecutionMode, OVM, TxKind
from repro.workloads import (
    CASE2_ORDER,
    CASE3_ORDER,
    burn_heavy_scenario,
    mint_frenzy_scenario,
)
from repro.workloads.scenarios import IFU


class TestCaseStudyFixture:
    def test_pt_parameters(self, case_workload):
        config = case_workload.pre_state.nft_config
        assert config.max_supply == 10
        assert config.initial_price_eth == 0.2
        assert config.symbol == "PT"

    def test_initial_price_is_04(self, case_workload):
        assert case_workload.pre_state.unit_price == pytest.approx(0.4)

    def test_ifu_initial_balance(self, case_workload):
        assert case_workload.pre_state.balance(IFU) == 1.5
        assert case_workload.pre_state.holdings(IFU) == 2
        assert case_workload.pre_state.wealth(IFU) == pytest.approx(2.3)

    def test_five_tokens_preminted(self, case_workload):
        assert case_workload.pre_state.minted_count == 5
        assert case_workload.pre_state.remaining_supply == 5

    def test_eight_transactions_matching_figure5(self, case_workload):
        kinds = [tx.kind for tx in case_workload.transactions]
        assert kinds == [
            TxKind.TRANSFER, TxKind.MINT, TxKind.TRANSFER, TxKind.TRANSFER,
            TxKind.MINT, TxKind.TRANSFER, TxKind.BURN, TxKind.TRANSFER,
        ]

    def test_tx_labels(self, case_workload):
        assert [tx.label for tx in case_workload.transactions] == [
            f"TX{i}" for i in range(1, 9)
        ]

    def test_alt_orders_are_permutations(self):
        assert sorted(CASE2_ORDER) == list(range(8))
        assert sorted(CASE3_ORDER) == list(range(8))

    def test_fee_order_matches_original(self, case_workload):
        fees = [tx.total_fee for tx in case_workload.transactions]
        assert fees == sorted(fees, reverse=True)


class TestOtherScenarios:
    def test_mint_frenzy_is_mint_heavy(self):
        workload = mint_frenzy_scenario()
        mints = sum(1 for tx in workload.transactions if tx.kind is TxKind.MINT)
        burns = sum(1 for tx in workload.transactions if tx.kind is TxKind.BURN)
        assert mints > burns

    def test_burn_heavy_has_burns(self):
        workload = burn_heavy_scenario()
        burns = sum(1 for tx in workload.transactions if tx.kind is TxKind.BURN)
        assert burns >= 2

    def test_scenarios_strictly_valid(self):
        strict = OVM(mode=ExecutionMode.STRICT)
        for workload in (mint_frenzy_scenario(), burn_heavy_scenario()):
            trace = strict.replay(workload.pre_state, workload.transactions)
            assert trace.all_executed
