"""Tests for market-calibrated replay workloads."""

import pytest

from repro.config import SnapshotStudyConfig
from repro.errors import MarketError
from repro.market import Chain, FrequencyTier, generate_collection
from repro.rollup import ExecutionMode, OVM
from repro.workloads import implied_remaining_supply, workload_from_collection


@pytest.fixture
def collection(rng):
    return generate_collection(
        Chain.ARBITRUM, FrequencyTier.LFT, rng, SnapshotStudyConfig()
    )


class TestImpliedSupply:
    def test_initial_price_implies_full_supply(self, collection):
        implied = implied_remaining_supply(
            collection, collection.initial_price_eth
        )
        assert implied == collection.max_supply - 1  # clipped below max

    def test_higher_price_implies_lower_supply(self, collection):
        low = implied_remaining_supply(collection, collection.initial_price_eth * 4)
        high = implied_remaining_supply(collection, collection.initial_price_eth)
        assert low < high

    def test_bounds_clipped(self, collection):
        assert implied_remaining_supply(collection, 10_000.0) >= 1
        assert (
            implied_remaining_supply(collection, 1e-9)
            <= collection.max_supply - 1
        )

    def test_nonpositive_price_rejected(self, collection):
        with pytest.raises(MarketError):
            implied_remaining_supply(collection, 0.0)


class TestReplayWorkload:
    def test_strictly_valid(self, collection):
        workload = workload_from_collection(collection, window=(0, 12), seed=1)
        trace = OVM(mode=ExecutionMode.STRICT).replay(
            workload.pre_state, workload.transactions
        )
        assert trace.all_executed

    def test_ifu_involved(self, collection):
        workload = workload_from_collection(collection, window=(0, 12), seed=1)
        assert workload.ifu_involvement()["ifu-0"] >= 2

    def test_event_cap_bounds_size(self, collection):
        workload = workload_from_collection(
            collection, window=(0, 12), max_events_per_step=2, seed=1
        )
        # 11 steps x (2 supply events + 1 transfer) upper bound.
        assert workload.mempool_size <= 11 * 3

    def test_fee_order_matches_sequence(self, collection):
        workload = workload_from_collection(collection, window=(0, 12), seed=1)
        fees = [tx.total_fee for tx in workload.transactions]
        assert fees == sorted(fees, reverse=True)

    def test_deterministic_by_seed(self, collection):
        a = workload_from_collection(collection, window=(0, 10), seed=5)
        b = workload_from_collection(collection, window=(0, 10), seed=5)
        assert [t.tx_hash for t in a.transactions] == [
            t.tx_hash for t in b.transactions
        ]

    def test_too_small_window_rejected(self, collection):
        with pytest.raises(MarketError):
            workload_from_collection(collection, window=(0, 1))

    def test_attackable(self, collection):
        from repro.core import assess_opportunity
        workload = workload_from_collection(collection, window=(0, 12), seed=1)
        assessment = assess_opportunity(workload.transactions, workload.ifus)
        assert assessment.has_opportunity
