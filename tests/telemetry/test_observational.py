"""Telemetry must be purely observational.

Property: running the replay/solver stack with metrics + tracing fully
enabled produces bit-for-bit the same results as running it against the
no-op backends.  Instrumentation that perturbs rewards, orders or
objectives would silently invalidate every figure recorded with
telemetry on.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import WorkloadConfig
from repro.core.environment import ReorderEnv
from repro.solvers.base import ReorderProblem
from repro.solvers.hill_climb import HillClimbSolver
from repro.telemetry import (
    RingBufferSink,
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
)
from repro.workloads import generate_workload

N_TXS = 6


def _workload():
    return generate_workload(
        WorkloadConfig(
            mempool_size=N_TXS, num_users=5, num_ifus=1,
            min_ifu_involvement=2, seed=7,
        )
    )


def _fresh_env(workload) -> ReorderEnv:
    return ReorderEnv(
        pre_state=workload.pre_state,
        transactions=workload.transactions,
        ifus=workload.ifus,
    )


def _evaluate_all(env: ReorderEnv, orders):
    results = []
    for order in orders:
        evaluation = env.evaluate_order(order)
        evaluation.pop("summary")  # engine-internal object, not a result
        results.append(evaluation)
    return results


@st.composite
def permutations(draw):
    return tuple(draw(st.permutations(range(N_TXS))))


@settings(max_examples=25, deadline=None)
@given(orders=st.lists(permutations(), min_size=1, max_size=6))
def test_evaluations_identical_with_and_without_telemetry(orders):
    workload = _workload()

    disable_metrics()
    disable_tracing()
    baseline = _evaluate_all(_fresh_env(workload), orders)

    enable_metrics()
    enable_tracing(RingBufferSink())
    try:
        instrumented = _evaluate_all(_fresh_env(workload), orders)
    finally:
        disable_metrics()
        disable_tracing()

    assert baseline == instrumented  # exact — including float equality


@settings(max_examples=10, deadline=None)
@given(actions=st.lists(st.integers(min_value=0), min_size=1, max_size=10))
def test_episode_identical_with_and_without_telemetry(actions):
    workload = _workload()

    def run_episode():
        env = _fresh_env(workload)
        observation = env.reset()
        trajectory = [observation.tobytes()]
        for raw in actions:
            action = raw % env.action_count
            observation, reward, done, info = env.step(action)
            info.pop("summary", None)
            trajectory.append(
                (observation.tobytes(), reward, done, sorted(info.items()))
            )
        return trajectory

    disable_metrics()
    disable_tracing()
    baseline = run_episode()

    enable_metrics()
    enable_tracing(RingBufferSink())
    try:
        instrumented = run_episode()
    finally:
        disable_metrics()
        disable_tracing()

    assert baseline == instrumented


def test_solver_result_identical_with_and_without_telemetry():
    workload = _workload()

    def solve():
        problem = ReorderProblem(
            pre_state=workload.pre_state,
            transactions=workload.transactions,
            ifus=workload.ifus,
        )
        result = HillClimbSolver().solve(problem)
        return (
            result.best_order,
            result.best_objective,
            result.original_objective,
            result.evaluations,
        )

    disable_metrics()
    disable_tracing()
    baseline = solve()

    enable_metrics()
    enable_tracing(RingBufferSink())
    try:
        instrumented = solve()
    finally:
        disable_metrics()
        disable_tracing()

    assert baseline == instrumented
