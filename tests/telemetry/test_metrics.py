"""Unit tests for the metrics registry: instruments, buckets, snapshots."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    disable_metrics,
    enable_metrics,
    get_metrics,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("mempool.submitted")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_thread_safety_under_contention(self):
        counter = MetricsRegistry().counter("contended")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000.0


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("mempool.pending")
        gauge.set(10)
        assert gauge.value == 10.0
        gauge.add(-3)
        assert gauge.value == 7.0


class TestHistogramBuckets:
    def test_rejects_empty_and_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))

    def test_bucket_placement_on_boundaries(self):
        # bisect_left: a value exactly on a bound lands in that bound's
        # bucket (bounds are inclusive upper edges).
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 99.0):
            h.observe(value)
        # buckets: <=1.0, <=2.0, <=4.0, overflow
        assert h.bucket_counts() == (2, 2, 2, 1)
        assert h.count == 7

    def test_sum_mean_min_max(self):
        h = Histogram(bounds=(10.0,))
        for value in (1.0, 2.0, 3.0):
            h.observe(value)
        assert h.sum == 6.0
        assert h.mean == 2.0
        assert h.min == 1.0
        assert h.max == 3.0

    def test_empty_histogram_stats_are_nan(self):
        # No observations means no meaningful central value or extremum:
        # the documented contract is NaN, never a fake 0.0.
        h = Histogram(bounds=(1.0,))
        assert h.count == 0
        assert math.isnan(h.mean)
        assert math.isnan(h.min)
        assert math.isnan(h.max)
        for q in (0.0, 50.0, 99.0, 100.0):
            assert math.isnan(h.percentile(q))

    def test_empty_histogram_summary_is_json_safe(self):
        # summary() feeds strict-JSON manifests, so the NaN statistics
        # are omitted for an empty histogram rather than serialized.
        h = Histogram(bounds=(1.0,))
        summary = h.summary()
        assert summary == {"count": 0.0, "sum": 0.0}
        json.dumps(summary, allow_nan=False)

    def test_summary_regains_stats_after_first_observation(self):
        h = Histogram(bounds=(1.0,))
        h.observe(0.5)
        summary = h.summary()
        assert summary["count"] == 1.0
        assert summary["mean"] == 0.5
        json.dumps(summary, allow_nan=False)


class TestHistogramPercentiles:
    def test_single_observation_is_exact(self):
        h = Histogram(bounds=DEFAULT_BUCKETS)
        h.observe(0.37)
        # Clamping by observed min/max makes one-sample estimates exact.
        assert h.percentile(50.0) == pytest.approx(0.37)
        assert h.percentile(99.0) == pytest.approx(0.37)

    def test_percentiles_are_monotone_and_bounded(self):
        h = Histogram(bounds=(1.0, 2.0, 5.0, 10.0))
        for value in (0.5, 1.5, 1.7, 3.0, 4.0, 6.0, 7.0, 9.5):
            h.observe(value)
        estimates = [h.percentile(q) for q in (0, 10, 25, 50, 75, 90, 100)]
        assert estimates == sorted(estimates)
        assert all(0.5 <= e <= 9.5 for e in estimates)

    def test_overflow_bucket_reports_observed_max(self):
        h = Histogram(bounds=(1.0,))
        h.observe(500.0)
        h.observe(700.0)
        assert h.percentile(99.0) == 700.0
        assert h.max == 700.0

    def test_interpolation_within_bucket(self):
        # 100 uniform observations in (0, 10]: p50 should land near 5.
        h = Histogram(bounds=(10.0, 20.0))
        for i in range(1, 101):
            h.observe(i / 10.0)
        assert h.percentile(50.0) == pytest.approx(5.0, abs=1.0)

    def test_rejects_out_of_range_quantile(self):
        h = Histogram(bounds=(1.0,))
        with pytest.raises(ValueError):
            h.percentile(101.0)
        with pytest.raises(ValueError):
            h.percentile(-0.1)

    def test_summary_keys(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(1.5)
        summary = h.summary()
        assert set(summary) == {
            "count", "sum", "mean", "min", "max", "p50", "p95", "p99",
        }
        assert summary["count"] == 1.0


class TestLabels:
    def test_labels_qualify_series(self):
        registry = MetricsRegistry()
        challenged = registry.counter("verifier.outcomes", outcome="challenged")
        accepted = registry.counter("verifier.outcomes", outcome="accepted")
        assert challenged is not accepted
        challenged.inc(2)
        accepted.inc()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["verifier.outcomes{outcome=challenged}"] == 2.0
        assert snapshot["counters"]["verifier.outcomes{outcome=accepted}"] == 1.0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("m", x=1, y=2)
        b = registry.counter("m", y=2, x=1)
        assert a is b


class TestSnapshot:
    def test_snapshot_covers_every_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 3.0}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1.0

    def test_series_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        registry.histogram("c")
        assert registry.series_names() == ["a", "b", "c"]

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestNullMetrics:
    def test_null_instruments_are_shared_and_inert(self):
        null = NullMetrics()
        assert null.counter("a") is null.counter("b")
        assert null.gauge("a") is null.gauge("b")
        assert null.histogram("a") is null.histogram("b")
        null.counter("a").inc(100)
        null.gauge("a").set(5)
        null.histogram("a").observe(1.0)
        assert null.counter("a").value == 0.0
        assert null.histogram("a").count == 0
        assert null.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert not null.enabled

    def test_enable_disable_swaps_active_backend(self):
        assert not get_metrics().enabled
        live = enable_metrics()
        assert get_metrics() is live
        assert get_metrics().enabled
        disable_metrics()
        assert not get_metrics().enabled
