"""The trace summarizer must survive truncated and malformed JSONL.

Trace files are written incrementally by live processes (and sometimes
hand-edited), so the reading side treats every record as hostile:
partial final lines, undecodable bytes and garbage-typed fields are
skipped with a warning count — never raised.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.telemetry import read_trace, summarize_trace, tail_trace


def _write_lines(path, records):
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")


def _span(name, duration=0.01, end=1.0, **extra):
    record = {
        "type": "span",
        "name": name,
        "span_id": 1,
        "parent_id": None,
        "start": end - duration,
        "end": end,
        "duration_s": duration,
    }
    record.update(extra)
    return record


class TestReadTrace:
    def test_missing_file_is_fatal(self, tmp_path):
        with pytest.raises(ReproError):
            read_trace(tmp_path / "nope.jsonl")

    def test_truncated_final_line_is_counted_not_raised(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        good = _span("replay.batch_kernel")
        trace.write_text(
            json.dumps(good) + "\n" + '{"type": "span", "name": "cut-of'
        )
        events, bad = read_trace(trace)
        assert [e["name"] for e in events] == ["replay.batch_kernel"]
        assert bad == 1

    def test_undecodable_bytes_are_skipped(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_bytes(
            json.dumps(_span("ok")).encode() + b"\n\xff\xfe\x00garbage\n"
        )
        events, bad = read_trace(trace)
        assert len(events) == 1
        assert bad == 1

    def test_non_object_records_are_counted_as_bad(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text('[1, 2, 3]\n"just a string"\n42\n')
        events, bad = read_trace(trace)
        assert events == []
        assert bad == 3


class TestSummarizeMalformed:
    def test_garbage_typed_fields_never_raise(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        _write_lines(
            trace,
            [
                _span("fine"),
                _span("bad.duration", duration=0.01) | {"duration_s": "fast"},
                _span("bad.end") | {"end": None},
                _span("bad.both") | {"duration_s": [1, 2], "end": "later"},
                _span("bad.nan") | {"duration_s": float("nan")},
                {"type": "event", "name": "tick", "t": "not-a-time"},
            ],
        )
        digest = summarize_trace(trace)
        assert "fine" in digest
        assert "bad.duration" in digest  # degraded to 0, still listed

    def test_malformed_metrics_snapshot_never_raises(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        _write_lines(
            trace,
            [
                _span("work"),
                {"type": "metrics", "name": "metrics", "metrics": "oops"},
                {
                    "type": "metrics",
                    "name": "metrics",
                    "metrics": {"counters": {"x.calls": "many", "y": 2.0}},
                },
            ],
        )
        digest = summarize_trace(trace)
        assert "y = 2" in digest
        assert "x.calls = 0" in digest  # non-numeric degraded, not fatal

    def test_unparseable_line_count_is_reported(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(json.dumps(_span("a")) + "\n{broken\n")
        assert "1 unparseable" in summarize_trace(trace)

    def test_empty_file_summarizes(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text("")
        assert "0 spans" in summarize_trace(trace)


class TestTailMalformed:
    def test_tail_survives_garbage_fields(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        _write_lines(
            trace,
            [
                _span("ok"),
                _span("bad") | {"duration_s": {"nested": True}},
                {"type": "event", "name": "tick", "t": None},
            ],
        )
        out = tail_trace(trace, count=10)
        assert out.count("\n") == 2  # all three lines rendered
