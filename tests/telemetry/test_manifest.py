"""Run-manifest tests: config hashing, recorder, round-tripping."""

from __future__ import annotations

import json
import tracemalloc

from repro.telemetry import (
    MANIFEST_SCHEMA,
    ManifestRecorder,
    RunManifest,
    config_hash,
    enable_metrics,
    git_revision,
)


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_handles_dataclasses_and_tuples(self):
        from repro.config import TelemetryConfig

        digest = config_hash(
            {"cfg": TelemetryConfig(enabled=True), "sizes": (1, 2, 3)}
        )
        assert len(digest) == 16
        assert digest == config_hash(
            {"sizes": [1, 2, 3], "cfg": TelemetryConfig(enabled=True)}
        )


class TestGitRevision:
    def test_reads_this_checkout(self):
        rev = git_revision()
        assert rev is not None
        assert len(rev) == 40
        int(rev, 16)  # hex

    def test_none_outside_a_checkout(self, tmp_path):
        assert git_revision(tmp_path) is None


class TestRunManifest:
    def test_write_read_roundtrip(self, tmp_path):
        manifest = RunManifest(
            experiment_id="fig8",
            preset="quick",
            seed=7,
            config={"mempool": 12},
            config_digest=config_hash({"mempool": 12}),
            duration_seconds=1.5,
        )
        path = manifest.write(tmp_path / "fig8.manifest.json")
        loaded = RunManifest.read(path)
        assert loaded.experiment_id == "fig8"
        assert loaded.seed == 7
        assert loaded.config == {"mempool": 12}
        assert loaded.schema == MANIFEST_SCHEMA

    def test_read_ignores_unknown_fields(self, tmp_path):
        path = tmp_path / "m.json"
        payload = RunManifest(experiment_id="x").to_json()
        payload["future_field"] = True
        path.write_text(json.dumps(payload))
        assert RunManifest.read(path).experiment_id == "x"


class TestManifestRecorder:
    def test_records_run_and_writes_file(self, tmp_path):
        enable_metrics().counter("work.done").inc(5)
        with ManifestRecorder(
            experiment_id="demo",
            preset="quick",
            seed=3,
            config={"n": 10},
            out_dir=tmp_path,
        ) as recorder:
            recorder.add_artifact("text", tmp_path / "demo.txt")
            payload = [0] * 50_000  # measurable allocation
        del payload
        manifest = recorder.manifest
        assert manifest is not None
        assert manifest.seed == 3
        assert manifest.config_digest == config_hash({"n": 10})
        assert manifest.duration_seconds >= 0.0
        assert manifest.peak_memory_bytes > 0
        assert manifest.metrics["counters"]["work.done"] == 5.0
        assert manifest.artifacts["text"].endswith("demo.txt")
        assert recorder.path == tmp_path / "demo.manifest.json"
        assert recorder.path.exists()
        assert not tracemalloc.is_tracing()

    def test_nested_recorder_does_not_stop_outer_trace(self, tmp_path):
        tracemalloc.start()
        try:
            with ManifestRecorder(experiment_id="inner") as recorder:
                pass
            assert tracemalloc.is_tracing()  # outer trace survived
            assert recorder.manifest is not None
        finally:
            tracemalloc.stop()

    def test_exception_is_archived_and_reraised(self, tmp_path):
        recorder = ManifestRecorder(experiment_id="err", out_dir=tmp_path)
        try:
            with recorder:
                raise ValueError("bad run")
        except ValueError:
            pass
        assert recorder.manifest.extra["error"] == "ValueError: bad run"
        assert (tmp_path / "err.manifest.json").exists()

    def test_no_out_dir_writes_nothing(self):
        with ManifestRecorder(experiment_id="mem") as recorder:
            pass
        assert recorder.path is None
        assert recorder.manifest is not None
