"""Span tracing tests: nesting, JSONL ordering, sinks, no-op mode."""

from __future__ import annotations

import json

from repro.telemetry import (
    FileSink,
    RingBufferSink,
    Tracer,
    enable_metrics,
    enable_tracing,
    event,
    get_tracer,
    span,
)


def _span_events(sink: RingBufferSink):
    return [e for e in sink.events() if e["type"] == "span"]


class TestSpanNesting:
    def test_child_records_parent_id(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        events = _span_events(sink)
        by_name = {e["name"]: e for e in events}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None

    def test_child_precedes_parent_in_stream(self):
        # Spans emit at close, so a consumer tailing the JSONL sees
        # finished children before their parent.
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        names = [e["name"] for e in _span_events(sink)]
        assert names == ["c", "b", "a"]

    def test_sibling_spans_share_parent(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("parent") as parent:
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        events = {e["name"]: e for e in _span_events(sink)}
        assert events["first"]["parent_id"] == parent.span_id
        assert events["second"]["parent_id"] == parent.span_id

    def test_span_ids_are_deterministic_sequence(self):
        tracer = Tracer(RingBufferSink())
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert (a.span_id, b.span_id) == (1, 2)

    def test_monotonic_timing(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("timed"):
            pass
        [record] = _span_events(sink)
        assert 0.0 <= record["start"] <= record["end"]
        assert record["duration_s"] >= 0.0

    def test_exception_is_recorded_and_propagates(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        try:
            with tracer.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        [record] = _span_events(sink)
        assert record["error"] == "RuntimeError"

    def test_attrs_and_mid_span_add(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("work", n=3) as current:
            current.add(result="ok")
        [record] = _span_events(sink)
        assert record["attrs"] == {"n": 3, "result": "ok"}


class TestEvents:
    def test_point_event_carries_parent(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            tracer.event("tick", k=1)
        [evt] = [e for e in sink.events() if e["type"] == "event"]
        assert evt["parent_id"] == outer.span_id
        assert evt["attrs"] == {"k": 1}

    def test_emit_metrics_attaches_snapshot(self):
        enable_metrics().counter("c").inc(4)
        sink = RingBufferSink()
        tracer = Tracer(sink)
        tracer.emit_metrics("final")
        [evt] = [e for e in sink.events() if e["type"] == "metrics"]
        assert evt["metrics"]["counters"]["c"] == 4.0


class TestSinks:
    def test_ring_buffer_capacity(self):
        sink = RingBufferSink(capacity=3)
        tracer = Tracer(sink)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        names = [e["name"] for e in sink.events()]
        assert names == ["s7", "s8", "s9"]

    def test_file_sink_writes_valid_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = FileSink(path)
        tracer = Tracer(sink)
        with tracer.span("outer", n=1):
            with tracer.span("inner"):
                pass
        tracer.event("done")
        tracer.close()
        lines = path.read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert [e["name"] for e in events] == ["inner", "outer", "done"]
        assert all("type" in e for e in events)

    def test_file_sink_close_is_idempotent(self, tmp_path):
        sink = FileSink(tmp_path / "t.jsonl")
        sink.close()  # never opened
        sink.emit({"type": "event", "name": "x"})
        sink.close()
        sink.close()


class TestModuleLevelHelpers:
    def test_disabled_tracer_emits_nothing_and_shares_null_span(self):
        assert not get_tracer().enabled
        first = span("anything", n=1)
        second = span("else")
        assert first is second  # shared inert singleton
        with first as current:
            current.add(more=True)
        event("ignored")

    def test_enable_tracing_routes_module_helpers(self):
        sink = RingBufferSink()
        enable_tracing(sink)
        with span("via.module", k=2):
            event("inside")
        names = [e["name"] for e in sink.events()]
        assert names == ["inside", "via.module"]
