"""Telemetry test fixtures: keep the process-wide backends clean."""

from __future__ import annotations

import pytest

from repro.telemetry import disable_metrics, disable_tracing


@pytest.fixture(autouse=True)
def _reset_telemetry():
    """Every test starts and ends with the no-op backends installed."""
    disable_metrics()
    disable_tracing()
    yield
    disable_metrics()
    disable_tracing()
