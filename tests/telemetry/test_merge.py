"""Cross-process metric merging and span absorption."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    Histogram,
    MetricsRegistry,
    NullMetrics,
    RingBufferSink,
    Tracer,
)


class TestHistogramState:
    def test_state_roundtrip_is_lossless(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 9.0):
            hist.observe(value)
        twin = Histogram(bounds=(1.0, 2.0, 4.0))
        twin.merge_state(hist.state())
        assert twin.bucket_counts() == hist.bucket_counts()
        assert twin.count == hist.count
        assert twin.sum == hist.sum
        assert twin.min == hist.min
        assert twin.max == hist.max

    def test_merge_equals_union_of_observations(self):
        """merge_state(b) == having observed a's and b's samples."""
        left = Histogram(bounds=(1.0, 10.0))
        right = Histogram(bounds=(1.0, 10.0))
        combined = Histogram(bounds=(1.0, 10.0))
        for value in (0.2, 5.0):
            left.observe(value)
            combined.observe(value)
        for value in (7.0, 42.0):
            right.observe(value)
            combined.observe(value)
        left.merge_state(right.state())
        assert left.bucket_counts() == combined.bucket_counts()
        assert left.count == combined.count
        assert left.sum == combined.sum
        assert left.min == combined.min
        assert left.max == combined.max
        for q in (0.0, 50.0, 95.0, 100.0):
            assert left.percentile(q) == combined.percentile(q)

    def test_merge_into_empty(self):
        source = Histogram(bounds=(1.0,))
        source.observe(0.5)
        empty = Histogram(bounds=(1.0,))
        empty.merge_state(source.state())
        assert empty.count == 1
        assert empty.min == 0.5
        assert empty.max == 0.5

    def test_bounds_mismatch_rejected(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge_state(b.state())


class TestRegistryMerge:
    def test_counters_add(self):
        parent = MetricsRegistry()
        parent.counter("x.calls").inc(3)
        worker = MetricsRegistry()
        worker.counter("x.calls").inc(4)
        worker.counter("x.other").inc()
        parent.merge(worker.dump_state())
        assert parent.counter("x.calls").value == 7.0
        assert parent.counter("x.other").value == 1.0

    def test_gauges_last_merge_wins(self):
        parent = MetricsRegistry()
        parent.gauge("x.level").set(1.0)
        worker = MetricsRegistry()
        worker.gauge("x.level").set(9.0)
        parent.merge(worker.dump_state())
        assert parent.gauge("x.level").value == 9.0

    def test_histograms_combine(self):
        parent = MetricsRegistry()
        parent.histogram("x.latency").observe(0.5)
        worker = MetricsRegistry()
        worker.histogram("x.latency").observe(2.0)
        parent.merge(worker.dump_state())
        assert parent.histogram("x.latency").count == 2
        assert parent.histogram("x.latency").sum == 2.5

    def test_histogram_created_with_incoming_bounds(self):
        worker = MetricsRegistry()
        worker.histogram("x.custom", bounds=(1.0, 2.0)).observe(1.5)
        parent = MetricsRegistry()
        parent.merge(worker.dump_state())
        assert parent.histogram("x.custom").bounds == (1.0, 2.0)
        assert parent.histogram("x.custom").count == 1

    def test_labelled_series_merge_by_key(self):
        parent = MetricsRegistry()
        parent.counter("x.outcomes", kind="ok").inc()
        worker = MetricsRegistry()
        worker.counter("x.outcomes", kind="ok").inc()
        worker.counter("x.outcomes", kind="bad").inc()
        parent.merge(worker.dump_state())
        assert parent.counter("x.outcomes", kind="ok").value == 2.0
        assert parent.counter("x.outcomes", kind="bad").value == 1.0

    def test_merge_is_associative_across_workers(self):
        """Folding two worker states sequentially == one big recording."""
        parent = MetricsRegistry()
        reference = MetricsRegistry()
        for worker_values in ((1.0, 2.0), (3.0,)):
            worker = MetricsRegistry()
            for value in worker_values:
                worker.counter("w.calls").inc()
                worker.histogram("w.value").observe(value)
                reference.counter("w.calls").inc()
                reference.histogram("w.value").observe(value)
            parent.merge(worker.dump_state())
        assert parent.dump_state() == reference.dump_state()

    def test_null_metrics_merge_is_noop(self):
        backend = NullMetrics()
        backend.merge({"counters": {"x": 1.0}})
        assert backend.dump_state() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestTracerAbsorb:
    def _worker_records(self):
        """Simulate a worker tracing into its own ring buffer."""
        ring = RingBufferSink(capacity=16)
        tracer = Tracer(ring)
        with tracer.span("worker.outer", task=1):
            with tracer.span("worker.inner"):
                pass
        return ring.events()

    def test_absorb_remaps_span_ids(self):
        records = self._worker_records()
        ring = RingBufferSink(capacity=16)
        parent = Tracer(ring)
        # Burn some ids so worker and parent sequences collide.
        with parent.span("parent.before"):
            pass
        count = parent.absorb(records, worker=1234)
        assert count == len(records) == 2
        absorbed = ring.events()[1:]
        ids = {r["span_id"] for r in ring.events()}
        assert len(ids) == 3  # no collision with the parent's own span
        # Child/parent chain inside the batch is preserved.
        inner = next(r for r in absorbed if r["name"] == "worker.inner")
        outer = next(r for r in absorbed if r["name"] == "worker.outer")
        assert inner["parent_id"] == outer["span_id"]

    def test_orphans_reparented_under_current_span(self):
        records = self._worker_records()
        ring = RingBufferSink(capacity=16)
        parent = Tracer(ring)
        with parent.span("parent.experiment") as anchor:
            parent.absorb(records)
        outer = next(
            r for r in ring.events() if r["name"] == "worker.outer"
        )
        assert outer["parent_id"] == anchor.span_id

    def test_absorb_stamps_extra_attrs(self):
        records = self._worker_records()
        ring = RingBufferSink(capacity=16)
        parent = Tracer(ring)
        parent.absorb(records, worker=4321)
        assert all(r["attrs"]["worker"] == 4321 for r in ring.events())
        # Original attrs survive the merge.
        outer = next(
            r for r in ring.events() if r["name"] == "worker.outer"
        )
        assert outer["attrs"]["task"] == 1

    def test_absorb_does_not_mutate_input_records(self):
        records = self._worker_records()
        before = [dict(r) for r in records]
        parent = Tracer(RingBufferSink(capacity=16))
        parent.absorb(records, worker=1)
        assert records == before

    def test_disabled_tracer_absorbs_nothing(self):
        records = self._worker_records()
        assert Tracer().absorb(records) == 0


class TestAbsorbDeterminism:
    """Same chunk set, same absorb order => byte-identical span streams.

    The fabric collects worker chunks in *submission* order regardless
    of which worker finishes first, so the merged trace — span ids,
    parent links, everything — must depend only on the chunk set, never
    on completion timing.
    """

    def _chunk_records(self, chunk: int):
        """One worker chunk's ring-buffer contents (self-contained tree)."""
        ring = RingBufferSink(capacity=16)
        tracer = Tracer(ring)
        with tracer.span(f"chunk{chunk}.outer", chunk=chunk):
            with tracer.span(f"chunk{chunk}.inner"):
                pass
            tracer.event(f"chunk{chunk}.tick")
        return ring.events()

    def _merge(self, chunks):
        """Absorb chunks the way the fabric does: submission order."""
        ring = RingBufferSink(capacity=64)
        parent = Tracer(ring)
        with parent.span("fabric.dispatch"):
            for index, records in enumerate(chunks):
                parent.absorb(records, worker=1000 + index)
        return ring.events()

    @staticmethod
    def _structure(records):
        """Records minus wall-clock fields (the deterministic part)."""
        timing = ("start", "end", "duration_s", "t")
        return [
            {k: v for k, v in r.items() if k not in timing} for r in records
        ]

    def test_two_merges_of_same_chunks_are_identical(self):
        chunks = [self._chunk_records(c) for c in range(3)]
        first = self._structure(self._merge(chunks))
        second = self._structure(self._merge(chunks))
        assert first == second

    def test_completion_order_does_not_leak_into_the_stream(self):
        # Workers finish 2, 0, 1 — the fabric still buffers futures and
        # absorbs in submission order, so the merged stream matches a
        # run where they finished in order.
        chunks = [self._chunk_records(c) for c in range(3)]
        completion_order = [2, 0, 1]
        buffered = {c: chunks[c] for c in completion_order}  # "as completed"
        merged = self._merge([buffered[c] for c in range(3)])
        assert self._structure(merged) == self._structure(self._merge(chunks))

    def test_parent_links_are_deterministic(self):
        chunks = [self._chunk_records(c) for c in range(2)]
        first = self._merge(chunks)
        second = self._merge(chunks)
        for a, b in zip(first, second):
            assert a.get("span_id") == b.get("span_id")
            assert a.get("parent_id") == b.get("parent_id")
        # Every absorbed chunk root hangs off the dispatch span.
        dispatch = next(r for r in first if r["name"] == "fabric.dispatch")
        for chunk in range(2):
            outer = next(
                r for r in first if r["name"] == f"chunk{chunk}.outer"
            )
            assert outer["parent_id"] == dispatch["span_id"]
