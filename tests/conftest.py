"""Shared fixtures for the PAROLE reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GenTranSeqConfig, NFTContractConfig, WorkloadConfig
from repro.rollup.state import ExecutionMode, L2State
from repro.workloads import case_study_fixture, generate_workload


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for test reproducibility."""
    return np.random.default_rng(12345)


@pytest.fixture
def case_workload():
    """The exact Section VI case-study fixture."""
    return case_study_fixture()


@pytest.fixture
def small_workload():
    """A small generated workload (10 txs, 1 IFU)."""
    return generate_workload(
        WorkloadConfig(
            mempool_size=10, num_users=8, num_ifus=1,
            min_ifu_involvement=3, seed=42,
        )
    )


@pytest.fixture
def tiny_config() -> GenTranSeqConfig:
    """Minimal DQN budget for fast training tests."""
    return GenTranSeqConfig(episodes=3, steps_per_episode=15, seed=0)


@pytest.fixture
def pt_config() -> NFTContractConfig:
    """The PAROLE Token contract parameters (Section VI-A)."""
    return NFTContractConfig(
        symbol="PT", name="ParoleToken", max_supply=10, initial_price_eth=0.2
    )


@pytest.fixture
def basic_state(pt_config) -> L2State:
    """A small L2 state: two funded users, two pre-minted tokens."""
    return L2State(
        nft_config=pt_config,
        balances={"alice": 2.0, "bob": 2.0},
        inventory={"alice": 1, "bob": 1},
        mode=ExecutionMode.BATCH,
    )
