"""Tests for JSON serialization round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import AttackConfig, GenTranSeqConfig, WorkloadConfig
from repro.rollup import NFTTransaction, TxKind
from repro.rollup.fraud_proof import state_root
from repro.serialization import (
    SerializationError,
    load_workload,
    outcome_to_dict,
    save_workload,
    state_from_dict,
    state_to_dict,
    transaction_from_dict,
    transaction_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.workloads import generate_workload


class TestTransactionRoundTrip:
    def test_all_kinds(self):
        txs = [
            NFTTransaction(kind=TxKind.MINT, sender="a", nonce=1),
            NFTTransaction(kind=TxKind.TRANSFER, sender="a", recipient="b",
                           priority_fee=0.5, nonce=2),
            NFTTransaction(kind=TxKind.BURN, sender="a", token_id=3, nonce=3),
        ]
        for tx in txs:
            restored = transaction_from_dict(transaction_to_dict(tx))
            assert restored == tx
            assert restored.tx_hash == tx.tx_hash

    def test_bad_kind_rejected(self):
        with pytest.raises(SerializationError):
            transaction_from_dict({"kind": "swap", "sender": "a"})

    def test_missing_field_rejected(self):
        with pytest.raises(SerializationError):
            transaction_from_dict({"kind": "mint"})

    names = st.text(
        alphabet=st.characters(min_codepoint=97, max_codepoint=122),
        min_size=1, max_size=6,
    )

    @settings(max_examples=30, deadline=None)
    @given(
        kind=st.sampled_from([TxKind.MINT, TxKind.BURN]),
        sender=names,
        base_fee=st.floats(min_value=0, max_value=10, allow_nan=False),
        nonce=st.integers(min_value=0, max_value=1000),
    )
    def test_property_roundtrip(self, kind, sender, base_fee, nonce):
        tx = NFTTransaction(
            kind=kind, sender=sender, base_fee=base_fee, nonce=nonce
        )
        assert transaction_from_dict(transaction_to_dict(tx)) == tx


class TestStateRoundTrip:
    def test_state_root_preserved(self, basic_state):
        restored = state_from_dict(state_to_dict(basic_state))
        assert state_root(restored) == state_root(basic_state)
        assert restored.mode == basic_state.mode
        assert restored.unit_price == basic_state.unit_price

    def test_bad_payload_rejected(self):
        with pytest.raises(SerializationError):
            state_from_dict({"balances": {}})


class TestWorkloadRoundTrip:
    def test_case_study_roundtrip(self, case_workload):
        restored = workload_from_dict(workload_to_dict(case_workload))
        assert [t.tx_hash for t in restored.transactions] == [
            t.tx_hash for t in case_workload.transactions
        ]
        assert restored.ifus == case_workload.ifus
        assert state_root(restored.pre_state) == state_root(
            case_workload.pre_state
        )

    def test_generated_roundtrip(self):
        workload = generate_workload(
            WorkloadConfig(mempool_size=12, num_users=8, num_ifus=2, seed=7)
        )
        restored = workload_from_dict(workload_to_dict(workload))
        assert restored.mempool_size == 12
        assert restored.ifu_involvement() == workload.ifu_involvement()

    def test_file_roundtrip(self, case_workload, tmp_path):
        path = tmp_path / "workload.json"
        save_workload(case_workload, path)
        restored = load_workload(path)
        assert [t.tx_hash for t in restored.transactions] == [
            t.tx_hash for t in case_workload.transactions
        ]

    def test_wrong_schema_rejected(self, case_workload):
        payload = workload_to_dict(case_workload)
        payload["schema"] = 99
        with pytest.raises(SerializationError):
            workload_from_dict(payload)

    def test_replayability_after_restore(self, case_workload):
        """Restored workloads replay to identical traces."""
        from repro.rollup import OVM
        restored = workload_from_dict(workload_to_dict(case_workload))
        ovm = OVM()
        original = ovm.replay(
            case_workload.pre_state, case_workload.transactions
        )
        replayed = ovm.replay(restored.pre_state, restored.transactions)
        assert original.price_trajectory() == replayed.price_trajectory()


class TestOutcomeEncoding:
    def test_outcome_summary(self, case_workload):
        from repro.core import ParoleAttack
        attack = ParoleAttack(
            config=AttackConfig(
                ifu_accounts=case_workload.ifus,
                gentranseq=GenTranSeqConfig(
                    episodes=3, steps_per_episode=15, seed=0
                ),
            )
        )
        outcome = attack.run(case_workload.pre_state, case_workload.transactions)
        payload = outcome_to_dict(outcome)
        assert payload["attacked"] == outcome.attacked
        assert payload["profit_eth"] == pytest.approx(outcome.profit)
        assert len(payload["executed_order"]) == 8
        assert payload["assessment"]["has_opportunity"]
        import json
        json.dumps(payload)  # fully JSON-serialisable
