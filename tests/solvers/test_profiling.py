"""Tests for solver profiling and the DQN inference solver."""

import pytest

from repro.config import GenTranSeqConfig
from repro.solvers import (
    DQNInferenceSolver,
    HillClimbSolver,
    ReorderProblem,
    profile_solver,
)
from repro.workloads.scenarios import IFU


@pytest.fixture
def problem(case_workload):
    return ReorderProblem(
        pre_state=case_workload.pre_state,
        transactions=case_workload.transactions,
        ifus=(IFU,),
    )


class TestProfiling:
    def test_profiled_run_has_time_and_memory(self, problem):
        run = profile_solver(HillClimbSolver(), problem)
        assert run.elapsed_seconds > 0
        assert run.peak_memory_bytes > 0
        assert run.peak_memory_kib == pytest.approx(
            run.peak_memory_bytes / 1024.0
        )

    def test_extra_memory_added(self, problem):
        base = profile_solver(HillClimbSolver(), problem)
        padded = profile_solver(
            HillClimbSolver(), problem, extra_memory_bytes=10**6
        )
        assert padded.peak_memory_bytes >= base.peak_memory_bytes

    def test_solver_name_passthrough(self, problem):
        run = profile_solver(HillClimbSolver(), problem)
        assert run.solver_name == "hill-climb"


class TestDQNInferenceSolver:
    def test_trains_once_then_infers(self, problem, case_workload):
        solver = DQNInferenceSolver(
            config=GenTranSeqConfig(episodes=5, steps_per_episode=30, seed=3),
            train_episodes=5,
            max_swaps=20,
        )
        result = solver.solve(problem)
        assert sorted(result.best_order) == list(range(8))
        assert result.best_objective >= result.original_objective
        assert result.peak_memory_bytes > 0

    def test_model_memory_grows_with_training(self):
        solver = DQNInferenceSolver(
            config=GenTranSeqConfig(episodes=2, steps_per_episode=10, seed=0),
            train_episodes=0,
        )
        assert solver.model_memory_bytes() == 0
