"""Tests for solver profiling and the DQN inference solver."""

import dataclasses
import tracemalloc

import pytest

from repro.config import GenTranSeqConfig
from repro.solvers import (
    DQNInferenceSolver,
    HillClimbSolver,
    ReorderProblem,
    profile_solver,
)
from repro.solvers.profiling import ProfiledRun
from repro.workloads.scenarios import IFU


@pytest.fixture
def problem(case_workload):
    return ReorderProblem(
        pre_state=case_workload.pre_state,
        transactions=case_workload.transactions,
        ifus=(IFU,),
    )


class TestProfiling:
    def test_profiled_run_has_time_and_memory(self, problem):
        run = profile_solver(HillClimbSolver(), problem)
        assert run.elapsed_seconds > 0
        assert run.peak_memory_bytes > 0
        assert run.peak_memory_kib == pytest.approx(
            run.peak_memory_bytes / 1024.0
        )

    def test_extra_memory_added(self, problem):
        base = profile_solver(HillClimbSolver(), problem)
        padded = profile_solver(
            HillClimbSolver(), problem, extra_memory_bytes=10**6
        )
        assert padded.peak_memory_bytes >= base.peak_memory_bytes

    def test_solver_name_passthrough(self, problem):
        run = profile_solver(HillClimbSolver(), problem)
        assert run.solver_name == "hill-climb"

    def test_replay_stats_reported(self, problem):
        run = profile_solver(HillClimbSolver(), problem)
        # The neighbourhood sweeps ride the batch kernel; the final
        # post-swap refreshes ride the incremental engine/cache.  Either
        # way the run must report replay work.
        assert (
            run.replay_stats["steps_executed"]
            + run.replay_stats["batch_steps"]
        ) > 0
        assert run.replay_stats["batch_calls"] > 0
        assert run.replay_stats["mean_batch_size"] > 1.0
        assert 0.0 <= run.cache_hit_rate <= 1.0
        assert run.mean_resume_depth >= 0.0

    def test_nested_profiling_preserves_outer_tracemalloc(self, problem):
        tracemalloc.start()
        try:
            run = profile_solver(HillClimbSolver(), problem)
            assert tracemalloc.is_tracing()  # outer trace survived
            assert run.peak_memory_bytes > 0
        finally:
            tracemalloc.stop()


class TestProfiledRunImmutability:
    """Regression: replay_stats used to be a plain mutable dict on a
    frozen dataclass — freezing the fields but not the mapping."""

    def test_replay_stats_mapping_is_read_only(self, problem):
        run = profile_solver(HillClimbSolver(), problem)
        with pytest.raises(TypeError):
            run.replay_stats["steps_executed"] = 0.0
        assert not hasattr(run.replay_stats, "clear")

    def test_construction_copies_the_source_dict(self, problem):
        source = {"cache_hit_rate": 0.5}
        run = ProfiledRun(
            result=profile_solver(HillClimbSolver(), problem).result,
            elapsed_seconds=1.0,
            peak_memory_bytes=1,
            replay_stats=source,
        )
        source["cache_hit_rate"] = 0.0  # caller mutates their dict later
        assert run.replay_stats["cache_hit_rate"] == 0.5

    def test_fields_still_frozen(self, problem):
        run = profile_solver(HillClimbSolver(), problem)
        with pytest.raises(dataclasses.FrozenInstanceError):
            run.elapsed_seconds = 0.0


class TestDQNInferenceSolver:
    def test_trains_once_then_infers(self, problem, case_workload):
        solver = DQNInferenceSolver(
            config=GenTranSeqConfig(episodes=5, steps_per_episode=30, seed=3),
            train_episodes=5,
            max_swaps=20,
        )
        result = solver.solve(problem)
        assert sorted(result.best_order) == list(range(8))
        assert result.best_objective >= result.original_objective
        assert result.peak_memory_bytes > 0

    def test_model_memory_grows_with_training(self):
        solver = DQNInferenceSolver(
            config=GenTranSeqConfig(episodes=2, steps_per_episode=10, seed=0),
            train_episodes=0,
        )
        assert solver.model_memory_bytes() == 0
