"""Tests for exhaustive and branch-and-bound solvers."""

import pytest

from repro.errors import SolverError
from repro.solvers import BranchAndBoundSolver, ExhaustiveSolver, ReorderProblem
from repro.workloads.scenarios import IFU


@pytest.fixture
def small_problem(case_workload):
    """A 5-transaction slice of the case study (5! = 120 orders)."""
    return ReorderProblem(
        pre_state=case_workload.pre_state,
        transactions=case_workload.transactions[:5],
        ifus=(IFU,),
    )


@pytest.fixture
def full_problem(case_workload):
    return ReorderProblem(
        pre_state=case_workload.pre_state,
        transactions=case_workload.transactions,
        ifus=(IFU,),
    )


class TestExhaustive:
    def test_certifies_case_study_optimum(self, full_problem):
        """Ground truth: under the batch-netting semantics the best order
        over all 8! permutations reaches 2.8667 ETH — above the paper's
        hand-derived case 3 (2.7333), which itself relies on the same
        netting (see EXPERIMENTS.md)."""
        result = ExhaustiveSolver(max_size=8).solve(full_problem)
        assert result.best_objective == pytest.approx(2.8667, abs=1e-3)
        assert result.improved

    def test_refuses_oversized(self, full_problem):
        with pytest.raises(SolverError):
            ExhaustiveSolver(max_size=5).solve(full_problem)

    def test_small_slice_never_worse_than_identity(self, small_problem):
        result = ExhaustiveSolver().solve(small_problem)
        assert result.best_objective >= small_problem.original_objective

    def test_best_order_is_permutation(self, small_problem):
        result = ExhaustiveSolver().solve(small_problem)
        assert sorted(result.best_order) == list(range(5))


class TestBranchAndBound:
    def test_matches_exhaustive_on_small_slice(self, case_workload):
        exhaustive = ExhaustiveSolver().solve(
            ReorderProblem(
                pre_state=case_workload.pre_state,
                transactions=case_workload.transactions[:5],
                ifus=(IFU,),
            )
        )
        bnb = BranchAndBoundSolver().solve(
            ReorderProblem(
                pre_state=case_workload.pre_state,
                transactions=case_workload.transactions[:5],
                ifus=(IFU,),
            )
        )
        assert bnb.best_objective == pytest.approx(exhaustive.best_objective)

    def test_reports_node_count(self, small_problem):
        result = BranchAndBoundSolver().solve(small_problem)
        assert result.metadata["nodes"] > 0

    def test_refuses_oversized(self, case_workload):
        problem = ReorderProblem(
            pre_state=case_workload.pre_state,
            transactions=case_workload.transactions,
            ifus=(IFU,),
        )
        with pytest.raises(SolverError):
            BranchAndBoundSolver(max_size=4).solve(problem)
