"""Batch-kernel solver conversions must not change what solvers find.

Every population solver now scores candidate sets through
``ReorderProblem.score_many`` (one columnar ``evaluate_orders`` call)
instead of a serial ``score`` loop.  These tests pin the conversion
contract: under a fixed seed, the batched solver returns the *same
permutation, byte for byte*, as the identical algorithm scoring
serially — because the kernel is bit-identical and the scan order and
tie-breaks were left untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GenTranSeqConfig
from repro.solvers import (
    DQNInferenceSolver,
    ExhaustiveSolver,
    GreedyInsertionSolver,
    HillClimbSolver,
    RandomRestartHillClimbSolver,
    ReorderProblem,
    SimulatedAnnealingSolver,
)
from repro.workloads.scenarios import IFU


@pytest.fixture
def problem_factory(case_workload):
    def make():
        return ReorderProblem(
            pre_state=case_workload.pre_state,
            transactions=case_workload.transactions,
            ifus=(IFU,),
        )

    return make


def _serialise_scoring(problem):
    """Route score_many through a serial score loop (the pre-batch path)."""

    def serial(orders):
        values = []
        for order in orders:
            values.append(problem.score(order))
        return values

    problem.score_many = serial
    return problem


SOLVERS = [
    HillClimbSolver(max_rounds=4),
    RandomRestartHillClimbSolver(restarts=3, seed=0, max_rounds=3),
    SimulatedAnnealingSolver(iterations=300, seed=0),
    SimulatedAnnealingSolver(iterations=200, seed=2, restarts=3),
    GreedyInsertionSolver(),
    ExhaustiveSolver(max_size=8),
]


class TestBatchedEqualsSerial:
    @pytest.mark.parametrize(
        "solver", SOLVERS, ids=lambda s: f"{s.name}-{id(s) % 97}"
    )
    def test_same_solution_as_serial_scoring(self, solver, problem_factory):
        batched = solver.solve(problem_factory())
        serial = solver.solve(_serialise_scoring(problem_factory()))
        assert batched.best_order == serial.best_order
        assert batched.best_objective == serial.best_objective
        assert batched.original_objective == serial.original_objective

    def test_batched_solvers_hit_the_batch_kernel(self, problem_factory):
        problem = problem_factory()
        HillClimbSolver(max_rounds=2).solve(problem)
        stats = problem.replay_stats()
        assert stats["batch_calls"] > 0
        assert stats["batch_candidates"] > stats["batch_calls"]

    def test_annealing_restarts_take_the_best_chain(self, problem_factory):
        single = SimulatedAnnealingSolver(iterations=200, seed=3).solve(
            problem_factory()
        )
        multi = SimulatedAnnealingSolver(
            iterations=200, seed=3, restarts=4
        ).solve(problem_factory())
        assert multi.best_objective >= single.best_objective
        assert multi.metadata["restarts"] == 4.0

    def test_annealing_rejects_zero_restarts(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSolver(restarts=0)

    def test_exhaustive_chunk_size_independent(self, problem_factory):
        wide = ExhaustiveSolver(max_size=8)
        narrow = ExhaustiveSolver(max_size=8)
        narrow.chunk_size = 7  # ragged, non-divisor chunking
        a = wide.solve(problem_factory())
        b = narrow.solve(problem_factory())
        assert a.best_order == b.best_order
        assert a.best_objective == b.best_objective


class TestEvaluateOrders:
    def test_matches_evaluate_order(self, problem_factory, case_workload):
        env = problem_factory()._env
        fresh = problem_factory()._env
        rng = np.random.default_rng(0)
        orders = [
            tuple(int(x) for x in rng.permutation(len(case_workload.transactions)))
            for _ in range(12)
        ]
        batch = env.evaluate_orders(orders)
        for order, mine in zip(orders, batch):
            theirs = fresh.evaluate_order(order)
            assert mine["objective"] == theirs["objective"]
            assert mine["feasible"] == theirs["feasible"]
            assert mine["executed_count"] == theirs["executed_count"]

    def test_cache_hits_skip_the_kernel(self, problem_factory):
        env = problem_factory()._env
        rng = np.random.default_rng(1)
        orders = [tuple(int(x) for x in rng.permutation(8)) for _ in range(6)]
        env.evaluate_orders(orders)
        calls_before = env.replay_stats()["batch_calls"]
        again = env.evaluate_orders(orders)  # all cached now
        stats = env.replay_stats()
        assert stats["batch_calls"] == calls_before
        assert len(again) == len(orders)

    def test_single_miss_routes_incrementally(self, problem_factory):
        env = problem_factory()._env
        rng = np.random.default_rng(2)
        known = [tuple(int(x) for x in rng.permutation(8)) for _ in range(4)]
        env.evaluate_orders(known)
        novel = tuple(int(x) for x in rng.permutation(8))
        before = env.replay_stats()
        env.evaluate_orders(known + [novel])
        after = env.replay_stats()
        # One distinct miss: the incremental engine serves it — no
        # columnar call is spun up for a population of one.
        assert after["batch_calls"] == before["batch_calls"]
        assert after["incremental_replays"] > before["incremental_replays"]

    def test_duplicate_candidates_evaluated_once(self, problem_factory):
        env = problem_factory()._env
        order = tuple(reversed(range(8)))
        other = tuple(np.roll(np.arange(8), 3).tolist())
        before = env.replay_stats()["batch_candidates"]
        results = env.evaluate_orders([order, other, order, other])
        after = env.replay_stats()["batch_candidates"]
        assert after - before == 2  # deduplicated before the kernel
        assert results[0]["objective"] == results[2]["objective"]
        assert results[1]["objective"] == results[3]["objective"]


class TestDQNBeam:
    def test_population_one_is_greedy_rollout(self, problem_factory):
        config = GenTranSeqConfig(episodes=4, steps_per_episode=20, seed=3)
        greedy = DQNInferenceSolver(
            config=config, train_episodes=4, max_swaps=10
        ).solve(problem_factory())
        assert sorted(greedy.best_order) == list(range(8))
        assert greedy.best_objective >= greedy.original_objective

    def test_beam_returns_valid_result(self, problem_factory):
        config = GenTranSeqConfig(episodes=4, steps_per_episode=20, seed=3)
        beam = DQNInferenceSolver(
            config=config, train_episodes=4, max_swaps=10, population=4
        ).solve(problem_factory())
        assert sorted(beam.best_order) == list(range(8))
        assert beam.best_objective >= beam.original_objective
        assert beam.metadata["population"] == 4.0

    def test_population_must_be_positive(self):
        with pytest.raises(ValueError):
            DQNInferenceSolver(population=0)
