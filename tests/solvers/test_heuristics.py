"""Tests for annealing, hill climbing and greedy solvers."""

import pytest

from repro.solvers import (
    GreedyInsertionSolver,
    HillClimbSolver,
    RandomRestartHillClimbSolver,
    ReorderProblem,
    SimulatedAnnealingSolver,
)
from repro.workloads.scenarios import IFU


@pytest.fixture
def problem_factory(case_workload):
    def make():
        return ReorderProblem(
            pre_state=case_workload.pre_state,
            transactions=case_workload.transactions,
            ifus=(IFU,),
        )
    return make


class TestSimulatedAnnealing:
    def test_finds_profit(self, problem_factory):
        result = SimulatedAnnealingSolver(iterations=800, seed=1).solve(
            problem_factory()
        )
        assert result.improved
        assert result.best_objective > 2.5

    def test_never_below_identity(self, problem_factory):
        result = SimulatedAnnealingSolver(iterations=100, seed=2).solve(
            problem_factory()
        )
        assert result.best_objective >= 2.5

    def test_deterministic_per_seed(self, problem_factory):
        a = SimulatedAnnealingSolver(iterations=200, seed=5).solve(problem_factory())
        b = SimulatedAnnealingSolver(iterations=200, seed=5).solve(problem_factory())
        assert a.best_order == b.best_order

    def test_reports_acceptance(self, problem_factory):
        result = SimulatedAnnealingSolver(iterations=100, seed=0).solve(
            problem_factory()
        )
        assert "accepted" in result.metadata


class TestHillClimb:
    def test_reaches_local_optimum_with_profit(self, problem_factory):
        result = HillClimbSolver().solve(problem_factory())
        assert result.improved

    def test_local_optimum_is_swap_stable(self, problem_factory):
        problem = problem_factory()
        result = HillClimbSolver().solve(problem)
        from itertools import combinations
        best = result.best_objective
        order = list(result.best_order)
        for i, j in combinations(range(len(order)), 2):
            order[i], order[j] = order[j], order[i]
            assert problem.score(order) <= best + 1e-9
            order[i], order[j] = order[j], order[i]

    def test_restarts_never_worse_than_plain(self, problem_factory):
        plain = HillClimbSolver().solve(problem_factory())
        restarts = RandomRestartHillClimbSolver(restarts=3, seed=0).solve(
            problem_factory()
        )
        assert restarts.best_objective >= plain.best_objective - 1e-9


class TestGreedy:
    def test_produces_valid_permutation(self, problem_factory):
        result = GreedyInsertionSolver().solve(problem_factory())
        assert sorted(result.best_order) == list(range(8))

    def test_never_reports_infeasible(self, problem_factory):
        result = GreedyInsertionSolver().solve(problem_factory())
        assert result.best_objective != float("-inf")

    def test_at_least_identity_value(self, problem_factory):
        result = GreedyInsertionSolver().solve(problem_factory())
        assert result.best_objective >= 2.5 - 1e-9
