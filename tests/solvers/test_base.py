"""Tests for the solver problem/result scaffolding."""

import pytest

from repro.solvers import ReorderProblem
from repro.solvers.base import SolverResult
from repro.workloads import CASE3_ORDER
from repro.workloads.scenarios import IFU


@pytest.fixture
def problem(case_workload):
    return ReorderProblem(
        pre_state=case_workload.pre_state,
        transactions=case_workload.transactions,
        ifus=(IFU,),
    )


class TestProblem:
    def test_size(self, problem):
        assert problem.size == 8

    def test_original_objective(self, problem):
        assert problem.original_objective == pytest.approx(2.5)

    def test_score_identity(self, problem):
        assert problem.score(problem.identity_order()) == pytest.approx(2.5)

    def test_score_case3(self, problem):
        assert problem.score(CASE3_ORDER) == pytest.approx(2.5 + 7 / 30)

    def test_evaluation_counter(self, problem):
        before = problem.evaluations
        problem.score(problem.identity_order())
        problem.score(CASE3_ORDER)
        assert problem.evaluations == before + 2


class TestResult:
    def test_profit_and_improved(self):
        result = SolverResult(
            solver_name="x",
            best_order=(1, 0),
            best_objective=2.6,
            original_objective=2.5,
            elapsed_seconds=0.1,
            evaluations=10,
        )
        assert result.profit == pytest.approx(0.1)
        assert result.improved

    def test_not_improved_at_equality(self):
        result = SolverResult(
            solver_name="x",
            best_order=(0, 1),
            best_objective=2.5,
            original_objective=2.5,
            elapsed_seconds=0.1,
            evaluations=1,
        )
        assert not result.improved
