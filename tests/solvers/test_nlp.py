"""Tests for the NLP relaxation solvers (APOPT/MINOS/SNOPT stand-ins)."""

import numpy as np
import pytest

from repro.solvers import (
    ApoptLikeSolver,
    MinosLikeSolver,
    ReorderProblem,
    RelaxationSolver,
    SnoptLikeSolver,
)
from repro.workloads.scenarios import IFU


@pytest.fixture
def problem(case_workload):
    return ReorderProblem(
        pre_state=case_workload.pre_state,
        transactions=case_workload.transactions,
        ifus=(IFU,),
    )


class TestDecoding:
    def test_decode_is_argsort(self):
        keys = np.array([0.3, 0.1, 0.9, 0.5])
        assert RelaxationSolver.decode(keys) == (1, 0, 3, 2)

    def test_decode_stable_on_ties(self):
        keys = np.array([0.5, 0.5, 0.1])
        assert RelaxationSolver.decode(keys) == (2, 0, 1)

    def test_identity_keys_decode_identity(self):
        keys = np.linspace(0, 1, 6)
        assert RelaxationSolver.decode(keys) == tuple(range(6))


@pytest.mark.parametrize(
    "solver_cls", [ApoptLikeSolver, MinosLikeSolver, SnoptLikeSolver]
)
class TestStandIns:
    def test_runs_and_returns_permutation(self, solver_cls, problem):
        result = solver_cls(restarts=1, max_iterations=15).solve(problem)
        assert sorted(result.best_order) == list(range(8))

    def test_never_below_identity(self, solver_cls, problem):
        result = solver_cls(restarts=1, max_iterations=15).solve(problem)
        assert result.best_objective >= problem.original_objective - 1e-9

    def test_name_identifies_stand_in(self, solver_cls, problem):
        result = solver_cls(restarts=1, max_iterations=5).solve(problem)
        assert "like" in result.solver_name


class TestCostScaling:
    def test_evaluations_grow_with_size(self, case_workload):
        """The NLP pathology Figure 11 shows: bigger N, more evaluations."""
        small = ReorderProblem(
            pre_state=case_workload.pre_state,
            transactions=case_workload.transactions[:4],
            ifus=(IFU,),
        )
        large = ReorderProblem(
            pre_state=case_workload.pre_state,
            transactions=case_workload.transactions,
            ifus=(IFU,),
        )
        solver = MinosLikeSolver(restarts=1, max_iterations=15)
        small_result = solver.solve(small)
        large_result = solver.solve(large)
        assert large_result.evaluations > small_result.evaluations
