"""Solvers under multi-IFU objectives."""

import pytest

from repro.config import WorkloadConfig
from repro.core.multi_ifu import mean_wealth, min_wealth_gain
from repro.solvers import (
    HillClimbSolver,
    ReorderProblem,
    SimulatedAnnealingSolver,
)
from repro.workloads import generate_workload


@pytest.fixture
def two_ifu_workload():
    return generate_workload(
        WorkloadConfig(mempool_size=10, num_users=8, num_ifus=2,
                       min_ifu_involvement=3, seed=17)
    )


class TestMultiIFUObjectives:
    def test_mean_objective_problem(self, two_ifu_workload):
        problem = ReorderProblem(
            pre_state=two_ifu_workload.pre_state,
            transactions=two_ifu_workload.transactions,
            ifus=two_ifu_workload.ifus,
            objective=mean_wealth,
        )
        result = HillClimbSolver().solve(problem)
        assert result.best_objective >= problem.original_objective

    def test_min_objective_problem(self, two_ifu_workload):
        problem = ReorderProblem(
            pre_state=two_ifu_workload.pre_state,
            transactions=two_ifu_workload.transactions,
            ifus=two_ifu_workload.ifus,
            objective=min_wealth_gain,
        )
        result = SimulatedAnnealingSolver(iterations=300, seed=1).solve(problem)
        assert result.best_objective >= problem.original_objective

    def test_min_objective_never_exceeds_mean(self, two_ifu_workload):
        """For any ordering, min wealth <= mean wealth."""
        mean_problem = ReorderProblem(
            pre_state=two_ifu_workload.pre_state,
            transactions=two_ifu_workload.transactions,
            ifus=two_ifu_workload.ifus,
            objective=mean_wealth,
        )
        min_problem = ReorderProblem(
            pre_state=two_ifu_workload.pre_state,
            transactions=two_ifu_workload.transactions,
            ifus=two_ifu_workload.ifus,
            objective=min_wealth_gain,
        )
        identity = mean_problem.identity_order()
        assert min_problem.score(identity) <= mean_problem.score(identity)

    def test_solvers_report_per_objective_improvements(self, two_ifu_workload):
        """The mean objective has at least as much headroom as max-min."""
        def best(objective):
            problem = ReorderProblem(
                pre_state=two_ifu_workload.pre_state,
                transactions=two_ifu_workload.transactions,
                ifus=two_ifu_workload.ifus,
                objective=objective,
            )
            return SimulatedAnnealingSolver(
                iterations=400, seed=2
            ).solve(problem).profit

        assert best(mean_wealth) >= 0
        assert best(min_wealth_gain) >= 0
