"""Tests for the Eq. 10 scarcity pricing model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TokenError
from repro.tokens import ScarcityPricing


@pytest.fixture
def pt_pricing():
    """The PAROLE Token pricing of Section VI-A (S0=10, P0=0.2)."""
    return ScarcityPricing(max_supply=10, initial_price_eth=0.2)


class TestEq10:
    """The exact values of the case studies."""

    def test_full_supply_is_initial_price(self, pt_pricing):
        assert pt_pricing.price(10) == pytest.approx(0.2)

    def test_five_remaining_is_04(self, pt_pricing):
        assert pt_pricing.price(5) == pytest.approx(0.4)

    def test_four_remaining_is_05(self, pt_pricing):
        assert pt_pricing.price(4) == pytest.approx(0.5)

    def test_three_remaining_is_066(self, pt_pricing):
        assert pt_pricing.price(3) == pytest.approx(2.0 / 3.0)

    def test_six_remaining_is_033(self, pt_pricing):
        assert pt_pricing.price(6) == pytest.approx(1.0 / 3.0)

    def test_price_after_mint(self, pt_pricing):
        assert pt_pricing.price_after_mint(5) == pytest.approx(0.5)

    def test_price_after_burn(self, pt_pricing):
        assert pt_pricing.price_after_burn(5) == pytest.approx(1.0 / 3.0)

    def test_zero_remaining_clamped_to_one(self, pt_pricing):
        assert pt_pricing.price(0) == pt_pricing.price(1)


class TestValidation:
    def test_negative_remaining_raises(self, pt_pricing):
        with pytest.raises(TokenError):
            pt_pricing.price(-1)

    def test_remaining_above_supply_raises(self, pt_pricing):
        with pytest.raises(TokenError):
            pt_pricing.price(11)

    def test_mint_from_zero_raises(self, pt_pricing):
        with pytest.raises(TokenError):
            pt_pricing.price_after_mint(0)

    def test_nonpositive_supply_raises(self):
        with pytest.raises(TokenError):
            ScarcityPricing(max_supply=0, initial_price_eth=0.2)

    def test_nonpositive_price_raises(self):
        with pytest.raises(TokenError):
            ScarcityPricing(max_supply=10, initial_price_eth=0.0)


class TestMonotonicity:
    @given(st.integers(min_value=1, max_value=99))
    def test_property_price_decreases_with_supply(self, remaining):
        pricing = ScarcityPricing(max_supply=100, initial_price_eth=0.1)
        assert pricing.price(remaining) > pricing.price(remaining + 1)

    @given(st.integers(min_value=1, max_value=100))
    def test_property_mint_raises_price(self, remaining):
        pricing = ScarcityPricing(max_supply=100, initial_price_eth=0.1)
        assert pricing.price_after_mint(remaining) >= pricing.price(remaining)

    @given(st.integers(min_value=0, max_value=99))
    def test_property_burn_lowers_price(self, remaining):
        pricing = ScarcityPricing(max_supply=100, initial_price_eth=0.1)
        assert pricing.price_after_burn(remaining) <= pricing.price(remaining)

    def test_appreciation_positive(self, pt_pricing):
        assert pt_pricing.appreciation_from(5) > 0
