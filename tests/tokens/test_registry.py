"""Tests for the token registry."""

import pytest

from repro.errors import TokenError
from repro.tokens import ERC20Token, LimitedEditionNFT, TokenRegistry


@pytest.fixture
def registry():
    return TokenRegistry()


class TestRegistry:
    def test_deploy_returns_address(self, registry, pt_config):
        address = registry.deploy(LimitedEditionNFT(pt_config))
        assert address.startswith("0x")
        assert address in registry

    def test_resolve_roundtrip(self, registry, pt_config):
        contract = LimitedEditionNFT(pt_config)
        address = registry.deploy(contract)
        assert registry.resolve(address) is contract

    def test_resolve_unknown_raises(self, registry):
        with pytest.raises(TokenError):
            registry.resolve("0xmissing")

    def test_distinct_deploys_distinct_addresses(self, registry, pt_config):
        a = registry.deploy(LimitedEditionNFT(pt_config))
        b = registry.deploy(LimitedEditionNFT(pt_config))
        assert a != b

    def test_nft_contracts_filter(self, registry, pt_config):
        nft_address = registry.deploy(LimitedEditionNFT(pt_config))
        registry.deploy(ERC20Token(symbol="L2T", name="L2 Token"))
        nfts = registry.nft_contracts()
        assert set(nfts) == {nft_address}

    def test_len_and_iter(self, registry, pt_config):
        registry.deploy(LimitedEditionNFT(pt_config))
        assert len(registry) == 1
        assert len(list(registry)) == 1
