"""Tests for the limited-edition ERC-721 state machine (Eq. 1-6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NFTContractConfig
from repro.errors import (
    NotOwnerError,
    SupplyExhaustedError,
    TokenError,
    UnknownTokenError,
)
from repro.tokens import LimitedEditionNFT, TxValidity


@pytest.fixture
def contract(pt_config):
    return LimitedEditionNFT(pt_config)


@pytest.fixture
def balances():
    return {"alice": 5.0, "bob": 5.0, "carol": 0.05}


class TestMint:
    def test_mint_assigns_ownership(self, contract, balances):
        token_id = contract.mint("alice", balances)
        assert contract.owner_of(token_id) == "alice"

    def test_mint_debits_pre_mint_price(self, contract, balances):
        # Eq. 2: the minter pays P^{t-1}, the price *before* the supply change.
        contract.mint("alice", balances)
        assert balances["alice"] == pytest.approx(5.0 - 0.2)

    def test_mint_decrements_supply(self, contract, balances):
        contract.mint("alice", balances)
        assert contract.remaining_supply == 9

    def test_mint_raises_price(self, contract, balances):
        before = contract.unit_price
        contract.mint("alice", balances)
        assert contract.unit_price > before

    def test_sequential_ids(self, contract, balances):
        ids = [contract.mint("alice", balances) for _ in range(3)]
        assert ids == [0, 1, 2]

    def test_mint_insufficient_balance_raises(self, contract, balances):
        for _ in range(4):
            contract.mint("alice", balances)
        # price is now 10/6*0.2 = 0.333; carol holds 0.05
        with pytest.raises(TokenError):
            contract.mint("carol", balances)

    def test_mint_exhausted_supply_raises(self, balances):
        tiny = LimitedEditionNFT(
            NFTContractConfig(max_supply=1, initial_price_eth=0.1)
        )
        tiny.mint("alice", balances)
        with pytest.raises(SupplyExhaustedError):
            tiny.mint("bob", balances)

    def test_check_mint_classifies(self, contract, balances):
        assert contract.check_mint("alice", balances) is TxValidity.VALID
        assert contract.check_mint("carol", balances) is TxValidity.INSUFFICIENT_BALANCE

    def test_explicit_duplicate_id_raises(self, contract, balances):
        contract.mint("alice", balances, token_id=3)
        with pytest.raises(TokenError):
            contract.mint("bob", balances, token_id=3)


class TestTransfer:
    def test_transfer_moves_ownership_and_payment(self, contract, balances):
        token_id = contract.mint("alice", balances)
        price = contract.unit_price
        alice_before, bob_before = balances["alice"], balances["bob"]
        contract.transfer("alice", "bob", token_id, balances)
        assert contract.owner_of(token_id) == "bob"
        assert balances["bob"] == pytest.approx(bob_before - price)
        assert balances["alice"] == pytest.approx(alice_before + price)

    def test_transfer_keeps_price(self, contract, balances):
        token_id = contract.mint("alice", balances)
        before = contract.unit_price
        contract.transfer("alice", "bob", token_id, balances)
        assert contract.unit_price == before

    def test_transfer_wrong_owner_raises(self, contract, balances):
        token_id = contract.mint("alice", balances)
        with pytest.raises(NotOwnerError):
            contract.transfer("bob", "carol", token_id, balances)

    def test_transfer_unknown_token_raises(self, contract, balances):
        with pytest.raises(UnknownTokenError):
            contract.transfer("alice", "bob", 99, balances)

    def test_transfer_poor_buyer_raises(self, contract, balances):
        token_id = contract.mint("alice", balances)
        with pytest.raises(TokenError):
            contract.transfer("alice", "carol", token_id, balances)

    def test_check_transfer_classifies(self, contract, balances):
        token_id = contract.mint("alice", balances)
        assert (
            contract.check_transfer("alice", "bob", token_id, balances)
            is TxValidity.VALID
        )
        assert (
            contract.check_transfer("bob", "alice", token_id, balances)
            is TxValidity.NOT_OWNER
        )


class TestBurn:
    def test_burn_destroys_and_replenishes(self, contract, balances):
        token_id = contract.mint("alice", balances)
        contract.burn("alice", token_id)
        assert not contract.exists(token_id)
        assert contract.remaining_supply == 10

    def test_burn_lowers_price(self, contract, balances):
        a = contract.mint("alice", balances)
        contract.mint("alice", balances)
        before = contract.unit_price
        contract.burn("alice", a)
        assert contract.unit_price < before

    def test_burn_wrong_owner_raises(self, contract, balances):
        token_id = contract.mint("alice", balances)
        with pytest.raises(NotOwnerError):
            contract.burn("bob", token_id)

    def test_burn_unknown_raises(self, contract):
        with pytest.raises(UnknownTokenError):
            contract.burn("alice", 0)

    def test_burned_id_reusable_after_exhaustion(self, balances):
        tiny = LimitedEditionNFT(
            NFTContractConfig(max_supply=2, initial_price_eth=0.1)
        )
        first = tiny.mint("alice", balances)
        tiny.mint("alice", balances)
        tiny.burn("alice", first)
        again = tiny.mint("bob", balances)
        assert again == first


class TestViewsAndEvents:
    def test_tokens_of_sorted(self, contract, balances):
        contract.mint("alice", balances)
        contract.mint("bob", balances)
        contract.mint("alice", balances)
        assert contract.tokens_of("alice") == (0, 2)

    def test_holdings_value(self, contract, balances):
        contract.mint("alice", balances)
        contract.mint("alice", balances)
        assert contract.holdings_value("alice") == pytest.approx(
            2 * contract.unit_price
        )

    def test_events_recorded_in_order(self, contract, balances):
        token_id = contract.mint("alice", balances)
        contract.transfer("alice", "bob", token_id, balances)
        contract.burn("bob", token_id)
        assert [event.kind for event in contract.events] == [
            "mint", "transfer", "burn",
        ]

    def test_snapshot_is_isolated(self, contract, balances):
        contract.mint("alice", balances)
        clone = contract.snapshot()
        clone.mint("bob", balances)
        assert contract.minted_count == 1
        assert clone.minted_count == 2

    def test_preminted_owners(self, pt_config):
        contract = LimitedEditionNFT(pt_config, owners={0: "x", 1: "y"})
        assert contract.remaining_supply == 8
        assert contract.owner_of(0) == "x"

    def test_premint_beyond_supply_raises(self, pt_config):
        with pytest.raises(TokenError):
            LimitedEditionNFT(pt_config, owners={i: "x" for i in range(11)})

    def test_premint_bad_id_raises(self, pt_config):
        with pytest.raises(TokenError):
            LimitedEditionNFT(pt_config, owners={10: "x"})


class TestSupplyInvariant:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(["mint", "burn"]), max_size=30))
    def test_property_minted_plus_remaining_is_constant(self, ops):
        contract = LimitedEditionNFT(
            NFTContractConfig(max_supply=10, initial_price_eth=0.01)
        )
        balances = {"u": 1000.0}
        for op in ops:
            if op == "mint" and contract.remaining_supply > 0:
                contract.mint("u", balances)
            elif op == "burn" and contract.tokens_of("u"):
                contract.burn("u", contract.tokens_of("u")[0])
            assert contract.minted_count + contract.remaining_supply == 10
            assert contract.unit_price > 0
