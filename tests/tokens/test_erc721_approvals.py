"""Tests for ERC-721 approvals, operators and metadata."""

import pytest

from repro.errors import NotOwnerError, TokenError, UnknownTokenError
from repro.tokens import LimitedEditionNFT


@pytest.fixture
def setup(pt_config):
    contract = LimitedEditionNFT(pt_config)
    balances = {"alice": 5.0, "bob": 5.0, "carol": 5.0}
    token_id = contract.mint("alice", balances)
    return contract, balances, token_id


class TestSingleTokenApproval:
    def test_approve_and_query(self, setup):
        contract, _, token_id = setup
        contract.approve("alice", "bob", token_id)
        assert contract.get_approved(token_id) == "bob"

    def test_non_owner_cannot_approve(self, setup):
        contract, _, token_id = setup
        with pytest.raises(NotOwnerError):
            contract.approve("bob", "carol", token_id)

    def test_approved_party_can_transfer_from(self, setup):
        contract, balances, token_id = setup
        contract.approve("alice", "bob", token_id)
        contract.transfer_from("bob", "alice", "carol", token_id, balances)
        assert contract.owner_of(token_id) == "carol"

    def test_unauthorised_transfer_from_rejected(self, setup):
        contract, balances, token_id = setup
        with pytest.raises(TokenError):
            contract.transfer_from("bob", "alice", "carol", token_id, balances)

    def test_owner_can_always_transfer_from(self, setup):
        contract, balances, token_id = setup
        contract.transfer_from("alice", "alice", "bob", token_id, balances)
        assert contract.owner_of(token_id) == "bob"

    def test_approval_cleared_on_transfer(self, setup):
        contract, balances, token_id = setup
        contract.approve("alice", "bob", token_id)
        contract.transfer("alice", "carol", token_id, balances)
        assert contract.get_approved(token_id) is None

    def test_get_approved_unknown_token_raises(self, setup):
        contract, _, _ = setup
        with pytest.raises(UnknownTokenError):
            contract.get_approved(99)


class TestOperatorApproval:
    def test_operator_covers_all_tokens(self, setup):
        contract, balances, first = setup
        second = contract.mint("alice", balances)
        contract.set_approval_for_all("alice", "bob", True)
        contract.transfer_from("bob", "alice", "carol", first, balances)
        contract.transfer_from("bob", "alice", "carol", second, balances)
        assert contract.tokens_of("carol") == (first, second)

    def test_operator_revocation(self, setup):
        contract, balances, token_id = setup
        contract.set_approval_for_all("alice", "bob", True)
        contract.set_approval_for_all("alice", "bob", False)
        assert not contract.is_approved_for_all("alice", "bob")
        with pytest.raises(TokenError):
            contract.transfer_from("bob", "alice", "carol", token_id, balances)

    def test_is_authorized_matrix(self, setup):
        contract, _, token_id = setup
        assert contract.is_authorized("alice", token_id)       # owner
        assert not contract.is_authorized("bob", token_id)
        contract.approve("alice", "bob", token_id)
        assert contract.is_authorized("bob", token_id)          # approvee
        contract.set_approval_for_all("alice", "carol", True)
        assert contract.is_authorized("carol", token_id)        # operator


class TestMetadata:
    def test_set_and_read(self, setup):
        contract, _, token_id = setup
        contract.set_metadata(token_id, name="PT #0", rarity="legendary")
        assert contract.metadata(token_id) == {
            "name": "PT #0", "rarity": "legendary",
        }

    def test_metadata_updates_merge(self, setup):
        contract, _, token_id = setup
        contract.set_metadata(token_id, name="PT #0")
        contract.set_metadata(token_id, rarity="rare")
        assert contract.metadata(token_id)["name"] == "PT #0"

    def test_token_uri_deterministic(self, setup):
        contract, _, token_id = setup
        assert contract.token_uri(token_id) == f"nft://pt/{token_id}"

    def test_metadata_cleared_on_burn(self, setup):
        contract, balances, token_id = setup
        contract.set_metadata(token_id, name="doomed")
        contract.burn("alice", token_id)
        fresh = contract.mint("bob", balances, token_id=token_id)
        assert contract.metadata(fresh) == {}

    def test_metadata_unknown_token_raises(self, setup):
        contract, _, _ = setup
        with pytest.raises(UnknownTokenError):
            contract.metadata(99)

    def test_snapshot_copies_approvals_and_metadata(self, setup):
        contract, balances, token_id = setup
        contract.approve("alice", "bob", token_id)
        contract.set_metadata(token_id, name="PT #0")
        clone = contract.snapshot()
        clone.set_metadata(token_id, name="changed")
        assert contract.metadata(token_id)["name"] == "PT #0"
        assert clone.get_approved(token_id) == "bob"
