"""Tests for the ERC-20 fungible token."""

import pytest

from repro.errors import InsufficientBalanceError, TokenError
from repro.tokens import ERC20Token


@pytest.fixture
def token():
    erc20 = ERC20Token(symbol="L2T", name="L2 Token")
    erc20.mint("alice", 1000)
    erc20.mint("bob", 500)
    return erc20


class TestSupply:
    def test_mint_increases_supply(self, token):
        assert token.total_supply() == 1500

    def test_burn_decreases_supply(self, token):
        token.burn("alice", 400)
        assert token.total_supply() == 1100
        assert token.balance_of("alice") == 600

    def test_burn_more_than_held_raises(self, token):
        with pytest.raises(InsufficientBalanceError):
            token.burn("bob", 501)

    def test_mint_nonpositive_raises(self, token):
        with pytest.raises(TokenError):
            token.mint("alice", 0)

    def test_unknown_holder_has_zero(self, token):
        assert token.balance_of("stranger") == 0


class TestTransfer:
    def test_transfer_moves_units(self, token):
        token.transfer("alice", "bob", 300)
        assert token.balance_of("alice") == 700
        assert token.balance_of("bob") == 800

    def test_transfer_conserves_supply(self, token):
        token.transfer("alice", "bob", 1)
        assert token.total_supply() == 1500

    def test_overdraw_raises(self, token):
        with pytest.raises(InsufficientBalanceError):
            token.transfer("bob", "alice", 501)


class TestAllowances:
    def test_approve_and_query(self, token):
        token.approve("alice", "bob", 100)
        assert token.allowance("alice", "bob") == 100

    def test_transfer_from_spends_allowance(self, token):
        token.approve("alice", "bob", 100)
        token.transfer_from("bob", "alice", "carol", 60)
        assert token.allowance("alice", "bob") == 40
        assert token.balance_of("carol") == 60

    def test_transfer_from_over_allowance_raises(self, token):
        token.approve("alice", "bob", 10)
        with pytest.raises(TokenError):
            token.transfer_from("bob", "alice", "carol", 11)

    def test_negative_allowance_raises(self, token):
        with pytest.raises(TokenError):
            token.approve("alice", "bob", -1)

    def test_default_allowance_zero(self, token):
        assert token.allowance("alice", "nobody") == 0
