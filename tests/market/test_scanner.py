"""Tests for the Figure 10 arbitrage scanner."""

import pytest

from repro.config import SnapshotStudyConfig
from repro.errors import MarketError
from repro.market import (
    ArbitrageScanner,
    Chain,
    SnapshotStore,
    generate_study_collections,
)


@pytest.fixture
def store():
    config = SnapshotStudyConfig(collections_per_tier=6, seed=0)
    return SnapshotStore(generate_study_collections(config))


@pytest.fixture
def scanner():
    return ArbitrageScanner()


class TestFindings:
    def test_findings_have_positive_profit(self, store, scanner):
        findings = scanner.scan(store)
        assert findings
        assert all(f.profit_opportunity_eth > 0 for f in findings)

    def test_differential_respects_floor(self, store, scanner):
        for finding in scanner.scan(store):
            assert finding.differential >= scanner.min_differential_eth

    def test_window_bounds_ordered(self, store, scanner):
        for finding in scanner.scan(store):
            assert finding.window_start <= finding.window_end

    def test_profit_relation_monotone_in_differential(self, scanner):
        low = scanner._profit_relation(0.1, 20)
        high = scanner._profit_relation(0.5, 20)
        assert high > low

    def test_profit_relation_diminishing_in_batch(self, scanner):
        small = scanner._profit_relation(0.2, 10)
        large = scanner._profit_relation(0.2, 100)
        assert small < large
        # Log-diminishing: adding 10 txs helps less at 100 than at 10.
        gain_at_10 = scanner._profit_relation(0.2, 20) - small
        gain_at_100 = scanner._profit_relation(0.2, 110) - large
        assert gain_at_100 < gain_at_10

    def test_tiny_window_rejected(self):
        with pytest.raises(MarketError):
            ArbitrageScanner(window=1)


class TestSummaries:
    def test_all_six_cells_present(self, store, scanner):
        summaries = scanner.summarize(store)
        cells = {(s.chain, s.tier) for s in summaries}
        assert len(cells) == 6

    def test_collection_counts_match_store(self, store, scanner):
        summaries = scanner.summarize(store)
        assert sum(s.collections for s in summaries) == len(store)

    def test_arbitrum_beats_optimism(self, store, scanner):
        """The paper's headline Figure 10 observation."""
        summaries = scanner.summarize(store)
        arbitrum = sum(
            s.total_profit_eth for s in summaries if s.chain is Chain.ARBITRUM
        )
        optimism = sum(
            s.total_profit_eth for s in summaries if s.chain is Chain.OPTIMISM
        )
        assert arbitrum > optimism

    def test_mean_profit_per_collection(self, store, scanner):
        for summary in scanner.summarize(store):
            if summary.collections:
                assert summary.mean_profit_eth == pytest.approx(
                    summary.total_profit_eth / summary.collections
                )
