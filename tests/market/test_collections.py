"""Tests for synthetic NFT collection generation."""

import numpy as np
import pytest

from repro.config import SnapshotStudyConfig
from repro.market import (
    Chain,
    FrequencyTier,
    generate_collection,
    generate_study_collections,
)


@pytest.fixture
def config():
    return SnapshotStudyConfig(collections_per_tier=4, seed=7)


class TestTierBounds:
    @pytest.mark.parametrize("tier,low,high", [
        (FrequencyTier.LFT, 10, 100),
        (FrequencyTier.MFT, 101, 3000),
        (FrequencyTier.HFT, 3001, 12000),
    ])
    def test_ownership_counts_respect_tiers(self, tier, low, high, config, rng):
        for _ in range(5):
            collection = generate_collection(Chain.OPTIMISM, tier, rng, config)
            assert low <= collection.owners <= high


class TestPricePaths:
    def test_prices_positive(self, config, rng):
        collection = generate_collection(
            Chain.ARBITRUM, FrequencyTier.MFT, rng, config
        )
        assert all(p.price_eth > 0 for p in collection.price_history)

    def test_history_length(self, config, rng):
        collection = generate_collection(
            Chain.OPTIMISM, FrequencyTier.LFT, rng, config, snapshots=32
        )
        assert len(collection.price_history) == 32

    def test_max_differential_nonnegative(self, config, rng):
        collection = generate_collection(
            Chain.OPTIMISM, FrequencyTier.HFT, rng, config
        )
        assert collection.max_differential() >= 0

    def test_short_address_format(self, config, rng):
        collection = generate_collection(
            Chain.OPTIMISM, FrequencyTier.LFT, rng, config
        )
        assert collection.short_address.startswith("0x")
        assert ".." in collection.short_address

    def test_arbitrum_churns_more_transactions(self, config):
        """Chain churn drives Figure 10's Arbitrum > Optimism ordering."""
        rng_a = np.random.default_rng(0)
        rng_o = np.random.default_rng(0)
        arb = [
            generate_collection(Chain.ARBITRUM, FrequencyTier.MFT, rng_a, config)
            for _ in range(6)
        ]
        opt = [
            generate_collection(Chain.OPTIMISM, FrequencyTier.MFT, rng_o, config)
            for _ in range(6)
        ]
        assert sum(c.tx_count for c in arb) > sum(c.tx_count for c in opt)


class TestStudyPopulation:
    def test_covers_every_cell(self, config):
        collections = generate_study_collections(config)
        cells = {(c.chain, c.tier) for c in collections}
        assert len(cells) == 6
        assert len(collections) == 6 * config.collections_per_tier

    def test_deterministic_by_seed(self, config):
        a = generate_study_collections(config)
        b = generate_study_collections(config)
        assert [c.address for c in a] == [c.address for c in b]
