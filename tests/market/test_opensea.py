"""Tests for the OpenSea-like marketplace."""

import pytest

from repro.errors import MarketError
from repro.market import Marketplace
from repro.tokens import LimitedEditionNFT


@pytest.fixture
def setup(pt_config):
    contract = LimitedEditionNFT(pt_config)
    balances = {"alice": 3.0, "bob": 3.0, "carol": 0.1}
    market = Marketplace(contract, balances)
    return contract, balances, market


class TestMinting:
    def test_mint_produces_record(self, setup):
        contract, _, market = setup
        token_id, record = market.mint("alice")
        assert contract.owner_of(token_id) == "alice"
        assert record.tx_type == "mint"

    def test_block_number_advances(self, setup):
        _, _, market = setup
        start = market.block_number
        market.mint("alice")
        assert market.block_number == start + 1


class TestListings:
    def test_list_and_buy(self, setup):
        contract, balances, market = setup
        token_id, _ = market.mint("alice")
        market.list_token("alice", token_id, ask_price_eth=0.3)
        sale, record = market.buy("bob", token_id)
        assert contract.owner_of(token_id) == "bob"
        assert record.tx_type == "transfer"
        assert sale.buyer == "bob"

    def test_premium_settled_to_seller(self, setup):
        contract, balances, market = setup
        token_id, _ = market.mint("alice")
        floor = contract.unit_price
        market.list_token("alice", token_id, ask_price_eth=floor + 0.1)
        alice_before = balances["alice"]
        market.buy("bob", token_id)
        assert balances["alice"] == pytest.approx(alice_before + floor + 0.1)

    def test_non_owner_cannot_list(self, setup):
        _, _, market = setup
        token_id, _ = market.mint("alice")
        with pytest.raises(MarketError):
            market.list_token("bob", token_id, ask_price_eth=0.3)

    def test_double_list_rejected(self, setup):
        _, _, market = setup
        token_id, _ = market.mint("alice")
        market.list_token("alice", token_id, ask_price_eth=0.3)
        with pytest.raises(MarketError):
            market.list_token("alice", token_id, ask_price_eth=0.4)

    def test_buy_unlisted_rejected(self, setup):
        _, _, market = setup
        token_id, _ = market.mint("alice")
        with pytest.raises(MarketError):
            market.buy("bob", token_id)

    def test_poor_buyer_rejected(self, setup):
        _, _, market = setup
        token_id, _ = market.mint("alice")
        market.list_token("alice", token_id, ask_price_eth=5.0)
        with pytest.raises(MarketError):
            market.buy("carol", token_id)

    def test_delist(self, setup):
        _, _, market = setup
        token_id, _ = market.mint("alice")
        market.list_token("alice", token_id, ask_price_eth=0.3)
        market.delist("alice", token_id)
        assert market.listings == ()

    def test_delist_by_stranger_rejected(self, setup):
        _, _, market = setup
        token_id, _ = market.mint("alice")
        market.list_token("alice", token_id, ask_price_eth=0.3)
        with pytest.raises(MarketError):
            market.delist("bob", token_id)


class TestBurn:
    def test_burn_produces_record(self, setup):
        contract, _, market = setup
        token_id, _ = market.mint("alice")
        record = market.burn("alice", token_id)
        assert record.tx_type == "burn"
        assert not contract.exists(token_id)

    def test_burn_auto_delists_own_listing(self, setup):
        _, _, market = setup
        token_id, _ = market.mint("alice")
        market.list_token("alice", token_id, ask_price_eth=0.3)
        market.burn("alice", token_id)
        assert market.listings == ()


class TestAccounting:
    def test_volume_accumulates(self, setup):
        contract, _, market = setup
        a, _ = market.mint("alice")
        market.list_token("alice", a, ask_price_eth=0.3)
        sale, _ = market.buy("bob", a)
        assert market.total_volume_eth() == pytest.approx(sale.price_eth)

    def test_records_for_every_state_change(self, setup):
        _, _, market = setup
        a, _ = market.mint("alice")
        market.list_token("alice", a, ask_price_eth=0.3)
        market.buy("bob", a)
        market.burn("bob", a)
        assert [r.tx_type for r in market.records] == [
            "mint", "transfer", "burn",
        ]
