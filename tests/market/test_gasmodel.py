"""Tests for Table III regeneration."""

import pytest

from repro.market import record_for, table3_rows
from repro.market.gasmodel import _format_fee


class TestTable3Rows:
    def test_three_rows_in_paper_order(self):
        rows = table3_rows()
        assert [r.tx_type for r in rows] == ["mint", "transfer", "burn"]

    def test_anchored_block_numbers(self):
        rows = table3_rows()
        assert rows[0].block_number == 17_934_499
        assert rows[1].block_number == 18_183_117
        assert rows[2].block_number == 18_184_325

    def test_anchored_l1_state_indices(self):
        rows = table3_rows()
        assert [r.l1_state_index for r in rows] == [115_922, 117_994, 118_004]

    def test_gas_usage_matches_paper(self):
        rows = table3_rows()
        assert rows[0].gas_usage_percent == pytest.approx(90.91, abs=0.01)
        assert rows[1].gas_usage_percent == pytest.approx(69.84, abs=0.01)
        assert rows[2].gas_usage_percent == pytest.approx(69.82, abs=0.01)

    def test_fees_match_paper(self):
        rows = table3_rows()
        assert rows[0].fee_gwei == pytest.approx(253, rel=0.01)
        assert rows[1].fee_gwei == pytest.approx(142_000, rel=0.01)
        assert rows[2].fee_gwei == pytest.approx(141_000, rel=0.01)

    def test_formatted_row_layout(self):
        row = table3_rows()[0].as_row()
        assert row[0] == "Mint"
        assert row[4] == "90.91%"
        assert row[5] == "253 Gwei"

    def test_kilofee_formatting(self):
        assert _format_fee(142_000) == "142k Gwei"
        assert _format_fee(253) == "253 Gwei"

    def test_record_hash_deterministic(self):
        a = record_for("mint", 1, 1)
        b = record_for("mint", 1, 1)
        assert a.tx_hash == b.tx_hash
        assert a.tx_hash.startswith("0x")
