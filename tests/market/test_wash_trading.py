"""Tests for the wash-trading detector."""

import pytest

from repro.errors import MarketError
from repro.market import WashTradeDetector
from repro.market.opensea import SaleRecord


def sale(token, seller, buyer, price=1.0, block=0):
    return SaleRecord(
        token_id=token, seller=seller, buyer=buyer,
        price_eth=price, block_number=block,
    )


@pytest.fixture
def detector():
    return WashTradeDetector(max_cycle_blocks=100)


class TestCycles:
    def test_round_trip_flagged(self, detector):
        sales = [
            sale(0, "a", "b", price=1.0, block=10),
            sale(0, "b", "a", price=1.2, block=20),
        ]
        cycles = detector.find_cycles(sales)
        assert len(cycles) == 1
        assert set(cycles[0].wallets) == {"a", "b"}
        assert cycles[0].volume_eth == pytest.approx(2.2)

    def test_three_hop_cycle_flagged(self, detector):
        sales = [
            sale(0, "a", "b", block=10),
            sale(0, "b", "c", block=20),
            sale(0, "c", "a", block=30),
        ]
        cycles = detector.find_cycles(sales)
        assert len(cycles) == 1
        assert set(cycles[0].wallets) == {"a", "b", "c"}

    def test_linear_resale_chain_clean(self, detector):
        sales = [
            sale(0, "a", "b", block=10),
            sale(0, "b", "c", block=20),
            sale(0, "c", "d", block=30),
        ]
        assert detector.find_cycles(sales) == []

    def test_slow_cycle_outside_window_clean(self, detector):
        sales = [
            sale(0, "a", "b", block=10),
            sale(0, "b", "a", block=500),  # window is 100 blocks
        ]
        assert detector.find_cycles(sales) == []

    def test_cycles_tracked_per_token(self, detector):
        sales = [
            sale(0, "a", "b", block=10),
            sale(1, "b", "a", block=20),  # different token: no cycle
        ]
        assert detector.find_cycles(sales) == []

    def test_invalid_window_rejected(self):
        with pytest.raises(MarketError):
            WashTradeDetector(max_cycle_blocks=0)


class TestClusters:
    def test_closed_cluster_flagged(self, detector):
        sales = [
            sale(0, "a", "b", price=5.0, block=1),
            sale(0, "b", "a", price=5.0, block=2),
            sale(1, "a", "b", price=5.0, block=3),
        ]
        clusters = detector.suspicious_clusters(sales)
        assert clusters == [{"a", "b"}]

    def test_open_trading_clean(self, detector):
        sales = [
            sale(0, "a", "b", price=1.0, block=1),
            sale(1, "c", "d", price=1.0, block=2),
        ]
        assert detector.suspicious_clusters(sales) == []

    def test_empty_log(self, detector):
        assert detector.suspicious_clusters([]) == []


class TestReport:
    def test_report_aggregates(self, detector):
        sales = [
            sale(0, "a", "b", price=1.0, block=10),
            sale(0, "b", "a", price=1.0, block=20),
            sale(1, "x", "y", price=3.0, block=30),
        ]
        report = detector.inspect(sales)
        assert report.total_volume_eth == pytest.approx(5.0)
        assert report.artificial_volume_eth == pytest.approx(2.0)
        assert report.artificial_fraction == pytest.approx(0.4)
        assert "a" in report.suspicious_wallets
        assert "x" not in report.suspicious_wallets

    def test_clean_log_report(self, detector):
        report = detector.inspect([sale(0, "a", "b", price=1.0, block=1)])
        assert report.cycles == ()
        assert report.artificial_fraction == 0.0

    def test_marketplace_integration(self, detector, pt_config):
        """Wash trade through the actual marketplace and catch it."""
        from repro.market import Marketplace
        from repro.tokens import LimitedEditionNFT

        contract = LimitedEditionNFT(pt_config)
        balances = {"washer-1": 10.0, "washer-2": 10.0}
        market = Marketplace(contract, balances)
        token, _ = market.mint("washer-1")
        for _ in range(2):
            market.list_token("washer-1", token, ask_price_eth=1.0)
            market.buy("washer-2", token)
            market.list_token("washer-2", token, ask_price_eth=1.0)
            market.buy("washer-1", token)
        report = detector.inspect(list(market.sales))
        assert report.cycles
        assert set(report.suspicious_wallets) >= {"washer-1", "washer-2"}
