"""Tests for the snapshot store."""

import pytest

from repro.config import SnapshotStudyConfig
from repro.errors import MarketError
from repro.market import (
    Chain,
    FrequencyTier,
    SnapshotStore,
    generate_study_collections,
)


@pytest.fixture
def store():
    config = SnapshotStudyConfig(collections_per_tier=2, seed=3)
    return SnapshotStore(generate_study_collections(config))


class TestIngestAndLookup:
    def test_store_size(self, store):
        assert len(store) == 12

    def test_lookup_by_contract(self, store):
        collection = next(iter(store))
        assert store.lookup(collection.address) is collection

    def test_lookup_unknown_raises(self, store):
        with pytest.raises(MarketError):
            store.lookup("0xunknown")

    def test_duplicate_ingest_raises(self, store, rng):
        collection = next(iter(store))
        with pytest.raises(MarketError):
            store.ingest(collection)


class TestQueries:
    def test_by_chain_partitions(self, store):
        optimism = store.by_chain(Chain.OPTIMISM)
        arbitrum = store.by_chain(Chain.ARBITRUM)
        assert len(optimism) + len(arbitrum) == len(store)
        assert all(c.chain is Chain.OPTIMISM for c in optimism)

    def test_by_tier_partitions(self, store):
        total = sum(len(store.by_tier(tier)) for tier in FrequencyTier)
        assert total == len(store)

    def test_snapshots_window(self, store):
        collection = next(iter(store))
        window = store.snapshots_of(collection.address, since=10, until=20)
        assert all(10 <= snap.timestamp <= 20 for snap in window)
        assert all(snap.chain is collection.chain for snap in window)

    def test_snapshots_full_range(self, store):
        collection = next(iter(store))
        snaps = store.snapshots_of(collection.address)
        assert len(snaps) == len(collection.price_history)

    def test_price_series(self, store):
        collection = next(iter(store))
        series = store.price_series(collection.address)
        assert series == [p.price_eth for p in collection.price_history]
