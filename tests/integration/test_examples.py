"""Smoke tests: every shipped example must run to completion.

Examples are the first thing a new user executes; these tests import
each example module and call its ``main()`` so a refactor that breaks
an example fails CI rather than the user's first five minutes.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = (
    "quickstart",
    "rollup_pipeline",
    "marketplace_study",
    "defense_demo",
    "attack_campaign",
    "timed_deployment",
    "market_replay_attack",
    "wash_trading_demo",
)


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_train_full_dqn_quick_mode(capsys):
    module = _load("train_full_dqn")
    module.main(quick=True)
    out = capsys.readouterr().out
    assert "profit" in out
