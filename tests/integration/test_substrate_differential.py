"""Differential testing: the two NFT substrates must agree.

The repo has two implementations of the limited-edition economics:

* :class:`repro.tokens.LimitedEditionNFT` — token-id level, used by the
  marketplace and honest pipeline;
* :class:`repro.rollup.L2State` (STRICT mode) — inventory-count level,
  used by the OVM and the RL environment.

For any strictly-valid operation sequence they must produce identical
prices, balances and per-user holdings counts.  Divergence would mean
the attack optimises against different economics than the chain settles.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NFTContractConfig
from repro.rollup import ExecutionMode, L2State, NFTTransaction, TxKind
from repro.tokens import LimitedEditionNFT

USERS = ("u0", "u1", "u2")


def _random_ops(rng, count):
    """Generate a random op list; feasibility is checked at apply time."""
    ops = []
    for _ in range(count):
        kind = rng.choice(["mint", "transfer", "burn"])
        actor = USERS[rng.integers(len(USERS))]
        other = USERS[rng.integers(len(USERS))]
        ops.append((kind, actor, other))
    return ops


class TestSubstrateAgreement:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_property_substrates_agree(self, seed):
        rng = np.random.default_rng(seed)
        config = NFTContractConfig(max_supply=8, initial_price_eth=0.1)

        contract = LimitedEditionNFT(config)
        contract_balances = {user: 5.0 for user in USERS}

        state = L2State(
            config,
            balances={user: 5.0 for user in USERS},
            mode=ExecutionMode.STRICT,
        )

        for kind, actor, other in _random_ops(rng, 25):
            if kind == "mint":
                tx = NFTTransaction(kind=TxKind.MINT, sender=actor)
                applied = state.apply(tx).executed
                if applied:
                    contract.mint(actor, contract_balances)
                else:
                    assert contract.check_mint(actor, contract_balances).value != "valid"
            elif kind == "transfer":
                if actor == other:
                    continue
                tx = NFTTransaction(
                    kind=TxKind.TRANSFER, sender=actor, recipient=other
                )
                applied = state.apply(tx).executed
                tokens = contract.tokens_of(actor)
                if applied:
                    assert tokens, "L2State transferred but contract has no token"
                    contract.transfer(actor, other, tokens[0], contract_balances)
                else:
                    can = bool(tokens) and contract.check_transfer(
                        actor, other, tokens[0], contract_balances
                    ).value == "valid"
                    assert not can
            else:  # burn
                tx = NFTTransaction(kind=TxKind.BURN, sender=actor)
                applied = state.apply(tx).executed
                tokens = contract.tokens_of(actor)
                if applied:
                    assert tokens
                    contract.burn(actor, tokens[0])
                else:
                    assert not tokens

            # Invariants after every step:
            assert contract.unit_price == pytest.approx(state.unit_price)
            assert contract.remaining_supply == state.remaining_supply
            for user in USERS:
                assert contract_balances[user] == pytest.approx(
                    state.balance(user)
                )
                assert len(contract.tokens_of(user)) == state.holdings(user)

    def test_case_study_on_token_level_contract(self, case_workload):
        """The case-study original order replays identically on the
        token-id substrate when token assignments are made explicit."""
        config = case_workload.pre_state.nft_config
        # IFU holds tokens 0-1, U1 holds 2-3, U13 holds 4.
        contract = LimitedEditionNFT(
            config, owners={0: "IFU", 1: "IFU", 2: "U1", 3: "U1", 4: "U13"}
        )
        balances = dict(case_workload.pre_state.balances)
        assert contract.unit_price == pytest.approx(0.4)

        contract.transfer("U1", "U2", 2, balances)          # TX1
        contract.mint("U19", balances)                       # TX2
        contract.transfer("IFU", "U11", 0, balances)         # TX3
        contract.transfer("U19", "U6", contract.tokens_of("U19")[0], balances)  # TX4
        contract.mint("IFU", balances)                       # TX5
        contract.transfer("U13", "U3", 4, balances)          # TX6
        contract.burn("U2", 2)                               # TX7
        contract.transfer("U1", "IFU", 3, balances)          # TX8

        ifu_wealth = balances["IFU"] + contract.holdings_value("IFU")
        assert ifu_wealth == pytest.approx(2.5)
        assert contract.unit_price == pytest.approx(0.5)
