"""Integration: a *state-corrupting* aggregator is caught and slashed.

The PAROLE attacker only reorders — invisible to fraud proofs.  This
suite exercises the contrast: an aggregator that lies about the
post-state root is challenged by verifiers, its batch reverts, and its
bond is slashed, completing the Section V-A protocol picture.
"""

import pytest

from repro.config import RollupConfig, WorkloadConfig
from repro.rollup import (
    Aggregator,
    BisectionGame,
    CorruptExecutor,
    RollupNode,
    Verifier,
)
from repro.rollup.aggregator import AggregationResult
from repro.workloads import generate_workload
import dataclasses


class StateCorruptingAggregator(Aggregator):
    """Executes honestly but claims a forged post-state root."""

    def process(self, pre_state, collected):
        result = super().process(pre_state, collected)
        forged_batch = dataclasses.replace(
            result.batch, post_state_root="0x" + "f" * 64
        )
        return AggregationResult(
            batch=forged_batch,
            trace=result.trace,
            original_order=result.original_order,
            executed_order=result.executed_order,
        )


@pytest.fixture
def node_setup():
    workload = generate_workload(
        WorkloadConfig(mempool_size=8, num_users=8, num_ifus=1, seed=21)
    )
    node = RollupNode(
        l2_state=workload.pre_state,
        config=RollupConfig(aggregator_mempool_size=8,
                            challenge_period_blocks=2),
    )
    for user in workload.users:
        node.fund_and_deposit(user, 1.0)
    return node, workload


class TestStateCorruptionCaught:
    def test_verifier_challenges_forged_root(self, node_setup):
        node, workload = node_setup
        node.add_aggregator(StateCorruptingAggregator("liar"))
        node.add_verifier(Verifier("watcher"))
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round()
        assert len(report.challenges) == 1
        verifier, batch_id, outcome = report.challenges[0]
        assert verifier == "watcher"
        assert outcome == "upheld"

    def test_liar_bond_slashed(self, node_setup):
        node, workload = node_setup
        node.add_aggregator(StateCorruptingAggregator("liar"))
        node.add_verifier(Verifier("watcher"))
        for tx in workload.transactions:
            node.submit(tx)
        node.run_round()
        assert node.contract.aggregator_bond("liar") == 0

    def test_reverted_batch_never_finalizes(self, node_setup):
        node, workload = node_setup
        node.add_aggregator(StateCorruptingAggregator("liar"))
        node.add_verifier(Verifier("watcher"))
        for tx in workload.transactions:
            node.submit(tx)
        node.run_round()
        node.advance_challenge_window()
        assert node.finalize_ready_batches() == []

    def test_bisection_localises_the_corruption(self, node_setup):
        """Refined dispute: bisection pins the exact mis-executed step."""
        _, workload = node_setup
        corrupt = CorruptExecutor(fault_step=3)
        commitment = corrupt.commitment(
            workload.pre_state, workload.transactions
        )
        game = BisectionGame(workload.pre_state)
        result = game.play(commitment)
        assert result.fraud_found
        assert result.divergent_step == 3
