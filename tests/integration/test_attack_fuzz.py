"""Fuzz the attack path: PAROLE must never execute infeasible orders.

For randomly generated workloads, any sequence the PAROLE module decides
to execute must (a) be a permutation of the collection, (b) keep every
originally-executable transaction executable, and (c) end with
consistent inventory — the guarantees the environment's reward shaping
is supposed to enforce end to end.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import AttackConfig, GenTranSeqConfig, WorkloadConfig
from repro.core import ParoleAttack
from repro.rollup import OVM
from repro.workloads import generate_workload

FAST = GenTranSeqConfig(episodes=2, steps_per_episode=12, seed=0)


class TestAttackNeverBreaksExecution:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        mempool_size=st.integers(min_value=4, max_value=14),
        num_ifus=st.integers(min_value=1, max_value=2),
    )
    def test_property_executed_sequence_is_feasible(
        self, seed, mempool_size, num_ifus
    ):
        workload = generate_workload(
            WorkloadConfig(
                mempool_size=mempool_size,
                num_users=max(6, num_ifus + 4),
                num_ifus=num_ifus,
                min_ifu_involvement=2,
                seed=seed,
            )
        )
        attack = ParoleAttack(
            config=AttackConfig(ifu_accounts=workload.ifus, gentranseq=FAST)
        )
        outcome = attack.run(workload.pre_state, workload.transactions)

        # (a) permutation
        assert sorted(tx.tx_hash for tx in outcome.executed_sequence) == sorted(
            tx.tx_hash for tx in workload.transactions
        )

        ovm = OVM()
        original = ovm.replay(workload.pre_state, workload.transactions)
        executed = ovm.replay(workload.pre_state, outcome.executed_sequence)

        # (b) nothing originally-executable becomes unexecutable
        assert executed.executed_count >= original.executed_count
        # (c) batch-end inventory consistency
        assert executed.consistent()
        # (d) the reported profit matches an independent replay
        if outcome.attacked:
            assert outcome.profit > 0

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_profit_claims_verified_by_replay(self, seed):
        workload = generate_workload(
            WorkloadConfig(
                mempool_size=8, num_users=6, num_ifus=1,
                min_ifu_involvement=3, seed=seed,
            )
        )
        attack = ParoleAttack(
            config=AttackConfig(ifu_accounts=workload.ifus, gentranseq=FAST)
        )
        outcome = attack.run(workload.pre_state, workload.transactions)
        ifu = workload.ifus[0]
        ovm = OVM()
        baseline = ovm.final_wealth(
            workload.pre_state, workload.transactions, ifu
        )
        achieved = ovm.final_wealth(
            workload.pre_state, outcome.executed_sequence, ifu
        )
        assert achieved - baseline == pytest.approx(
            outcome.per_ifu_profit[ifu], abs=1e-9
        )
        assert achieved >= baseline - 1e-9  # the attack never hurts the IFU
