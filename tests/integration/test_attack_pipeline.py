"""Integration tests: the full attack through the rollup pipeline."""

import pytest

from repro.config import (
    AttackConfig,
    GenTranSeqConfig,
    RollupConfig,
    WorkloadConfig,
)
from repro.core import ParoleAttack
from repro.rollup import (
    AdversarialAggregator,
    Aggregator,
    OVM,
    RollupNode,
    Verifier,
)
from repro.workloads import case_study_fixture, generate_workload


@pytest.fixture
def attack_setup():
    workload = generate_workload(
        WorkloadConfig(mempool_size=12, num_users=8, num_ifus=1,
                       min_ifu_involvement=4, seed=9)
    )
    attack = ParoleAttack(
        config=AttackConfig(
            ifu_accounts=workload.ifus,
            gentranseq=GenTranSeqConfig(episodes=8, steps_per_episode=40, seed=1),
        )
    )
    return workload, attack


class TestEndToEndAttack:
    def test_attack_survives_full_pipeline(self, attack_setup):
        """The paper's thesis as one test: an adversarial aggregator
        profits for the IFU, verifiers find nothing, the batch finalizes."""
        workload, attack = attack_setup
        node = RollupNode(
            l2_state=workload.pre_state.copy(),
            config=RollupConfig(
                aggregator_mempool_size=len(workload.transactions),
                challenge_period_blocks=2,
            ),
        )
        for user in workload.users:
            node.fund_and_deposit(user, 1.0)
        node.add_aggregator(
            AdversarialAggregator("evil", attack.as_reorderer())
        )
        node.add_verifier(Verifier("watcher"))
        for tx in workload.transactions:
            node.submit(tx)

        report = node.run_round()

        assert report.challenges == []          # invisible to fraud proofs
        node.advance_challenge_window()
        assert node.finalize_ready_batches()    # and it finalizes

    def test_attack_profit_measured_against_honest_order(self, attack_setup):
        workload, attack = attack_setup
        outcome = attack.run(workload.pre_state, workload.transactions)
        ifu = workload.ifus[0]
        ovm = OVM()
        honest = ovm.final_wealth(
            workload.pre_state, workload.transactions, ifu
        )
        attacked = ovm.final_wealth(
            workload.pre_state, outcome.executed_sequence, ifu
        )
        assert attacked - honest == pytest.approx(
            outcome.per_ifu_profit[ifu], abs=1e-9
        )

    def test_honest_and_adversarial_agree_when_no_opportunity(self):
        """Without IFU involvement the attacker behaves honestly."""
        workload = generate_workload(
            WorkloadConfig(mempool_size=8, num_users=6, num_ifus=1,
                           min_ifu_involvement=0, seed=13)
        )
        attack = ParoleAttack(
            config=AttackConfig(
                ifu_accounts=("ghost-user",),
                gentranseq=GenTranSeqConfig(episodes=2, steps_per_episode=10, seed=0),
            )
        )
        outcome = attack.run(workload.pre_state, workload.transactions)
        assert outcome.executed_sequence == workload.transactions
        assert outcome.profit == 0.0


class TestCaseStudyThroughPipeline:
    def test_case_study_attack_beats_case1_through_node(self):
        workload = case_study_fixture()
        attack = ParoleAttack(
            config=AttackConfig(
                ifu_accounts=workload.ifus,
                gentranseq=GenTranSeqConfig(
                    episodes=15, steps_per_episode=50, seed=3
                ),
            )
        )
        node = RollupNode(
            l2_state=workload.pre_state.copy(),
            config=RollupConfig(aggregator_mempool_size=8,
                                challenge_period_blocks=2),
        )
        for user in workload.users:
            node.fund_and_deposit(user, 1.0)
        node.add_aggregator(AdversarialAggregator("evil", attack.as_reorderer()))
        node.add_verifier(Verifier("watcher"))
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round()
        assert report.attacked
        assert attack.outcomes[-1].profit > 0
        assert report.challenges == []

    def test_two_aggregators_split_the_pool(self):
        workload = case_study_fixture()
        node = RollupNode(
            l2_state=workload.pre_state.copy(),
            config=RollupConfig(aggregator_mempool_size=4,
                                challenge_period_blocks=2),
        )
        for user in workload.users:
            node.fund_and_deposit(user, 1.0)
        node.add_aggregator(Aggregator("agg-0"))
        node.add_aggregator(Aggregator("agg-1"))
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round()
        assert len(report.batches) == 2
        assert len(report.batches[0]) == 4
        # The first aggregator takes the higher-fee prefix.
        first_fees = [tx.total_fee for tx in report.batches[0].transactions]
        second_fees = [tx.total_fee for tx in report.batches[1].transactions]
        assert min(first_fees) >= max(second_fees)
