"""Tests for seeded fault plans."""

import pytest

from repro.errors import FaultError
from repro.faults import FaultEvent, FaultKind, FaultPlan


class TestFaultEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(time=-1.0, kind=FaultKind.MEMPOOL_STALL)

    def test_partition_needs_both_endpoints(self):
        with pytest.raises(FaultError):
            FaultEvent(time=1.0, kind=FaultKind.PARTITION, target="a")

    def test_drop_burst_rate_bounded(self):
        with pytest.raises(FaultError):
            FaultEvent(time=1.0, kind=FaultKind.DROP_BURST, value=1.0)
        FaultEvent(time=1.0, kind=FaultKind.DROP_BURST, value=0.9)

    def test_commit_failure_needs_count(self):
        with pytest.raises(FaultError):
            FaultEvent(time=1.0, kind=FaultKind.COMMIT_FAILURE, value=0.0)

    def test_describe_mentions_kind_and_target(self):
        event = FaultEvent(
            time=2.5, kind=FaultKind.AGGREGATOR_CRASH, target="agg-0"
        )
        text = event.describe()
        assert "aggregator-crash" in text and "agg-0" in text


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(events=(
            FaultEvent(time=5.0, kind=FaultKind.MEMPOOL_RESUME),
            FaultEvent(time=1.0, kind=FaultKind.MEMPOOL_STALL),
        ))
        assert [e.time for e in plan.events] == [1.0, 5.0]

    def test_validate_accepts_paired_plan(self):
        plan = FaultPlan(events=(
            FaultEvent(time=1.0, kind=FaultKind.AGGREGATOR_CRASH, target="a"),
            FaultEvent(time=3.0, kind=FaultKind.AGGREGATOR_RESTART, target="a"),
        ))
        plan.validate()

    def test_validate_rejects_unrecovered_crash(self):
        plan = FaultPlan(events=(
            FaultEvent(time=1.0, kind=FaultKind.AGGREGATOR_CRASH, target="a"),
        ))
        with pytest.raises(FaultError):
            plan.validate()

    def test_validate_matches_recovery_target(self):
        plan = FaultPlan(events=(
            FaultEvent(time=1.0, kind=FaultKind.AGGREGATOR_CRASH, target="a"),
            FaultEvent(time=3.0, kind=FaultKind.AGGREGATOR_RESTART, target="b"),
        ))
        with pytest.raises(FaultError):
            plan.validate()

    def test_counts_by_kind(self):
        plan = FaultPlan(events=(
            FaultEvent(time=1.0, kind=FaultKind.MEMPOOL_STALL),
            FaultEvent(time=2.0, kind=FaultKind.MEMPOOL_RESUME),
            FaultEvent(time=3.0, kind=FaultKind.MEMPOOL_STALL),
            FaultEvent(time=4.0, kind=FaultKind.MEMPOOL_RESUME),
        ))
        assert plan.counts_by_kind() == {
            "mempool-stall": 2, "mempool-resume": 2,
        }


class TestRandomPlan:
    ARGS = dict(
        horizon=20.0,
        aggregators=("agg-0", "agg-1"),
        verifiers=("ver-0",),
        links=(("users", "mempool"),),
        crashes=3,
        partitions=2,
        commit_failures=2,
        drop_bursts=1,
        stalls=1,
    )

    def test_same_seed_same_plan(self):
        assert FaultPlan.random(seed=9, **self.ARGS) == FaultPlan.random(
            seed=9, **self.ARGS
        )

    def test_different_seed_different_plan(self):
        assert FaultPlan.random(seed=9, **self.ARGS) != FaultPlan.random(
            seed=10, **self.ARGS
        )

    def test_random_plan_is_always_recoverable(self):
        for seed in range(8):
            FaultPlan.random(seed=seed, **self.ARGS).validate()

    def test_all_events_inside_horizon(self):
        plan = FaultPlan.random(seed=4, **self.ARGS)
        assert all(0.0 <= e.time < self.ARGS["horizon"] for e in plan.events)

    def test_positive_horizon_required(self):
        with pytest.raises(FaultError):
            FaultPlan.random(seed=0, horizon=0.0)

    def test_empty_pools_yield_only_network_faults(self):
        plan = FaultPlan.random(
            seed=0, horizon=10.0, crashes=2, partitions=1,
            commit_failures=0, drop_bursts=1,
        )
        kinds = {e.kind for e in plan.events}
        assert FaultKind.AGGREGATOR_CRASH not in kinds
        assert FaultKind.PARTITION not in kinds  # no links given
        assert FaultKind.DROP_BURST in kinds
