"""End-to-end chaos harness tests: invariants and determinism."""

import dataclasses

import pytest

from repro.errors import InvariantViolationError
from repro.faults import (
    DEFAULT_MATRIX,
    ChaosHarness,
    ChaosScenario,
    FaultEvent,
    FaultKind,
    FaultPlan,
)

#: A small scenario that still exercises crash, revert and retry paths.
SMALL = ChaosScenario(
    name="small",
    seed=5,
    tx_count=18,
    rounds=8,
    crashes=2,
    partitions=1,
    commit_failures=2,
    drop_bursts=1,
    corrupt_every=2,
)


class TestInvariants:
    def test_small_scenario_invariants_hold(self):
        report = ChaosHarness(SMALL).run(strict=True)
        assert report.ok
        assert report.violations == ()
        assert len(report.rounds) == SMALL.rounds

    @pytest.mark.parametrize(
        "scenario", DEFAULT_MATRIX, ids=[s.name for s in DEFAULT_MATRIX]
    )
    def test_default_matrix_invariants_hold(self, scenario):
        assert ChaosHarness(scenario).run(strict=True).ok

    def test_no_transaction_silently_lost(self):
        report = ChaosHarness(SMALL).run()
        assert report.accepted_txs == report.included_txs + report.pending_txs

    def test_recovery_paths_actually_exercised(self):
        report = ChaosHarness(SMALL).run()
        assert report.fault_counts  # the plan fired
        assert sum(report.fault_counts.values()) == len(
            SMALL.resolve_plan(
                ["agg-0", "agg-1", "agg-2"], ["ver-0", "ver-1"]
            ).events
        )
        # The corrupt aggregator guarantees challenge -> revert traffic.
        assert report.challenge_total >= 1
        assert report.reverted_total >= 1

    def test_strict_raises_on_violation(self, monkeypatch):
        harness = ChaosHarness(SMALL)

        def broken_check(round_index):
            sweep = harness.checker.__class__.check(harness.checker, round_index)
            return dataclasses.replace(
                sweep, ok=False, violations=("synthetic violation",)
            )

        monkeypatch.setattr(harness.checker, "check", broken_check)
        with pytest.raises(InvariantViolationError):
            harness.run(strict=True)


class TestDeterminism:
    def test_same_seed_byte_identical_reports(self):
        first = ChaosHarness(SMALL).run().to_json()
        second = ChaosHarness(SMALL).run().to_json()
        assert first == second

    def test_different_seed_changes_report(self):
        other = dataclasses.replace(SMALL, seed=SMALL.seed + 1)
        assert ChaosHarness(SMALL).run().to_json() != (
            ChaosHarness(other).run().to_json()
        )

    def test_matrix_reports_deterministic(self):
        scenario = DEFAULT_MATRIX[0]
        assert (
            ChaosHarness(scenario).run().to_json()
            == ChaosHarness(scenario).run().to_json()
        )


class TestStallSurfacing:
    def test_stalled_rounds_are_explicit_and_lose_nothing(self):
        # Regression: a stalled mempool used to serve empty collections,
        # so rounds inside the outage looked identical to a drained pool
        # and nothing recorded that collection was unavailable.
        plan = FaultPlan(events=(
            FaultEvent(time=3.0, kind=FaultKind.MEMPOOL_STALL),
            FaultEvent(time=9.0, kind=FaultKind.MEMPOOL_RESUME),
        ))
        scenario = ChaosScenario(name="stall-window", seed=2, rounds=8, plan=plan)
        report = ChaosHarness(scenario).run(strict=True)
        stalled_rounds = [r for r in report.rounds if r.stalled]
        assert stalled_rounds, "outage rounds must be flagged, not silent"
        for record in stalled_rounds:
            assert record.committed_batch_ids == ()
            assert record.mempool_pending > 0
        # Collection resumes after the outage and nothing was lost.
        resumed = [r for r in report.rounds if r.time > 9.0]
        assert any(r.committed_batch_ids for r in resumed)
        assert report.accepted_txs == report.included_txs + report.pending_txs

    def test_stall_report_deterministic(self):
        scenario = ChaosScenario(
            name="stall-det", seed=7, rounds=8, stalls=1,
            crashes=0, partitions=0, commit_failures=0, drop_bursts=0,
        )
        assert (
            ChaosHarness(scenario).run().to_json()
            == ChaosHarness(scenario).run().to_json()
        )


class TestExplicitPlan:
    def test_hand_written_plan_overrides_knobs(self):
        plan = FaultPlan(events=(
            FaultEvent(time=3.0, kind=FaultKind.AGGREGATOR_CRASH, target="agg-0"),
            FaultEvent(time=9.0, kind=FaultKind.AGGREGATOR_RESTART, target="agg-0"),
        ))
        scenario = ChaosScenario(name="explicit", seed=1, rounds=8, plan=plan)
        report = ChaosHarness(scenario).run(strict=True)
        assert report.fault_counts == {
            "aggregator-crash": 1, "aggregator-restart": 1,
        }
        assert report.recovery_latencies == (6.0,)
        # Rounds inside the outage skipped the dead aggregator.
        assert any(
            "agg-0" in record.skipped_aggregators for record in report.rounds
        )

    def test_report_render_mentions_outcome(self):
        report = ChaosHarness(SMALL).run()
        text = report.render()
        assert "small" in text and "OK" in text
