"""Tests for the fault injector against live components."""

import numpy as np
import pytest

from repro.errors import FaultError
from repro.faults import ChaosTargets, FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.rollup import Aggregator, Verifier
from repro.rollup.mempool import BedrockMempool
from repro.sim import EventQueue, LatencyModel, SimNetwork


@pytest.fixture
def rig():
    queue = EventQueue()
    network = SimNetwork(
        queue, latency=LatencyModel(base=0.01, jitter=0.0),
        rng=np.random.default_rng(0),
    )
    network.register("a", lambda m: None)
    network.register("b", lambda m: None)
    mempool = BedrockMempool()
    aggregator = Aggregator("agg-0")
    verifier = Verifier("ver-0")
    injected = []
    targets = ChaosTargets(
        network=network,
        mempool=mempool,
        aggregators={"agg-0": aggregator},
        verifiers={"ver-0": verifier},
        inject_commit_failures=lambda count, agg: injected.append((count, agg)),
    )
    injector = FaultInjector(queue, targets)
    return queue, injector, targets, injected


class TestInstall:
    def test_past_events_rejected(self, rig):
        queue, injector, _, _ = rig
        queue.schedule(5.0, lambda: None)
        queue.run()
        plan = FaultPlan(events=(
            FaultEvent(time=1.0, kind=FaultKind.MEMPOOL_STALL),
        ))
        with pytest.raises(FaultError):
            injector.install(plan)

    def test_events_fire_at_plan_times(self, rig):
        queue, injector, targets, _ = rig
        injector.install(FaultPlan(events=(
            FaultEvent(time=1.0, kind=FaultKind.AGGREGATOR_CRASH, target="agg-0"),
            FaultEvent(time=4.0, kind=FaultKind.AGGREGATOR_RESTART, target="agg-0"),
        )))
        queue.run(until=2.0)
        assert not targets.aggregators["agg-0"].alive
        queue.run()
        assert targets.aggregators["agg-0"].alive
        assert [t for t, _ in injector.applied] == [1.0, 4.0]


class TestApply:
    def test_crash_restart_records_recovery_latency(self, rig):
        queue, injector, _, _ = rig
        injector.install(FaultPlan(events=(
            FaultEvent(time=1.0, kind=FaultKind.VERIFIER_CRASH, target="ver-0"),
            FaultEvent(time=3.5, kind=FaultKind.VERIFIER_RESTART, target="ver-0"),
        )))
        queue.run()
        assert len(injector.recoveries) == 1
        record = injector.recoveries[0]
        assert record.kind == "verifier-crash"
        assert record.latency == pytest.approx(2.5)

    def test_partition_and_heal_toggle_link(self, rig):
        queue, injector, targets, _ = rig
        injector.install(FaultPlan(events=(
            FaultEvent(time=1.0, kind=FaultKind.PARTITION, target="a", peer="b"),
            FaultEvent(time=2.0, kind=FaultKind.HEAL, target="a", peer="b"),
        )))
        queue.run(until=1.5)
        assert not targets.network.send("a", "b", "ping")
        queue.run()
        assert targets.network.send("a", "b", "ping")

    def test_drop_burst_restores_previous_rate(self, rig):
        queue, injector, targets, _ = rig
        targets.network.set_drop_rate(0.05)
        injector.install(FaultPlan(events=(
            FaultEvent(time=1.0, kind=FaultKind.DROP_BURST, value=0.6),
            FaultEvent(time=2.0, kind=FaultKind.DROP_RESTORE),
        )))
        queue.run(until=1.5)
        assert targets.network.drop_rate == 0.6
        queue.run()
        assert targets.network.drop_rate == 0.05

    def test_stall_and_resume_mempool(self, rig):
        queue, injector, targets, _ = rig
        injector.install(FaultPlan(events=(
            FaultEvent(time=1.0, kind=FaultKind.MEMPOOL_STALL),
            FaultEvent(time=2.0, kind=FaultKind.MEMPOOL_RESUME),
        )))
        queue.run(until=1.5)
        assert targets.mempool.stalled
        queue.run()
        assert not targets.mempool.stalled

    def test_commit_failure_reaches_hook(self, rig):
        queue, injector, _, injected = rig
        injector.install(FaultPlan(events=(
            FaultEvent(
                time=1.0, kind=FaultKind.COMMIT_FAILURE,
                target="agg-0", value=2.0,
            ),
        )))
        queue.run()
        assert injected == [(2, "agg-0")]

    def test_unknown_target_raises(self, rig):
        _, injector, _, _ = rig
        with pytest.raises(FaultError):
            injector.apply(
                FaultEvent(time=0.0, kind=FaultKind.AGGREGATOR_CRASH,
                           target="ghost")
            )

    def test_counts_by_kind_tallies_applied(self, rig):
        queue, injector, _, _ = rig
        injector.install(FaultPlan(events=(
            FaultEvent(time=1.0, kind=FaultKind.MEMPOOL_STALL),
            FaultEvent(time=2.0, kind=FaultKind.MEMPOOL_RESUME),
        )))
        queue.run()
        assert injector.counts_by_kind() == {
            "mempool-stall": 1, "mempool-resume": 1,
        }


class TestMissingHandles:
    def test_missing_network_raises(self):
        queue = EventQueue()
        injector = FaultInjector(queue, ChaosTargets())
        with pytest.raises(FaultError):
            injector.apply(
                FaultEvent(time=0.0, kind=FaultKind.DROP_BURST, value=0.5)
            )

    def test_missing_commit_hook_raises(self):
        injector = FaultInjector(EventQueue(), ChaosTargets())
        with pytest.raises(FaultError):
            injector.apply(
                FaultEvent(time=0.0, kind=FaultKind.COMMIT_FAILURE, value=1.0)
            )
