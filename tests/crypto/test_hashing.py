"""Tests for canonical hashing."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import hash_bytes, hash_hex, hash_pair, hash_value
from repro.errors import CryptoError


class TestHashBytes:
    def test_known_digest_length(self):
        assert len(hash_bytes(b"abc")) == 32

    def test_hex_digest_length(self):
        assert len(hash_hex(b"abc")) == 64

    def test_hex_matches_bytes(self):
        assert hash_bytes(b"xyz").hex() == hash_hex(b"xyz")

    def test_empty_input(self):
        assert hash_hex(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )


class TestHashValue:
    def test_deterministic(self):
        assert hash_value([1, "a", 2.5]) == hash_value([1, "a", 2.5])

    def test_type_tags_distinguish_int_and_str(self):
        assert hash_value(1) != hash_value("1")

    def test_bool_is_not_int(self):
        assert hash_value(True) != hash_value(1)

    def test_false_is_not_zero(self):
        assert hash_value(False) != hash_value(0)

    def test_none_supported(self):
        assert hash_value(None) != hash_value("")

    def test_float_and_int_distinct(self):
        assert hash_value(1.0) != hash_value(1)

    def test_bytes_supported(self):
        assert hash_value(b"raw") != hash_value("raw")

    def test_list_and_tuple_equivalent(self):
        assert hash_value([1, 2]) == hash_value((1, 2))

    def test_nesting_changes_digest(self):
        assert hash_value([1, [2, 3]]) != hash_value([1, 2, 3])

    def test_list_order_matters(self):
        assert hash_value([1, 2]) != hash_value([2, 1])

    def test_dict_key_order_irrelevant(self):
        assert hash_value({"a": 1, "b": 2}) == hash_value({"b": 2, "a": 1})

    def test_dict_differs_from_item_list(self):
        assert hash_value({"a": 1}) != hash_value([["a", 1]])

    def test_unhashable_type_raises(self):
        with pytest.raises(CryptoError):
            hash_value(object())

    def test_string_length_prefix_prevents_concat_collision(self):
        assert hash_value(["ab", "c"]) != hash_value(["a", "bc"])

    @given(st.lists(st.integers(), max_size=20))
    def test_property_determinism(self, values):
        assert hash_value(values) == hash_value(list(values))

    @given(
        st.lists(st.integers(), min_size=1, max_size=10),
        st.lists(st.integers(), min_size=1, max_size=10),
    )
    def test_property_distinct_lists_distinct_digests(self, left, right):
        if left != right:
            assert hash_value(left) != hash_value(right)


class TestHashPair:
    def test_order_matters(self):
        a, b = hash_value("a"), hash_value("b")
        assert hash_pair(a, b) != hash_pair(b, a)

    def test_digest_is_hex(self):
        digest = hash_pair(hash_value("x"), hash_value("y"))
        assert len(digest) == 64
        int(digest, 16)  # parses as hex
