"""Tests for the Merkle state trie."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import MerkleTrie
from repro.crypto.trie import EMPTY_TRIE_DIGEST
from repro.errors import CryptoError


@pytest.fixture
def trie():
    built = MerkleTrie()
    built.put("alice", 100)
    built.put("bob", 50)
    built.put("carol", 7)
    return built


class TestRoots:
    def test_empty_root_fixed(self):
        assert MerkleTrie().root == EMPTY_TRIE_DIGEST

    def test_root_insertion_order_free(self):
        a = MerkleTrie()
        a.put("x", 1)
        a.put("y", 2)
        b = MerkleTrie()
        b.put("y", 2)
        b.put("x", 1)
        assert a.root == b.root

    def test_root_changes_with_value(self, trie):
        before = trie.root
        trie.put("alice", 101)
        assert trie.root != before

    def test_root_changes_with_new_key(self, trie):
        before = trie.root
        trie.put("dave", 1)
        assert trie.root != before

    def test_update_is_idempotent(self, trie):
        trie.put("alice", 100)
        first = trie.root
        trie.put("alice", 100)
        assert trie.root == first

    def test_from_items_matches_puts(self, trie):
        rebuilt = MerkleTrie.from_items({"alice": 100, "bob": 50, "carol": 7})
        assert rebuilt.root == trie.root


class TestAccess:
    def test_get(self, trie):
        assert trie.get("alice") == 100
        assert trie.get("nobody") is None
        assert trie.get("nobody", -1) == -1

    def test_contains_and_len(self, trie):
        assert "bob" in trie
        assert "nobody" not in trie
        assert len(trie) == 3

    def test_iter_items(self, trie):
        assert dict(iter(trie)) == {"alice": 100, "bob": 50, "carol": 7}

    def test_structured_keys(self):
        trie = MerkleTrie()
        trie.put(("account", "alice"), (1.5, 2))
        assert trie.get(("account", "alice")) == (1.5, 2)


class TestDelete:
    def test_delete_restores_prior_root(self):
        base = MerkleTrie()
        base.put("x", 1)
        with_extra = MerkleTrie()
        with_extra.put("x", 1)
        with_extra.put("y", 2)
        with_extra.delete("y")
        assert with_extra.root == base.root

    def test_delete_missing_raises(self, trie):
        with pytest.raises(CryptoError):
            trie.delete("nobody")


class TestProofs:
    def test_proof_verifies(self, trie):
        for key in ("alice", "bob", "carol"):
            proof = trie.prove(key)
            assert proof.verify(trie.root)

    def test_proof_fails_on_wrong_root(self, trie):
        proof = trie.prove("alice")
        other = MerkleTrie.from_items({"alice": 100, "bob": 51, "carol": 7})
        assert not proof.verify(other.root)

    def test_tampered_value_fails(self, trie):
        from dataclasses import replace
        proof = replace(trie.prove("alice"), value=999)
        assert not proof.verify(trie.root)

    def test_proof_for_missing_key_raises(self, trie):
        with pytest.raises(CryptoError):
            trie.prove("nobody")

    @settings(max_examples=20, deadline=None)
    @given(st.dictionaries(st.text(max_size=8), st.integers(), min_size=1,
                           max_size=12), st.data())
    def test_property_roundtrip(self, items, data):
        trie = MerkleTrie.from_items(items)
        key = data.draw(st.sampled_from(sorted(items)))
        assert trie.prove(key).verify(trie.root)


class TestAccountStateRoot:
    def test_account_root_stable(self, basic_state):
        from repro.rollup.fraud_proof import account_state_root
        assert account_state_root(basic_state) == account_state_root(
            basic_state.copy()
        )

    def test_account_proof_verifies(self, basic_state):
        from repro.rollup.fraud_proof import account_state_root, prove_account
        proof = prove_account(basic_state, "alice")
        assert proof.verify(account_state_root(basic_state))
        assert proof.value == (basic_state.balance("alice"), 1)

    def test_single_account_fraud_detectable(self, basic_state):
        """A verifier can dispute one account's balance against the root
        without replaying anything else."""
        from repro.rollup.fraud_proof import account_state_root, prove_account
        honest_root = account_state_root(basic_state)
        lied = basic_state.copy()
        lied.balances["alice"] += 1.0
        forged_proof = prove_account(lied, "alice")
        assert not forged_proof.verify(honest_root)
