"""Tests for the Merkle tree and inclusion proofs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import MerkleTree, verify_proof
from repro.crypto.merkle import EMPTY_ROOT
from repro.errors import CryptoError


class TestMerkleRoot:
    def test_empty_tree_has_fixed_root(self):
        assert MerkleTree([]).root == EMPTY_ROOT

    def test_single_leaf(self):
        tree = MerkleTree(["only"])
        assert tree.root == tree.leaf_digests[0]

    def test_root_deterministic(self):
        assert MerkleTree([1, 2, 3]).root == MerkleTree([1, 2, 3]).root

    def test_root_depends_on_order(self):
        assert MerkleTree([1, 2]).root != MerkleTree([2, 1]).root

    def test_root_depends_on_content(self):
        assert MerkleTree([1, 2]).root != MerkleTree([1, 3]).root

    def test_odd_leaf_count_well_defined(self):
        tree = MerkleTree(["a", "b", "c"])
        assert len(tree) == 3
        assert len(tree.root) == 64

    def test_duplicate_final_leaf_differs_from_explicit_duplicate(self):
        # [a, b, c] pads c; [a, b, c, c] is the same shape by construction.
        padded = MerkleTree(["a", "b", "c"])
        explicit = MerkleTree(["a", "b", "c", "c"])
        assert padded.root == explicit.root

    def test_len_reports_original_leaves(self):
        assert len(MerkleTree(["a", "b", "c"])) == 3

    def test_structured_leaves(self):
        tree = MerkleTree([["balance", "alice", 5], {"k": 1}])
        assert len(tree.root) == 64


class TestMerkleProof:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 13])
    def test_all_indices_verify(self, size):
        leaves = [f"leaf-{i}" for i in range(size)]
        tree = MerkleTree(leaves)
        for index in range(size):
            proof = tree.proof(index)
            assert verify_proof(tree.root, proof)

    def test_proof_fails_against_wrong_root(self):
        tree = MerkleTree(["a", "b", "c", "d"])
        other = MerkleTree(["a", "b", "c", "e"])
        proof = tree.proof(1)
        assert not verify_proof(other.root, proof)

    def test_tampered_leaf_fails(self):
        tree = MerkleTree(["a", "b", "c", "d"])
        proof = tree.proof(0)
        from dataclasses import replace
        from repro.crypto import hash_value
        forged = replace(proof, leaf=hash_value("evil"))
        assert not verify_proof(tree.root, forged)

    def test_out_of_range_index_raises(self):
        tree = MerkleTree(["a", "b"])
        with pytest.raises(CryptoError):
            tree.proof(2)
        with pytest.raises(CryptoError):
            tree.proof(-1)

    def test_proof_records_index(self):
        tree = MerkleTree(["a", "b", "c"])
        assert tree.proof(2).index == 2

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.text(max_size=8), min_size=1, max_size=16), st.data())
    def test_property_roundtrip(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        assert verify_proof(tree.root, tree.proof(index))
