"""Tests for simulated key pairs and addresses."""

import numpy as np

from repro.crypto import derive_address, generate_keypair


class TestDeriveAddress:
    def test_prefix_and_length(self):
        address = derive_address(b"\x01" * 32)
        assert address.startswith("0x")
        assert len(address) == 42

    def test_deterministic(self):
        assert derive_address(b"k" * 32) == derive_address(b"k" * 32)

    def test_distinct_keys_distinct_addresses(self):
        assert derive_address(b"a" * 32) != derive_address(b"b" * 32)


class TestKeyPair:
    def test_generate_is_seed_deterministic(self):
        a = generate_keypair(np.random.default_rng(7))
        b = generate_keypair(np.random.default_rng(7))
        assert a.address == b.address

    def test_generate_differs_across_seeds(self):
        a = generate_keypair(np.random.default_rng(1))
        b = generate_keypair(np.random.default_rng(2))
        assert a.address != b.address

    def test_sign_verify_roundtrip(self):
        pair = generate_keypair(np.random.default_rng(3))
        signature = pair.sign(b"message")
        assert pair.verify(b"message", signature)

    def test_verify_rejects_tampered_message(self):
        pair = generate_keypair(np.random.default_rng(3))
        signature = pair.sign(b"message")
        assert not pair.verify(b"other", signature)

    def test_verify_rejects_foreign_signature(self):
        signer = generate_keypair(np.random.default_rng(4))
        verifier = generate_keypair(np.random.default_rng(5))
        assert not verifier.verify(b"m", signer.sign(b"m"))
