"""Tests for the Section VIII mempool guard."""

import pytest

from repro.config import DefenseConfig, GenTranSeqConfig
from repro.defense import MempoolGuard
from repro.rollup import NFTTransaction, TxKind
from repro.workloads.scenarios import IFU


@pytest.fixture
def guard():
    return MempoolGuard(
        config=DefenseConfig(profit_threshold_eth=0.02, fee_scaled_threshold=False),
        probe_config=GenTranSeqConfig(episodes=8, steps_per_episode=40, seed=0),
    )


class TestThreshold:
    def test_flat_threshold(self, guard, case_workload):
        assert guard.threshold_for(case_workload.transactions) == 0.02

    def test_fee_scaled_threshold_grows_with_priority(self, case_workload):
        guard = MempoolGuard(
            config=DefenseConfig(profit_threshold_eth=0.02,
                                 fee_scaled_threshold=True)
        )
        threshold = guard.threshold_for(case_workload.transactions)
        assert threshold > 0.02

    def test_empty_batch_gets_base_threshold(self):
        guard = MempoolGuard(
            config=DefenseConfig(profit_threshold_eth=0.05,
                                 fee_scaled_threshold=True)
        )
        assert guard.threshold_for(()) == 0.05


class TestInvolvedUsers:
    def test_multi_involvement_only(self, guard, case_workload):
        involved = guard.involved_users(case_workload.transactions)
        assert IFU in involved   # 3 transactions
        assert "U1" in involved  # 2 transactions
        assert "U11" not in involved  # only 1

    def test_burn_counts_sender(self, guard):
        txs = (
            NFTTransaction(kind=TxKind.BURN, sender="x", nonce=0),
            NFTTransaction(kind=TxKind.MINT, sender="x", nonce=1),
        )
        assert guard.involved_users(txs) == ("x",)


class TestInspection:
    def test_case_study_flagged(self, guard, case_workload):
        report = guard.inspect(case_workload.pre_state, case_workload.transactions)
        assert report.flagged
        assert report.worst_case_profit_eth > 0.02
        assert report.worst_case_user is not None
        assert report.margin_eth > 0

    def test_unexploitable_batch_not_flagged(self, guard, case_workload):
        txs = (
            NFTTransaction(kind=TxKind.TRANSFER, sender="U1", recipient="U2", nonce=0),
            NFTTransaction(kind=TxKind.TRANSFER, sender="U13", recipient="U3", nonce=1),
        )
        report = guard.inspect(case_workload.pre_state, txs)
        assert not report.flagged
        assert report.worst_case_profit_eth == 0.0

    def test_per_user_profit_reported(self, guard, case_workload):
        report = guard.inspect(case_workload.pre_state, case_workload.transactions)
        assert report.worst_case_user in report.per_user_profit
        assert report.per_user_profit[report.worst_case_user] == pytest.approx(
            report.worst_case_profit_eth
        )

    def test_high_threshold_suppresses_flag(self, case_workload):
        guard = MempoolGuard(
            config=DefenseConfig(profit_threshold_eth=100.0,
                                 fee_scaled_threshold=False),
            probe_config=GenTranSeqConfig(episodes=4, steps_per_episode=20, seed=0),
        )
        report = guard.inspect(case_workload.pre_state, case_workload.transactions)
        assert not report.flagged
