"""Tests for minimal transaction demotion."""

import pytest

from repro.config import DefenseConfig, GenTranSeqConfig
from repro.defense import MempoolGuard, plan_demotion


@pytest.fixture
def guard():
    return MempoolGuard(
        config=DefenseConfig(profit_threshold_eth=0.02, fee_scaled_threshold=False),
        probe_config=GenTranSeqConfig(episodes=6, steps_per_episode=30, seed=0),
    )


class TestDemotion:
    def test_demotion_resolves_case_study(self, guard, case_workload):
        plan = plan_demotion(
            guard, case_workload.pre_state, case_workload.transactions
        )
        assert plan.initial_report.flagged
        assert plan.resolved
        assert plan.demoted_count >= 1

    def test_kept_plus_demoted_is_original(self, guard, case_workload):
        plan = plan_demotion(
            guard, case_workload.pre_state, case_workload.transactions
        )
        recombined = sorted(
            tx.tx_hash for tx in plan.kept + plan.demoted
        )
        assert recombined == sorted(
            tx.tx_hash for tx in case_workload.transactions
        )

    def test_residual_below_threshold(self, guard, case_workload):
        plan = plan_demotion(
            guard, case_workload.pre_state, case_workload.transactions
        )
        if plan.resolved:
            assert (
                plan.final_report.worst_case_profit_eth
                <= plan.final_report.threshold_eth
            )

    def test_unflagged_batch_untouched(self, guard, case_workload):
        from repro.rollup import NFTTransaction, TxKind
        txs = (
            NFTTransaction(kind=TxKind.TRANSFER, sender="U1", recipient="U2", nonce=0),
            NFTTransaction(kind=TxKind.TRANSFER, sender="U13", recipient="U3", nonce=1),
        )
        plan = plan_demotion(guard, case_workload.pre_state, txs)
        assert plan.demoted == ()
        assert plan.kept == txs
        assert plan.rounds == 0

    def test_max_demotions_respected(self, guard, case_workload):
        plan = plan_demotion(
            guard, case_workload.pre_state, case_workload.transactions,
            max_demotions=1,
        )
        assert plan.demoted_count <= 1
