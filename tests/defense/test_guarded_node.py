"""Integration tests: the guard inside the rollup pipeline."""

import pytest

from repro.config import (
    AttackConfig,
    DefenseConfig,
    GenTranSeqConfig,
    RollupConfig,
    WorkloadConfig,
)
from repro.core import ParoleAttack
from repro.defense import GuardedRollupNode
from repro.rollup import AdversarialAggregator, Aggregator, Verifier
from repro.workloads import generate_workload

PROBE = GenTranSeqConfig(episodes=6, steps_per_episode=30, seed=0)


@pytest.fixture
def setup():
    workload = generate_workload(
        WorkloadConfig(mempool_size=10, num_users=8, num_ifus=1,
                       min_ifu_involvement=4, seed=9)
    )
    node = GuardedRollupNode(
        l2_state=workload.pre_state.copy(),
        config=RollupConfig(aggregator_mempool_size=10,
                            challenge_period_blocks=2),
        defense_config=DefenseConfig(profit_threshold_eth=0.02,
                                     fee_scaled_threshold=False),
        probe_config=PROBE,
    )
    for user in workload.users:
        node.fund_and_deposit(user, 1.0)
    return node, workload


class TestGuardedRound:
    def test_guard_demotes_and_requeues(self, setup):
        node, workload = setup
        node.add_aggregator(Aggregator("agg-0"))
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round()
        assert report.flagged_batches >= 1
        assert report.total_demoted >= 1
        # Demoted transactions went back into the mempool.
        assert len(node.mempool) == report.total_demoted

    def test_attack_profit_bounded_by_threshold(self, setup):
        """The attacker acting on the sanitised batch cannot extract more
        than the configured threshold."""
        node, workload = setup
        attack = ParoleAttack(
            config=AttackConfig(ifu_accounts=workload.ifus, gentranseq=PROBE)
        )
        node.add_aggregator(
            AdversarialAggregator("evil", attack.as_reorderer())
        )
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round()
        plan = report.plans[0]
        assert plan.resolved
        assert attack.total_profit() <= plan.final_report.threshold_eth + 1e-9

    def test_undefended_attack_exceeds_threshold(self, setup):
        """Sanity contrast: without the guard, the same attacker exceeds
        the threshold on the same workload."""
        _, workload = setup
        attack = ParoleAttack(
            config=AttackConfig(ifu_accounts=workload.ifus, gentranseq=PROBE)
        )
        outcome = attack.run(workload.pre_state, workload.transactions)
        assert outcome.profit > 0.02

    def test_batches_still_verify(self, setup):
        node, workload = setup
        node.add_aggregator(Aggregator("agg-0"))
        node.add_verifier(Verifier("watcher"))
        for tx in workload.transactions:
            node.submit(tx)
        report = node.run_round()
        assert report.challenges == []

    def test_demoted_transactions_processable_next_round(self, setup):
        node, workload = setup
        node.add_aggregator(Aggregator("agg-0"))
        for tx in workload.transactions:
            node.submit(tx)
        first = node.run_round()
        if first.total_demoted:
            second = node.run_round()
            total_included = sum(len(b) for b in first.batches) + sum(
                len(b) for b in second.batches
            )
            # Everything is eventually included (possibly re-demoted txs
            # remain, but the pipeline keeps making progress).
            assert total_included >= len(workload.transactions) - len(
                node.mempool
            )
