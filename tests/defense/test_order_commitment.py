"""Tests for the order-commitment protocol fix."""

import pytest

from repro.defense import (
    OrderCheckingVerifier,
    commit_with_order,
    order_commitment,
)
from repro.rollup.transaction import sort_by_fee
from repro.workloads import CASE3_ORDER


@pytest.fixture
def verifier():
    return OrderCheckingVerifier("order-watcher")


class TestCommitment:
    def test_commitment_canonical_over_collection_order(self, case_workload):
        shuffled = tuple(reversed(case_workload.transactions))
        assert order_commitment(case_workload.transactions) == order_commitment(
            shuffled
        )

    def test_commitment_differs_for_different_sets(self, case_workload):
        assert order_commitment(case_workload.transactions) != order_commitment(
            case_workload.transactions[:5]
        )

    def test_honest_batch_respects_order(self, case_workload):
        committed = commit_with_order(
            "agg", case_workload.pre_state, case_workload.transactions
        )
        assert committed.order_respected()

    def test_reordered_batch_violates_order(self, case_workload):
        attacked = [case_workload.transactions[i] for i in CASE3_ORDER]
        committed = commit_with_order(
            "agg", case_workload.pre_state, case_workload.transactions,
            executed_order=attacked,
        )
        assert not committed.order_respected()


class TestOrderCheckingVerifier:
    def test_honest_batch_unchallenged(self, case_workload, verifier):
        committed = commit_with_order(
            "agg", case_workload.pre_state, case_workload.transactions
        )
        report = verifier.inspect_committed(committed, case_workload.pre_state)
        assert not report.should_challenge
        assert report.order_respected

    def test_parole_attack_now_caught(self, case_workload, verifier):
        """Under order commitments, the PAROLE reordering that survives
        plain fraud proofs becomes challengeable."""
        attacked = [case_workload.transactions[i] for i in CASE3_ORDER]
        committed = commit_with_order(
            "agg", case_workload.pre_state, case_workload.transactions,
            executed_order=attacked,
        )
        report = verifier.inspect_committed(committed, case_workload.pre_state)
        # Execution itself is honest (no state fraud)...
        assert not report.execution.should_challenge
        # ...but the ordering violation triggers the challenge.
        assert not report.order_respected
        assert report.should_challenge

    def test_dqn_found_order_also_caught(self, case_workload, verifier):
        """The attack's actual output, not just the paper's hand-made
        order, is caught."""
        from repro.config import AttackConfig, GenTranSeqConfig
        from repro.core import ParoleAttack

        attack = ParoleAttack(
            config=AttackConfig(
                ifu_accounts=case_workload.ifus,
                gentranseq=GenTranSeqConfig(
                    episodes=8, steps_per_episode=30, seed=3
                ),
            )
        )
        outcome = attack.run(case_workload.pre_state, case_workload.transactions)
        assert outcome.attacked  # the attack fires...
        committed = commit_with_order(
            "agg", case_workload.pre_state, case_workload.transactions,
            executed_order=outcome.executed_sequence,
        )
        report = verifier.inspect_committed(committed, case_workload.pre_state)
        assert report.should_challenge  # ...and is caught.

    def test_fee_tied_orders_canonicalised(self, case_workload):
        """Executing the canonical sort of the collection always passes,
        even if the collection arrived shuffled."""
        shuffled = tuple(reversed(case_workload.transactions))
        committed = commit_with_order(
            "agg", case_workload.pre_state, shuffled,
            executed_order=sort_by_fee(shuffled),
        )
        assert committed.order_respected()
