"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for name in ("case-studies", "attack", "table3", "fig6", "fig7",
                     "fig8", "fig9", "fig10", "fig11", "defense",
                     "campaign", "bisect", "run-all", "stream"):
            args = parser.parse_args([name] if name != "attack" else ["attack"])
            assert hasattr(args, "handler")

    def test_attack_flags(self):
        args = build_parser().parse_args(
            ["attack", "--mempool", "7", "--ifus", "2", "--seed", "3"]
        )
        assert args.mempool == 7
        assert args.ifus == 2
        assert args.seed == 3


class TestExecution:
    def test_case_studies_output(self, capsys):
        assert main(["case-studies"]) == 0
        out = capsys.readouterr().out
        assert "case1" in out and "2.5000" in out

    def test_table3_output(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "90.91%" in out

    def test_fig10_output(self, capsys):
        assert main(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "arbitrum" in out

    def test_bisect_output(self, capsys):
        assert main(["bisect", "--fault-step", "2"]) == 0
        out = capsys.readouterr().out
        assert "fraud found = False" in out
        assert "localised to step 2" in out

    def test_run_all_subset(self, capsys, tmp_path, monkeypatch):
        out_dir = tmp_path / "artifacts"
        assert main(["run-all", "--out", str(out_dir),
                     "--only", "table3"]) == 0
        printed = capsys.readouterr().out
        assert "table3" in printed
        assert (out_dir / "table3.txt").exists()
        assert (out_dir / "REPORT.md").exists()

    def test_campaign_parser(self):
        args = build_parser().parse_args(
            ["campaign", "--rounds", "2", "--mempool", "8"]
        )
        assert args.rounds == 2
        assert args.mempool == 8

    def test_stream_parser(self):
        args = build_parser().parse_args(
            ["stream", "--duration-batches", "5", "--lanes", "1",
             "--shards", "2", "--jobs", "2"]
        )
        assert args.duration_batches == 5
        assert args.lanes == 1
        assert args.shards == 2
        assert args.jobs == 2

    def test_stream_json_output(self, capsys):
        assert main(["stream", "--duration-batches", "2", "--lanes", "1",
                     "--batch-size", "4", "--submit-per-batch", "5",
                     "--max-swaps", "3", "--json"]) == 0
        out = capsys.readouterr().out
        assert '"violations": []' in out
        assert '"order_digest"' in out
