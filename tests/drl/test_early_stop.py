"""Tests for early stopping in the training loop."""

import numpy as np
import pytest

from repro.config import GenTranSeqConfig
from repro.drl import DQNAgent, Environment, train
from repro.errors import ConfigError


class ConstantRewardEnv(Environment):
    """Every action earns the same reward: the curve is flat from ep 1."""

    @property
    def observation_size(self) -> int:
        return 2

    @property
    def action_count(self) -> int:
        return 2

    def reset(self):
        return np.zeros(2)

    def step(self, action):
        return np.zeros(2), 1.0, False, {"profit": 0.0}


class TestEarlyStop:
    def test_flat_curve_stops_early(self):
        config = GenTranSeqConfig(
            episodes=50, steps_per_episode=5, early_stop_patience=3,
            batch_size=4, replay_buffer_size=32, hidden_layers=(4,), seed=0,
        )
        env = ConstantRewardEnv()
        agent = DQNAgent(env.observation_size, env.action_count, config=config)
        history = train(env, agent, config)
        assert len(history.episodes) < 50

    def test_disabled_by_default(self):
        config = GenTranSeqConfig(
            episodes=12, steps_per_episode=5,
            batch_size=4, replay_buffer_size=32, hidden_layers=(4,), seed=0,
        )
        env = ConstantRewardEnv()
        agent = DQNAgent(env.observation_size, env.action_count, config=config)
        history = train(env, agent, config)
        assert len(history.episodes) == 12

    def test_patience_validated(self):
        with pytest.raises(ConfigError):
            GenTranSeqConfig(early_stop_patience=1)

    def test_gentranseq_respects_early_stop(self, case_workload):
        from repro.core import GenTranSeq
        config = GenTranSeqConfig(
            episodes=40, steps_per_episode=20, early_stop_patience=5, seed=0,
        )
        module = GenTranSeq(config=config)
        result = module.optimize(
            case_workload.pre_state, case_workload.transactions,
            case_workload.ifus,
        )
        # Early stop may or may not trigger; what matters is the run
        # stays bounded and the result is still valid.
        assert len(result.episode_rewards) <= 40
        assert result.best_objective >= result.original_objective
