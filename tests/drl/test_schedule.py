"""Tests for the Eq. 9 exploration schedule."""

import pytest

from repro.drl import EpsilonSchedule
from repro.errors import DRLError


class TestExponentialDecay:
    def test_starts_at_max(self):
        schedule = EpsilonSchedule(epsilon_max=0.95, epsilon_min=0.01, decay=0.05)
        assert schedule.value(0) == pytest.approx(0.95)

    def test_monotonically_decreasing(self):
        schedule = EpsilonSchedule(epsilon_max=0.95, epsilon_min=0.01, decay=0.05)
        values = schedule.values(100)
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_approaches_min(self):
        schedule = EpsilonSchedule(epsilon_max=0.95, epsilon_min=0.01, decay=0.05)
        assert schedule.value(500) == pytest.approx(0.01, abs=1e-6)

    def test_bounded(self):
        schedule = EpsilonSchedule(epsilon_max=1.0, epsilon_min=0.0, decay=0.1)
        for episode in range(0, 200, 13):
            assert 0.0 <= schedule.value(episode) <= 1.0

    def test_zero_span_constant(self):
        schedule = EpsilonSchedule(epsilon_max=0.5, epsilon_min=0.5, decay=0.05)
        assert schedule.value(10) == 0.5


class TestLiteralMode:
    def test_literal_clamps_into_range(self):
        """The paper's printed formula grows above one; we clamp it."""
        schedule = EpsilonSchedule(
            epsilon_max=0.95, epsilon_min=0.01, decay=0.05, mode="literal"
        )
        for episode in range(50):
            assert 0.01 <= schedule.value(episode) <= 0.95


class TestValidation:
    def test_inverted_bounds_raise(self):
        with pytest.raises(DRLError):
            EpsilonSchedule(epsilon_max=0.1, epsilon_min=0.9, decay=0.05)

    def test_nonpositive_decay_raises(self):
        with pytest.raises(DRLError):
            EpsilonSchedule(epsilon_max=0.9, epsilon_min=0.1, decay=0.0)

    def test_unknown_mode_raises(self):
        with pytest.raises(DRLError):
            EpsilonSchedule(epsilon_max=0.9, epsilon_min=0.1, decay=0.1, mode="linear")

    def test_negative_episode_raises(self):
        schedule = EpsilonSchedule(epsilon_max=0.9, epsilon_min=0.1, decay=0.1)
        with pytest.raises(DRLError):
            schedule.value(-1)
