"""Tests for Q-network save/load."""

import numpy as np
import pytest

from repro.config import GenTranSeqConfig
from repro.drl import MLP
from repro.errors import DRLError


class TestMLPPersistence:
    def test_roundtrip_preserves_outputs(self, rng, tmp_path):
        network = MLP(4, (8, 6), 3, rng)
        path = tmp_path / "model.npz"
        network.save(path)
        restored = MLP.load(path, np.random.default_rng(99))
        x = rng.uniform(size=4)
        assert np.allclose(network.forward(x), restored.forward(x))

    def test_roundtrip_preserves_shape(self, rng, tmp_path):
        network = MLP(10, (16,), 5, rng)
        path = tmp_path / "model.npz"
        network.save(path)
        restored = MLP.load(path, rng)
        assert restored.input_size == 10
        assert restored.hidden_sizes == (16,)
        assert restored.output_size == 5

    def test_restored_network_trainable(self, rng, tmp_path):
        network = MLP(2, (8,), 1, rng, learning_rate=1e-2)
        path = tmp_path / "model.npz"
        network.save(path)
        restored = MLP.load(path, rng, learning_rate=1e-2)
        inputs = rng.uniform(-1, 1, size=(16, 2))
        targets = inputs[:, 0]
        first = restored.train_on_targets(
            inputs, np.zeros(16, dtype=np.int64), targets
        )
        for _ in range(100):
            last = restored.train_on_targets(
                inputs, np.zeros(16, dtype=np.int64), targets
            )
        assert last < first


class TestGenTranSeqPersistence:
    def test_save_then_load_for_inference(self, case_workload, tmp_path):
        from repro.core import GenTranSeq

        config = GenTranSeqConfig(episodes=8, steps_per_episode=30, seed=3)
        trainer = GenTranSeq(config=config)
        trained = trainer.optimize(
            case_workload.pre_state, case_workload.transactions,
            case_workload.ifus,
        )
        path = tmp_path / "gentranseq.npz"
        trainer.save_model(path)

        consumer = GenTranSeq(config=config)
        consumer.load_model(
            path, case_workload.pre_state, case_workload.transactions,
            case_workload.ifus,
        )
        inference = consumer.infer(
            case_workload.pre_state, case_workload.transactions,
            case_workload.ifus,
        )
        assert inference.best_objective >= inference.original_objective
        assert consumer.inference_memory_bytes() > 0

    def test_save_without_training_raises(self, tmp_path):
        from repro.core import GenTranSeq

        with pytest.raises(DRLError):
            GenTranSeq().save_model(tmp_path / "nothing.npz")

    def test_load_shape_mismatch_raises(self, case_workload, tmp_path, rng):
        from repro.core import GenTranSeq

        wrong = MLP(4, (8,), 3, rng)
        path = tmp_path / "wrong.npz"
        wrong.save(path)
        consumer = GenTranSeq(
            config=GenTranSeqConfig(episodes=2, steps_per_episode=10, seed=0)
        )
        with pytest.raises(DRLError):
            consumer.load_model(
                path, case_workload.pre_state, case_workload.transactions,
                case_workload.ifus,
            )
