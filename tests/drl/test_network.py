"""Tests for the numpy MLP and Adam optimiser."""

import numpy as np
import pytest

from repro.drl import MLP, AdamOptimizer
from repro.errors import NetworkShapeError


@pytest.fixture
def net(rng):
    return MLP(input_size=4, hidden_sizes=(8, 8), output_size=3, rng=rng,
               learning_rate=1e-2)


class TestForward:
    def test_single_observation_shape(self, net):
        out = net.forward(np.zeros(4))
        assert out.shape == (3,)

    def test_batch_shape(self, net):
        out = net.forward(np.zeros((5, 4)))
        assert out.shape == (5, 3)

    def test_deterministic(self, net):
        x = np.ones(4)
        assert np.array_equal(net.forward(x), net.forward(x))

    def test_wrong_width_raises(self, net):
        with pytest.raises(NetworkShapeError):
            net.forward(np.zeros(5))

    def test_distinct_inputs_distinct_outputs(self, net):
        a = net.forward(np.zeros(4))
        b = net.forward(np.ones(4))
        assert not np.allclose(a, b)


class TestBackward:
    def test_backward_without_forward_raises(self, net):
        with pytest.raises(NetworkShapeError):
            net.backward(np.zeros((1, 3)))

    def test_training_reduces_regression_loss(self, rng):
        net = MLP(2, (16,), 1, rng, learning_rate=5e-3)
        inputs = rng.uniform(-1, 1, size=(64, 2))
        targets = inputs[:, 0] * 0.5 - inputs[:, 1] * 0.3
        actions = np.zeros(64, dtype=np.int64)
        first_loss = net.train_on_targets(inputs, actions, targets)
        for _ in range(300):
            last_loss = net.train_on_targets(inputs, actions, targets)
        assert last_loss < first_loss * 0.2

    def test_train_on_targets_returns_mse(self, net):
        inputs = np.zeros((2, 4))
        loss = net.train_on_targets(
            inputs, np.array([0, 1]), np.array([0.0, 0.0])
        )
        assert loss >= 0.0


class TestWeightManagement:
    def test_copy_weights(self, rng, net):
        twin = MLP(4, (8, 8), 3, rng)
        twin.copy_weights_from(net)
        x = rng.uniform(size=4)
        assert np.allclose(twin.forward(x), net.forward(x))

    def test_copy_between_unlike_networks_raises(self, rng, net):
        other = MLP(4, (8,), 3, rng)
        with pytest.raises(NetworkShapeError):
            other.copy_weights_from(net)

    def test_clone_matches_but_is_independent(self, rng, net):
        twin = net.clone(rng)
        x = rng.uniform(size=4)
        assert np.allclose(twin.forward(x), net.forward(x))
        twin.weights[0][0, 0] += 1.0
        assert not np.allclose(twin.forward(x), net.forward(x))

    def test_parameter_count(self, net):
        # 4*8 + 8 + 8*8 + 8 + 8*3 + 3 = 123
        assert net.parameter_count() == 4 * 8 + 8 + 8 * 8 + 8 + 8 * 3 + 3

    def test_memory_bytes_positive(self, net):
        assert net.memory_bytes() == net.parameter_count() * 8

    def test_zero_size_rejected(self, rng):
        with pytest.raises(NetworkShapeError):
            MLP(0, (4,), 2, rng)


class TestAdam:
    def test_step_moves_toward_minimum(self):
        adam = AdamOptimizer(learning_rate=0.1)
        param = np.array([4.0])
        for _ in range(200):
            grad = 2.0 * param  # d/dx x^2
            adam.step([param], [grad])
        assert abs(param[0]) < 0.1

    def test_mismatched_lengths_raise(self):
        adam = AdamOptimizer()
        with pytest.raises(NetworkShapeError):
            adam.step([np.zeros(2)], [])

    def test_mismatched_shapes_raise(self):
        adam = AdamOptimizer()
        with pytest.raises(NetworkShapeError):
            adam.step([np.zeros(2)], [np.zeros(3)])
