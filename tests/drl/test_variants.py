"""Tests for Double DQN and prioritized replay."""

import numpy as np
import pytest

from repro.config import GenTranSeqConfig
from repro.drl import (
    DoubleDQNAgent,
    DQNAgent,
    PrioritizedDQNAgent,
    PrioritizedReplayBuffer,
)
from repro.drl.replay import Transition
from repro.errors import DRLError


def make_transition(tag: float, reward: float = 0.0) -> Transition:
    return Transition(
        state=np.array([tag]),
        action=int(tag) % 3,
        reward=reward,
        next_state=np.array([tag + 1]),
        done=False,
    )


@pytest.fixture
def config():
    return GenTranSeqConfig(
        batch_size=4, replay_buffer_size=32,
        q_network_update_every=2, target_network_update_every=8,
        hidden_layers=(8,), seed=0,
    )


class TestPrioritizedBuffer:
    def test_new_transitions_get_max_priority(self):
        buffer = PrioritizedReplayBuffer(capacity=8)
        buffer.push(make_transition(0.0))
        assert buffer._priorities[0] == 1.0

    def test_sampling_prefers_high_priority(self):
        buffer = PrioritizedReplayBuffer(capacity=16, alpha=1.0)
        rng = np.random.default_rng(0)
        for i in range(10):
            buffer.push(make_transition(float(i)))
        # Mark transition 0 as high-TD-error and the rest tiny.
        buffer.sample(10, rng)
        errors = np.full(10, 1e-6)
        sampled_positions = buffer._last_indices
        errors[np.where(sampled_positions == 0)[0]] = 100.0
        buffer.update_priorities(errors)
        hits = 0
        for _ in range(50):
            _, _, rewards, _, _ = buffer.sample(2, rng)
            states, _, _, _, _ = (None,) * 5, None, None, None, None
            if 0 in buffer._last_indices:
                hits += 1
            buffer._last_indices = None
        assert hits > 30  # priority 100 vs 1e-6 dominates sampling

    def test_importance_weights_bounded(self):
        buffer = PrioritizedReplayBuffer(capacity=16)
        rng = np.random.default_rng(1)
        for i in range(8):
            buffer.push(make_transition(float(i)))
        buffer.sample(4, rng)
        weights = buffer.importance_weights()
        assert weights.shape == (4,)
        assert np.all(weights > 0) and np.all(weights <= 1.0)

    def test_update_requires_prior_sample(self):
        buffer = PrioritizedReplayBuffer(capacity=8)
        buffer.push(make_transition(0.0))
        with pytest.raises(DRLError):
            buffer.update_priorities(np.array([1.0]))

    def test_update_length_checked(self):
        buffer = PrioritizedReplayBuffer(capacity=8)
        rng = np.random.default_rng(2)
        for i in range(4):
            buffer.push(make_transition(float(i)))
        buffer.sample(2, rng)
        with pytest.raises(DRLError):
            buffer.update_priorities(np.array([1.0, 2.0, 3.0]))

    def test_invalid_alpha_beta(self):
        with pytest.raises(DRLError):
            PrioritizedReplayBuffer(capacity=8, alpha=1.5)
        with pytest.raises(DRLError):
            PrioritizedReplayBuffer(capacity=8, beta=-0.1)

    def test_clear_resets_priorities(self):
        buffer = PrioritizedReplayBuffer(capacity=8)
        buffer.push(make_transition(0.0))
        buffer.clear()
        assert len(buffer) == 0
        assert buffer._priorities.sum() == 0.0


class TestDoubleDQN:
    def _fill_and_train(self, agent, count=20):
        for i in range(count):
            agent.observe(
                state=np.full(3, float(i % 4)),
                action=i % 5,
                reward=float(i % 3),
                next_state=np.full(3, float((i + 1) % 4)),
                done=False,
            )

    def test_trains_without_error(self, config):
        agent = DoubleDQNAgent(observation_size=3, action_count=5, config=config)
        self._fill_and_train(agent)
        assert len(agent.losses) > 0

    def test_differs_from_vanilla_after_training(self, config):
        """With diverged online/target networks, the Double-DQN bootstrap
        (online selection, target evaluation) departs from vanilla."""
        slow_sync = config.with_overrides(target_network_update_every=1000)
        vanilla = DQNAgent(observation_size=3, action_count=5, config=slow_sync)
        double = DoubleDQNAgent(
            observation_size=3, action_count=5, config=slow_sync
        )
        rng = np.random.default_rng(7)
        for agent in (vanilla, double):
            agent_rng = np.random.default_rng(7)
            for i in range(80):
                state = agent_rng.normal(size=3)
                agent.observe(
                    state=state,
                    action=int(agent_rng.integers(5)),
                    reward=float(agent_rng.normal()),
                    next_state=state + agent_rng.normal(size=3),
                    done=False,
                )
        observation = np.ones(3)
        assert not np.allclose(
            vanilla.q_values(observation), double.q_values(observation)
        )


class TestPrioritizedAgent:
    def test_uses_prioritized_buffer(self, config):
        agent = PrioritizedDQNAgent(
            observation_size=3, action_count=5, config=config
        )
        assert isinstance(agent.replay, PrioritizedReplayBuffer)

    def test_trains_without_error(self, config):
        agent = PrioritizedDQNAgent(
            observation_size=3, action_count=5, config=config
        )
        for i in range(20):
            agent.observe(
                state=np.full(3, float(i % 4)),
                action=i % 5,
                reward=float(i % 3),
                next_state=np.full(3, float((i + 1) % 4)),
                done=False,
            )
        assert len(agent.losses) > 0

    def test_trains_on_reorder_env(self, case_workload, config):
        """End-to-end: the prioritized agent learns on GENTRANSEQ's MDP."""
        from repro.core import ReorderEnv
        from repro.drl import train
        from repro.workloads.scenarios import IFU

        env_config = config.with_overrides(episodes=3, steps_per_episode=15)
        env = ReorderEnv(
            pre_state=case_workload.pre_state,
            transactions=case_workload.transactions,
            ifus=(IFU,),
            config=env_config,
        )
        agent = PrioritizedDQNAgent(
            env.observation_size, env.action_count, config=env_config
        )
        history = train(env, agent, env_config)
        assert len(history.episodes) == 3
