"""Tests for the DQN agent."""

import numpy as np
import pytest

from repro.config import GenTranSeqConfig
from repro.drl import DQNAgent
from repro.errors import DRLError


@pytest.fixture
def agent():
    config = GenTranSeqConfig(
        batch_size=4,
        replay_buffer_size=64,
        q_network_update_every=2,
        target_network_update_every=6,
        hidden_layers=(8,),
        seed=0,
    )
    return DQNAgent(observation_size=3, action_count=5, config=config)


class TestPolicy:
    def test_greedy_action_is_argmax(self, agent):
        observation = np.array([0.1, 0.2, 0.3])
        action = agent.act(observation, greedy=True)
        assert action == int(np.argmax(agent.q_values(observation)))

    def test_epsilon_one_explores(self, agent):
        agent.epsilon = 1.0
        actions = {agent.act(np.zeros(3)) for _ in range(50)}
        assert len(actions) > 1  # random actions spread across the space

    def test_epsilon_zero_exploits(self, agent):
        agent.epsilon = 0.0
        observation = np.ones(3)
        actions = {agent.act(observation) for _ in range(10)}
        assert len(actions) == 1

    def test_begin_episode_sets_schedule_value(self, agent):
        eps0 = agent.begin_episode(0)
        eps_late = agent.begin_episode(200)
        assert eps0 > eps_late
        assert agent.epsilon == eps_late

    def test_invalid_action_count_raises(self):
        with pytest.raises(DRLError):
            DQNAgent(observation_size=3, action_count=0)


class TestLearning:
    def _fill(self, agent, count):
        losses = []
        for i in range(count):
            loss = agent.observe(
                state=np.full(3, float(i % 3)),
                action=i % 5,
                reward=float(i % 2),
                next_state=np.full(3, float((i + 1) % 3)),
                done=False,
            )
            losses.append(loss)
        return losses

    def test_updates_follow_cadence(self, agent):
        losses = self._fill(agent, 12)
        # Updates start once the buffer holds a batch, every 2nd step.
        update_steps = [i for i, loss in enumerate(losses) if loss is not None]
        assert update_steps
        assert all((step + 1) % 2 == 0 for step in update_steps)

    def test_no_update_before_batch_available(self, agent):
        losses = self._fill(agent, 3)
        assert all(loss is None for loss in losses)

    def test_profit_forces_target_sync(self, agent):
        self._fill(agent, 4)
        agent.q_network.weights[0] += 0.5  # diverge the networks
        agent.observe(
            state=np.zeros(3), action=0, reward=1.0,
            next_state=np.ones(3), done=False, profit_found=True,
        )
        assert np.allclose(
            agent.target_network.weights[0], agent.q_network.weights[0]
        )

    def test_steps_counted(self, agent):
        self._fill(agent, 7)
        assert agent.steps == 7

    def test_losses_recorded(self, agent):
        self._fill(agent, 20)
        assert len(agent.losses) > 0
        assert all(loss >= 0 for loss in agent.losses)

    def test_inference_memory_positive(self, agent):
        assert agent.inference_memory_bytes() > 0
