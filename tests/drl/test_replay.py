"""Tests for the replay memory buffer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.drl import ReplayBuffer, Transition
from repro.errors import DRLError


def make_transition(tag: float) -> Transition:
    return Transition(
        state=np.array([tag]),
        action=int(tag),
        reward=tag,
        next_state=np.array([tag + 1]),
        done=False,
    )


class TestPush:
    def test_grows_until_capacity(self):
        buffer = ReplayBuffer(capacity=3)
        for i in range(3):
            buffer.push(make_transition(float(i)))
        assert len(buffer) == 3
        assert buffer.is_full

    def test_ring_eviction(self):
        buffer = ReplayBuffer(capacity=2)
        for i in range(5):
            buffer.push(make_transition(float(i)))
        assert len(buffer) == 2
        states, _, rewards, _, _ = buffer.sample(2, np.random.default_rng(0))
        assert set(rewards.tolist()) == {3.0, 4.0}

    def test_nonpositive_capacity_raises(self):
        with pytest.raises(DRLError):
            ReplayBuffer(capacity=0)

    def test_clear(self):
        buffer = ReplayBuffer(capacity=4)
        buffer.push(make_transition(1.0))
        buffer.clear()
        assert len(buffer) == 0


class TestSample:
    def test_sample_shapes(self):
        buffer = ReplayBuffer(capacity=10)
        for i in range(6):
            buffer.push(make_transition(float(i)))
        states, actions, rewards, next_states, dones = buffer.sample(
            4, np.random.default_rng(1)
        )
        assert states.shape == (4, 1)
        assert actions.shape == (4,)
        assert rewards.shape == (4,)
        assert next_states.shape == (4, 1)
        assert dones.dtype == bool

    def test_sample_without_replacement(self):
        buffer = ReplayBuffer(capacity=10)
        for i in range(5):
            buffer.push(make_transition(float(i)))
        _, actions, _, _, _ = buffer.sample(5, np.random.default_rng(2))
        assert len(set(actions.tolist())) == 5

    def test_undersized_buffer_raises(self):
        buffer = ReplayBuffer(capacity=10)
        buffer.push(make_transition(1.0))
        with pytest.raises(DRLError):
            buffer.sample(2, np.random.default_rng(0))

    def test_nonpositive_batch_raises(self):
        buffer = ReplayBuffer(capacity=10)
        buffer.push(make_transition(1.0))
        with pytest.raises(DRLError):
            buffer.sample(0, np.random.default_rng(0))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=1, max_value=60))
    def test_property_size_never_exceeds_capacity(self, capacity, pushes):
        buffer = ReplayBuffer(capacity=capacity)
        for i in range(pushes):
            buffer.push(make_transition(float(i)))
        assert len(buffer) == min(capacity, pushes)
