"""Tests for the generic training loop, using a toy environment."""

from typing import Any, Dict, Tuple

import numpy as np
import pytest

from repro.config import GenTranSeqConfig
from repro.drl import DQNAgent, Environment, train


class LineWorld(Environment):
    """Walk a 1-D line; reward is position; profit above a threshold."""

    def __init__(self, length: int = 5):
        self.length = length
        self.position = 0

    @property
    def observation_size(self) -> int:
        return 1

    @property
    def action_count(self) -> int:
        return 2  # left, right

    def reset(self) -> np.ndarray:
        self.position = 0
        return np.array([0.0])

    def step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        self.position += 1 if action == 1 else -1
        self.position = max(-self.length, min(self.length, self.position))
        done = abs(self.position) == self.length
        profit = max(0.0, float(self.position - 2))
        return (
            np.array([float(self.position)]),
            float(self.position),
            done,
            {"profit": profit},
        )


@pytest.fixture
def config():
    return GenTranSeqConfig(
        episodes=4, steps_per_episode=12, batch_size=4,
        replay_buffer_size=64, hidden_layers=(8,), seed=1,
    )


@pytest.fixture
def setup(config):
    env = LineWorld()
    agent = DQNAgent(env.observation_size, env.action_count, config=config)
    return env, agent, config


class TestTrainLoop:
    def test_history_has_one_entry_per_episode(self, setup):
        env, agent, config = setup
        history = train(env, agent, config)
        assert len(history.episodes) == 4

    def test_episode_stats_fields(self, setup):
        env, agent, config = setup
        history = train(env, agent, config)
        stats = history.episodes[0]
        assert stats.episode == 0
        assert stats.steps <= config.steps_per_episode
        assert stats.epsilon == pytest.approx(agent.schedule.value(0))

    def test_done_terminates_episode_early(self, setup):
        env, agent, config = setup
        history = train(env, agent, config)
        # LineWorld terminates within 5 steps of consistent movement at
        # most; at least one episode should end before the step cap.
        assert any(e.steps < config.steps_per_episode for e in history.episodes)

    def test_first_profit_step_recorded(self, setup):
        env, agent, config = setup
        history = train(env, agent, config)
        for stats in history.episodes:
            if stats.best_profit > 0:
                assert stats.first_profit_step is not None
                assert 1 <= stats.first_profit_step <= stats.steps

    def test_stop_when_profitable(self, config):
        env = LineWorld()
        agent = DQNAgent(env.observation_size, env.action_count, config=config)
        history = train(env, agent, config, stop_when_profitable=True)
        for stats in history.episodes:
            if stats.first_profit_step is not None:
                assert stats.steps == stats.first_profit_step

    def test_rewards_property(self, setup):
        env, agent, config = setup
        history = train(env, agent, config)
        assert history.rewards == [e.total_reward for e in history.episodes]

    def test_first_profit_steps_collects_solutions(self, setup):
        env, agent, config = setup
        history = train(env, agent, config)
        sizes = history.first_profit_steps()
        assert all(isinstance(size, int) for size in sizes)
