"""Module-level task functions shared by the fabric test suites.

The process and remote backends ship functions by qualified name
(pickle locally, ``module:qualname`` over the socket protocol), so the
tasks the tests run must live at module level in an importable module —
``tests.parallel.*`` is inside the wire protocol's import allow-list.
Every function here is deterministic given its arguments and ``seed``.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np


def cube(x: int, seed: Optional[int] = None) -> int:
    """Cheap pure arithmetic; seed folds in so seeding is observable."""
    return x**3 + (seed or 0) % 7


def slow_mul(a: int, b: int, seed: Optional[int] = None) -> int:
    """Multiply after a small sleep — forces real overlap in pools."""
    time.sleep(0.01)
    return a * b


def skewed_sleep(value: int, duration: float, seed: Optional[int] = None) -> int:
    """Sleep ``duration`` seconds, return a seed-dependent function of
    ``value`` — the adversarial-cost-skew workload: the *output* is
    duration-independent, so any scheduling of the sleeps must produce
    identical results."""
    time.sleep(duration)
    return value * 2 + (seed or 0) % 5


def seeded_draw(n: int, seed: Optional[int] = None) -> list:
    """``n`` float64 draws from a seed-owned Generator (exact floats)."""
    rng = np.random.default_rng(seed)
    return rng.random(n).tolist()


def flaky(x: int, seed: Optional[int] = None) -> int:
    """Raises on multiples of 5 — error-propagation fixture."""
    if x % 5 == 0:
        raise ValueError(f"flaky task rejected x={x}")
    return x + 1
