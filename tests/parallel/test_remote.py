"""Remote-worker fabric: wire protocol, handshake, loopback, churn."""

import json
import socket
import struct

import pytest

from repro.errors import ParallelError
from repro.parallel import SerialRunner, Task, spawn_task_seeds
from repro.parallel.fabric import get_runner
from repro.parallel.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    handshake_mismatch,
    hello_message,
    recv_frame,
    send_frame,
)
from repro.parallel.remote import RemoteRunner, WorkerServer
from repro.store import ResultStore
from tests.parallel.fabric_tasks import cube, flaky, seeded_draw, slow_mul


def _tasks(count=8, sweep_seed=7):
    return [
        Task(fn=slow_mul, args=(i, i + 1), seed=seed, label=f"mul#{i}")
        for i, seed in enumerate(spawn_task_seeds(sweep_seed, count))
    ]


class TestFrames:
    def test_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            message = {"type": "x", "nested": {"values": [1, 2.5, "z", None]}}
            send_frame(a, message)
            assert recv_frame(b) == message
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame_raises_connection_closed(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">Q", 100) + b'{"type"')
            a.close()
            with pytest.raises(ConnectionClosed):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_length_prefix_is_refused_without_allocating(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">Q", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="refusing to allocate"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_frame_is_refused(self):
        a, b = socket.socketpair()
        try:
            payload = json.dumps([1, 2, 3]).encode()
            a.sendall(struct.pack(">Q", len(payload)) + payload)
            with pytest.raises(ProtocolError, match="'type' field"):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestHandshake:
    def test_matching_hello_is_accepted(self):
        assert handshake_mismatch(hello_message()) is None

    def test_source_digest_mismatch_is_refused(self):
        hello = hello_message(source_digest="0" * 64)
        reason = handshake_mismatch(hello)
        assert reason is not None and "digest" in reason

    def test_protocol_version_mismatch_is_refused(self):
        hello = hello_message()
        hello["protocol"] = PROTOCOL_VERSION + 1
        reason = handshake_mismatch(hello)
        assert reason is not None and "protocol" in reason

    def test_env_mismatch_is_refused(self):
        hello = hello_message()
        hello["env"] = dict(hello["env"], numpy_version="0.0.1")
        reason = handshake_mismatch(hello)
        assert reason is not None and "numpy_version" in reason

    def test_token_gates_the_handshake(self):
        refused = handshake_mismatch(hello_message(), token="s3cret")
        assert refused is not None and "token" in refused
        assert "s3cret" not in refused  # never echo the secret
        wrong = handshake_mismatch(
            hello_message(token="wrong"), token="s3cret"
        )
        assert wrong is not None and "token" in wrong
        assert handshake_mismatch(
            hello_message(token="s3cret"), token="s3cret"
        ) is None

    def test_env_token_applies_to_both_sides(self, monkeypatch):
        monkeypatch.setenv("PAROLE_FABRIC_TOKEN", "envtok")
        assert handshake_mismatch(hello_message()) is None
        monkeypatch.delenv("PAROLE_FABRIC_TOKEN")
        assert handshake_mismatch(hello_message(token="envtok")) is None

    def test_server_with_token_refuses_tokenless_client(self):
        with WorkerServer(token="s3cret") as server:
            with pytest.raises(ProtocolError, match="refused the handshake"):
                RemoteRunner(
                    [(server.host, server.port)], connect_timeout=2.0
                ).map(_tasks(2))

    def test_matching_token_runs_end_to_end(self):
        tasks = _tasks(4)
        with WorkerServer(token="s3cret") as server:
            with RemoteRunner(
                [(server.host, server.port)], token="s3cret"
            ) as runner:
                assert runner.map(tasks) == SerialRunner().map(tasks)

    def test_server_sends_reject_frame_on_stale_code(self):
        with WorkerServer() as server:
            sock = socket.create_connection((server.host, server.port), 5.0)
            try:
                send_frame(sock, hello_message(source_digest="f" * 64))
                reply = recv_frame(sock)
            finally:
                sock.close()
        assert reply["type"] == "reject"
        assert "digest" in reply["reason"]

    def test_runner_raises_loudly_on_refusal(self, monkeypatch):
        import repro.parallel.protocol as protocol_module

        with WorkerServer() as server:
            monkeypatch.setattr(
                protocol_module,
                "hello_message",
                lambda source_digest=None: dict(
                    hello_message(), source_digest="a" * 64
                ),
            )
            # remote.py binds hello_message at import; patch there too.
            import repro.parallel.remote as remote_module

            monkeypatch.setattr(
                remote_module,
                "hello_message",
                protocol_module.hello_message,
            )
            with pytest.raises(ProtocolError, match="refused the handshake"):
                RemoteRunner([(server.host, server.port)]).map(_tasks(2))


class TestLoopback:
    def test_matches_serial(self):
        tasks = _tasks()
        expected = SerialRunner().map(tasks)
        with WorkerServer() as server:
            with RemoteRunner([(server.host, server.port)]) as runner:
                assert runner.map(tasks) == expected

    def test_multi_slot_server_matches_serial(self):
        tasks = _tasks(10)
        expected = SerialRunner().map(tasks)
        with WorkerServer(jobs=2) as server:
            with RemoteRunner([(server.host, server.port)]) as runner:
                assert runner.map(tasks) == expected

    def test_exact_float_round_trip(self):
        tasks = [
            Task(fn=seeded_draw, args=(6,), seed=seed, label=f"draw#{i}")
            for i, seed in enumerate(spawn_task_seeds(11, 6))
        ]
        expected = SerialRunner().map(tasks)
        with WorkerServer() as server:
            with RemoteRunner([(server.host, server.port)]) as runner:
                got = runner.map(tasks)
        assert got == expected  # exact equality, not approx

    def test_get_runner_workers_selects_remote(self):
        with WorkerServer() as server:
            runner = get_runner(workers=[f"{server.host}:{server.port}"])
            assert isinstance(runner, RemoteRunner)
            with runner:
                assert runner.map(_tasks(4)) == SerialRunner().map(_tasks(4))

    def test_task_errors_come_back_with_tracebacks(self):
        tasks = [Task(fn=flaky, args=(i,), label=f"f{i}") for i in range(8)]
        with WorkerServer() as server:
            with RemoteRunner([(server.host, server.port)]) as runner:
                results = runner.run(tasks)
        assert results[5].error is not None
        assert results[5].error.exc_type == "ValueError"
        assert "flaky task rejected" in results[5].error.traceback
        assert results[6].value == 7

    def test_unshippable_function_fails_fast_client_side(self):
        with WorkerServer() as server:
            with RemoteRunner([(server.host, server.port)]) as runner:
                with pytest.raises(ProtocolError, match="non-module-level"):
                    runner.map([Task(fn=lambda: 1)])

    def test_disallowed_module_fails_as_task_error_not_retry_loop(self):
        # json:dumps ships fine but the server's import allow-list
        # refuses it — the failure must come back as a TaskError, not
        # as an endless bury/respawn cycle.
        tasks = [Task(fn=json.dumps, args=([1],), label="forbidden")]
        with WorkerServer() as server:
            with RemoteRunner([(server.host, server.port)]) as runner:
                with pytest.raises(ParallelError, match="ProtocolError"):
                    runner.map(tasks)
        assert server.connections_served <= 1


class TestSharedStore:
    def test_store_dedupes_across_cold_and_warm_runs(self, tmp_path):
        tasks = _tasks()
        with WorkerServer() as server:
            address = (server.host, server.port)
            with RemoteRunner([address], store=ResultStore(tmp_path)) as r:
                cold = r.map(tasks)
            chunks_cold = server.chunks_served
            warm_store = ResultStore(tmp_path)
            with RemoteRunner([address], store=warm_store) as r:
                warm = r.map(tasks)
            assert warm == cold
            assert warm_store.stats.hits == len(tasks)
            # Fully warm: nothing was dispatched to the worker at all.
            assert server.chunks_served == chunks_cold

    def test_single_winner_persistence_under_churn(self, tmp_path):
        store = ResultStore(tmp_path)
        puts = []
        original_put = store.put_object

        def counting_put(key, value):
            puts.append(key)
            return original_put(key, value)

        store.put_object = counting_put
        tasks = _tasks(6)
        with WorkerServer(max_chunks_per_connection=1) as server:
            with RemoteRunner(
                [(server.host, server.port)], store=store, tick_seconds=0.2
            ) as runner:
                got = runner.map(tasks)
        assert got == SerialRunner().map(tasks)
        assert len(puts) == len(set(puts)) == len(tasks)


class TestChurn:
    def test_dropped_connections_reassign_without_loss(self):
        tasks = _tasks(8)
        expected = SerialRunner().map(tasks)
        with WorkerServer(max_chunks_per_connection=1) as server:
            with RemoteRunner(
                [(server.host, server.port)], tick_seconds=0.2
            ) as runner:
                assert runner.map(tasks) == expected
            assert server.connections_served > 1

    def test_two_servers_share_the_batch(self):
        tasks = _tasks(10)
        expected = SerialRunner().map(tasks)
        with WorkerServer() as one, WorkerServer() as two:
            with RemoteRunner(
                [(one.host, one.port), (two.host, two.port)]
            ) as runner:
                assert runner.map(tasks) == expected
            assert one.chunks_served > 0
            assert two.chunks_served > 0

    def test_unreachable_worker_degrades_to_survivors(self):
        tasks = _tasks(6)
        expected = SerialRunner().map(tasks)
        # Grab a port that nothing listens on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        with WorkerServer() as server:
            with RemoteRunner(
                [("127.0.0.1", dead_port), (server.host, server.port)],
                connect_timeout=2.0,
            ) as runner:
                assert runner.map(tasks) == expected

    def test_runner_reuse_survives_a_worker_lost_between_batches(self):
        # Regression: endpoints are reused across _run_batch calls; one
        # whose respawn failed earlier is left with a closed socket and
        # used to crash the next batch with AttributeError.
        tasks = _tasks(6)
        expected = SerialRunner().map(tasks)
        one = WorkerServer()
        two = WorkerServer()
        one.start()
        two.start()
        runner = RemoteRunner(
            [(one.host, one.port), (two.host, two.port)],
            tick_seconds=0.2,
            reconnect_attempts=1,
            connect_timeout=2.0,
        )
        try:
            assert runner.map(tasks) == expected  # both workers live
            two_port = two.port
            two.stop()
            # Simulate the aftermath of a failed mid-batch respawn: the
            # endpoint for `two` is left closed but stays in the list.
            for endpoint in runner._endpoints:
                if endpoint.address == (two.host, two_port):
                    endpoint.close()
            assert runner.map(tasks) == expected  # degrades to survivor
            # A worker coming back on the same address is picked up by
            # the next batch's reconnect pass.
            revived = WorkerServer(host=two.host, port=two_port)
            revived.start()
            try:
                assert runner.map(tasks) == expected
            finally:
                revived.stop()
        finally:
            runner.close()
            one.stop()

    def test_all_workers_unreachable_raises(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ParallelError, match="no remote workers"):
            RemoteRunner(
                [("127.0.0.1", dead_port)], connect_timeout=1.0
            ).map(_tasks(2))
