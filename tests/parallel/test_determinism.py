"""Backend-independence of the experiment harnesses.

The fabric's determinism contract, asserted end-to-end: the fig6/fig7/
fig9 sweeps produce **byte-identical** JSON payloads whether they run
serially or on a process pool with 2 or 4 workers.  (fig11 is excluded
by design — it reports wall-clock timings, which no backend can make
reproducible; its solutions and profits are covered by the cheaper
parity checks in ``test_fabric``.)
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    run_defense_eval,
    run_fig6,
    run_fig7,
    run_fig9,
)
from repro.experiments.common import QUICK
from repro.experiments.runner import _dataclass_list
from repro.parallel import ProcessRunner, SerialRunner


def _payload(result) -> bytes:
    """Render a result the way ``run_all`` archives it."""
    return json.dumps(
        _dataclass_list(result), indent=2, default=str, sort_keys=True
    ).encode()


def _run_fig6(runner):
    return run_fig6(
        adversarial_fractions=(0.1, 0.5),
        mempool_sizes=(10,),
        ifu_counts=(1, 2),
        num_aggregators=4,
        preset=QUICK,
        seed=0,
        runner=runner,
    )


def _run_fig7(runner):
    return run_fig7(
        ifu_counts=(1,),
        mempool_sizes=(10, 25),
        fractions=(0.25, 0.5),
        num_aggregators=4,
        preset=QUICK,
        seed=0,
        runner=runner,
    )


def _run_fig9(runner):
    return run_fig9(
        mempool_sizes=(10,), ifu_counts=(1, 2), preset=QUICK, seed=0,
        runner=runner,
    )


def _run_defense(runner):
    return run_defense_eval(
        thresholds=(0.01, 0.3), rounds=2, preset=QUICK, seed=0,
        runner=runner,
    )


HARNESSES = {
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig9": _run_fig9,
    "defense": _run_defense,
}


@pytest.mark.parametrize("name", sorted(HARNESSES))
def test_json_byte_identical_across_jobs_1_2_4(name):
    harness = HARNESSES[name]
    reference = _payload(harness(SerialRunner()))
    for workers in (2, 4):
        with ProcessRunner(max_workers=workers) as runner:
            payload = _payload(harness(runner))
        assert payload == reference, (
            f"{name}: --jobs {workers} JSON differs from --jobs 1"
        )


def test_chunk_size_does_not_change_results():
    """Degenerate chunking (1 task per chunk) still matches serial."""
    reference = _payload(_run_fig6(SerialRunner()))
    with ProcessRunner(max_workers=2, chunk_size=1) as runner:
        assert _payload(_run_fig6(runner)) == reference


def test_cached_rerun_byte_identical_to_cold(tmp_path):
    """A warm, fully store-served run renders byte-identically.

    Extends the determinism contract to the result store: cache hits
    round-trip through the codec exactly, so the archived JSON payload
    of a 100%-hit rerun equals the cold run's byte for byte.
    """
    from repro.store import ResultStore

    cold_runner = SerialRunner(store=ResultStore(tmp_path / "cache"))
    reference = _payload(_run_fig9(cold_runner))
    assert cold_runner.store.stats.hits == 0

    warm_runner = SerialRunner(store=ResultStore(tmp_path / "cache"))
    warm = _payload(_run_fig9(warm_runner))
    assert warm == reference
    assert warm_runner.store.stats.misses == 0
    assert warm_runner.store.stats.hits > 0


def test_cached_process_run_matches_cached_serial(tmp_path):
    """The store composes with the process backend: a pool warming the
    cache and a serial rerun reading it agree byte-for-byte."""
    from repro.store import ResultStore

    with ProcessRunner(
        max_workers=2, store=ResultStore(tmp_path / "cache")
    ) as runner:
        reference = _payload(_run_fig9(runner))
    warm_runner = SerialRunner(store=ResultStore(tmp_path / "cache"))
    assert _payload(_run_fig9(warm_runner)) == reference
    assert warm_runner.store.stats.misses == 0
