"""Work-stealing scheduler: cost model, planning, and the StealingRunner."""

import socket

import pytest

from repro.errors import ParallelError
from repro.parallel import (
    ChunkResult,
    EndpointDied,
    ProcessRunner,
    SerialRunner,
    StealingRunner,
    Task,
    TaskCostModel,
    WorkerEndpoint,
    WorkStealingScheduler,
    cost_group,
    next_chunk_size,
    plan_queues,
    spawn_task_seeds,
)
from repro.parallel.worker import call_task
from repro.store import ResultStore
from tests.parallel.fabric_tasks import cube, flaky, seeded_draw, skewed_sleep


def _cube_tasks(count=12, sweep_seed=42):
    return [
        Task(fn=cube, args=(i,), seed=seed, label=f"cube#{i}")
        for i, seed in enumerate(spawn_task_seeds(sweep_seed, count))
    ]


class TestCostGroup:
    def test_buckets_by_function_and_digitless_label(self):
        assert cost_group(cube, "fig6[ifus=3]#17") == cost_group(
            cube, "fig6[ifus=8]#2"
        )
        assert cost_group(cube, "chaos-burst#1") != cost_group(
            cube, "stream-lane#1"
        )
        assert cost_group(cube) == f"{cube.__module__}:{cube.__qualname__}"

    def test_unnameable_callables_get_no_bucket(self):
        assert cost_group(lambda x: x) is None

        def local(x):
            return x

        assert cost_group(local) is None


class TestCostModel:
    def test_first_observation_replaces_default(self):
        model = TaskCostModel(default_cost=1.0, alpha=0.5)
        assert model.estimate(cube) == 1.0
        model.observe(cube, "", 4.0)
        assert model.estimate(cube) == 4.0
        model.observe(cube, "", 2.0)
        assert model.estimate(cube) == pytest.approx(3.0)  # 0.5*2 + 0.5*4

    def test_persists_across_models_via_store(self, tmp_path):
        store = ResultStore(tmp_path)
        model = TaskCostModel(store=store)
        model.observe(cube, "x1", 7.5)
        assert model.flush() == 1
        warm = TaskCostModel(store=ResultStore(tmp_path))
        assert warm.estimate(cube, "x99") == pytest.approx(7.5)

    def test_estimates_never_touch_results(self):
        # A wildly wrong model must only change the schedule: same
        # values either way.
        wrong = TaskCostModel(default_cost=1e6)
        tasks = _cube_tasks()
        with StealingRunner(max_workers=2, cost_model=wrong) as runner:
            assert runner.map(tasks) == SerialRunner().map(tasks)


class TestPlanning:
    def test_next_chunk_size_is_guided(self):
        assert next_chunk_size(16, chunk_factor=4) == 4
        assert next_chunk_size(3, chunk_factor=4) == 1  # tail: singles
        assert next_chunk_size(0) == 0
        assert next_chunk_size(5, chunk_factor=4, min_chunk=3) == 3

    def test_plan_queues_covers_every_index_once(self):
        queues = plan_queues([1.0] * 10, 3)
        flat = sorted(i for queue in queues for i in queue)
        assert flat == list(range(10))

    def test_plan_queues_spreads_heavies(self):
        # Four heavy tasks, four workers: LPT puts one heavy per queue.
        estimates = [10.0, 10.0, 10.0, 10.0, 1.0, 1.0, 1.0, 1.0]
        queues = plan_queues(estimates, 4)
        for queue in queues:
            assert sum(1 for i in queue if estimates[i] == 10.0) == 1

    def test_plan_queues_dispatches_expensive_first(self):
        queues = plan_queues([1.0, 9.0, 1.0, 1.0], 1)
        assert queues[0][0] == 1  # the expensive task leads


class _InlineEndpoint(WorkerEndpoint):
    """Runs chunks synchronously in-process; a socketpair makes it
    compatible with ``multiprocessing.connection.wait``."""

    def __init__(self, ident, fail_sends=0):
        self.ident = ident
        self.fail_sends = fail_sends
        self.executed = []
        self._sent = 0
        self._results = []
        self._rx, self._tx = socket.socketpair()

    def waitable(self):
        return self._rx

    def send_chunk(self, chunk_id, entries, capture_telemetry, span_buffer_size):
        self._sent += 1
        if self._sent <= self.fail_sends:
            raise EndpointDied(f"{self.ident}: injected send failure")
        outcomes = []
        for index, fn, args, kwargs, seed in entries:
            outcomes.append((index, call_task(fn, args, kwargs, seed), None))
            self.executed.append(index)
        self._results.append(
            (chunk_id, ChunkResult(outcomes=outcomes))
        )
        self._tx.sendall(b"\x01")

    def recv_outcome(self):
        self._rx.recv(1)
        return self._results.pop(0)

    def respawn(self):
        return False

    def close(self):
        self._rx.close()
        self._tx.close()


class TestEndpointDeath:
    def test_send_failure_buries_endpoint_and_requeues(self):
        # Regression: a worker dying between a receive and the next
        # dispatch raises EndpointDied from send_chunk; the batch must
        # requeue its tasks (including the slice popped for the failed
        # send) instead of crashing.
        dies = _InlineEndpoint("dies-on-send", fail_sends=1)
        healthy = _InlineEndpoint("healthy")
        scheduler = WorkStealingScheduler([dies, healthy])
        tasks = _cube_tasks(8)
        try:
            results = scheduler.execute(tasks)
        finally:
            dies.close()
            healthy.close()
        assert [value for _, value, _ in results] == SerialRunner().map(tasks)
        assert dies.executed == []  # died on its first send, respawn refused
        assert sorted(healthy.executed) == list(range(8))

    def test_send_failure_with_no_survivors_raises(self):
        only = _InlineEndpoint("doomed", fail_sends=1)
        scheduler = WorkStealingScheduler([only])
        try:
            with pytest.raises(ParallelError, match="all fabric workers died"):
                scheduler.execute(_cube_tasks(4))
        finally:
            only.close()

    def test_steal_takes_the_expensive_front_half(self):
        a = _InlineEndpoint("victim")
        b = _InlineEndpoint("thief")
        scheduler = WorkStealingScheduler([a, b])
        victim, thief = scheduler._states
        victim.queue = [3, 0, 1, 2]  # expensive-first, as plan_queues builds
        try:
            assert scheduler._steal_into(thief)
        finally:
            a.close()
            b.close()
        assert thief.queue == [3, 0]  # the high-cost front half
        assert victim.queue == [1, 2]
        assert scheduler.steals == 1


class TestBalancedChunks:
    def test_explicit_chunk_size_spreads_the_remainder(self):
        # Regression: 21 tasks at chunk_size=5 used to split 5/5/5/5/1 —
        # the ragged singleton serialized behind an idle pool.
        runner = ProcessRunner(max_workers=4, chunk_size=5)
        chunks = runner._chunks(_cube_tasks(21))
        sizes = [len(chunk) for chunk in chunks]
        assert sizes == [5, 4, 4, 4, 4]
        assert max(sizes) - min(sizes) <= 1
        assert max(sizes) <= 5  # never exceeds the explicit size

    @pytest.mark.parametrize("total", [1, 7, 20, 21, 33])
    def test_balanced_chunks_cover_everything(self, total):
        runner = ProcessRunner(max_workers=3, chunk_size=4)
        chunks = runner._chunks(_cube_tasks(total))
        indices = [entry[0] for chunk in chunks for entry in chunk]
        assert indices == list(range(total))


class TestStealingRunner:
    def test_matches_serial(self):
        tasks = _cube_tasks()
        with StealingRunner(max_workers=2) as runner:
            assert runner.map(tasks) == SerialRunner().map(tasks)

    def test_matches_serial_on_numpy_draws(self):
        tasks = [
            Task(fn=seeded_draw, args=(5,), seed=seed, label=f"d{i}")
            for i, seed in enumerate(spawn_task_seeds(3, 8))
        ]
        with StealingRunner(max_workers=3) as runner:
            assert runner.map(tasks) == SerialRunner().map(tasks)

    def test_errors_land_on_the_right_indices(self):
        tasks = [
            Task(fn=flaky, args=(i,), label=f"f{i}") for i in range(12)
        ]
        with StealingRunner(max_workers=2) as runner:
            results = runner.run(tasks)
        for i, result in enumerate(results):
            assert result.index == i
            if i % 5 == 0:
                assert result.error is not None
                assert result.error.exc_type == "ValueError"
            else:
                assert result.value == i + 1
        with StealingRunner(max_workers=2) as runner:
            with pytest.raises(ParallelError, match="flaky task rejected"):
                runner.map(tasks)

    def test_steals_happen_under_cost_skew(self):
        # Equal estimates put half the tasks on each worker; making one
        # worker's share slow forces the other to steal its tail.
        slow, fast = 0.12, 0.001
        tasks = [
            Task(
                fn=skewed_sleep,
                args=(i, slow if i % 2 == 0 else fast),
                seed=7,
                label="steal-probe",  # one bucket: estimates stay equal
            )
            for i in range(16)
        ]
        with StealingRunner(max_workers=2, tick_seconds=0.1) as runner:
            values = runner.map(tasks)
            scheduler = runner.last_scheduler
        assert values == SerialRunner().map(tasks)
        assert scheduler.steals >= 1
        report = {r["worker"]: r for r in scheduler.utilization_report()}
        assert sum(r["tasks"] for r in report.values()) == len(tasks)
        # The fast worker must have executed some of the slow worker's
        # original share — that's what stealing is.
        assert all(r["tasks"] > 0 for r in report.values())

    def test_warm_store_short_circuits_dispatch(self, tmp_path):
        tasks = _cube_tasks()
        with StealingRunner(max_workers=2, store=ResultStore(tmp_path)) as r:
            cold = r.map(tasks)
        warm_store = ResultStore(tmp_path)
        with StealingRunner(max_workers=2, store=warm_store) as r:
            warm = r.map(tasks)
        assert warm == cold
        assert warm_store.stats.hits == len(tasks)

    def test_cost_observations_persist_for_the_next_run(self, tmp_path):
        store = ResultStore(tmp_path)
        tasks = [
            Task(fn=skewed_sleep, args=(i, 0.01), label="persisted#1")
            for i in range(4)
        ]
        with StealingRunner(max_workers=2, store=store) as runner:
            runner.map(tasks)
        fresh = TaskCostModel(store=ResultStore(tmp_path))
        estimate = fresh.estimate(skewed_sleep, "persisted#9")
        assert estimate != fresh.default_cost
        assert estimate > 0.0
