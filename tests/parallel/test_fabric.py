"""Unit tests for the deterministic parallel execution fabric."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import ParallelError
from repro.parallel import (
    AutoRunner,
    ProcessRunner,
    SerialRunner,
    Task,
    get_runner,
    spawn_task_seeds,
)


def _square(x):
    return x * x


def _seeded_draw(scale, *, seed):
    rng = np.random.default_rng(seed)
    return float(rng.normal() * scale)


def _fail_on_three(x):
    if x == 3:
        raise ValueError(f"boom at {x}")
    return x


def _pid_of(_):
    return os.getpid()


class TestSpawnTaskSeeds:
    #: ``SeedSequence`` child values are documented as stable across
    #: numpy versions and platforms; pin them so a derivation change
    #: (which would silently reseed every sweep) fails loudly.
    PINNED_SEED0_COUNT6 = (
        3757552657, 673228719, 3241444873, 3685993406, 1216546553, 2078861726,
    )

    def test_pinned_values(self):
        assert spawn_task_seeds(0, 6) == self.PINNED_SEED0_COUNT6

    def test_deterministic(self):
        assert spawn_task_seeds(42, 8) == spawn_task_seeds(42, 8)

    def test_prefix_stable(self):
        """Growing a sweep keeps the seeds of the existing points."""
        assert spawn_task_seeds(7, 10)[:4] == spawn_task_seeds(7, 4)

    def test_distinct_across_sweep_seeds(self):
        assert spawn_task_seeds(0, 4) != spawn_task_seeds(1, 4)

    def test_children_distinct(self):
        seeds = spawn_task_seeds(123, 64)
        assert len(set(seeds)) == len(seeds)

    def test_empty(self):
        assert spawn_task_seeds(0, 0) == ()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_task_seeds(0, -1)

    def test_plain_ints(self):
        assert all(isinstance(s, int) for s in spawn_task_seeds(0, 4))


class TestSerialRunner:
    def test_map_preserves_submission_order(self):
        tasks = [Task(fn=_square, args=(i,)) for i in range(10)]
        assert SerialRunner().map(tasks) == [i * i for i in range(10)]

    def test_seed_passed_as_keyword(self):
        tasks = [Task(fn=_seeded_draw, args=(2.0,), seed=s) for s in (1, 2)]
        values = SerialRunner().map(tasks)
        assert values[0] == _seeded_draw(2.0, seed=1)
        assert values[1] == _seeded_draw(2.0, seed=2)

    def test_error_carries_label_and_traceback(self):
        tasks = [
            Task(fn=_fail_on_three, args=(i,), label=f"item#{i}")
            for i in range(5)
        ]
        with pytest.raises(ParallelError) as excinfo:
            SerialRunner().map(tasks)
        assert "item#3" in str(excinfo.value)
        assert "boom at 3" in str(excinfo.value)
        assert "ValueError" in str(excinfo.value)

    def test_run_records_per_task_outcomes(self):
        tasks = [Task(fn=_fail_on_three, args=(i,)) for i in range(5)]
        results = SerialRunner().run(tasks)
        assert [r.ok for r in results] == [True, True, True, False, True]
        assert results[3].error.exc_type == "ValueError"

    def test_empty_batch(self):
        assert SerialRunner().map([]) == []


class TestProcessRunner:
    def test_matches_serial(self):
        tasks = [Task(fn=_square, args=(i,)) for i in range(23)]
        with ProcessRunner(max_workers=2) as runner:
            assert runner.map(tasks) == SerialRunner().map(tasks)

    def test_order_independent_of_chunking(self):
        tasks = [Task(fn=_square, args=(i,)) for i in range(17)]
        expected = [i * i for i in range(17)]
        for chunk_size in (1, 3, 17, 100):
            with ProcessRunner(max_workers=2, chunk_size=chunk_size) as runner:
                assert runner.map(tasks) == expected

    def test_seeded_tasks_match_serial(self):
        seeds = spawn_task_seeds(0, 12)
        tasks = [Task(fn=_seeded_draw, args=(1.5,), seed=s) for s in seeds]
        with ProcessRunner(max_workers=3) as runner:
            assert runner.map(tasks) == SerialRunner().map(tasks)

    def test_worker_failure_raises_parallel_error(self):
        tasks = [
            Task(fn=_fail_on_three, args=(i,), label=f"item#{i}")
            for i in range(6)
        ]
        with ProcessRunner(max_workers=2) as runner:
            with pytest.raises(ParallelError) as excinfo:
                runner.map(tasks)
        # The worker-side traceback crosses the process boundary intact.
        assert "item#3" in str(excinfo.value)
        assert "boom at 3" in str(excinfo.value)

    def test_runs_in_other_processes_when_possible(self):
        tasks = [Task(fn=_pid_of, args=(i,)) for i in range(8)]
        with ProcessRunner(max_workers=2) as runner:
            pids = set(runner.map(tasks))
        assert os.getpid() not in pids

    def test_chunk_partition_covers_all_tasks(self):
        runner = ProcessRunner(max_workers=4, chunk_size=None)
        tasks = [Task(fn=_square, args=(i,)) for i in range(50)]
        chunks = runner._chunks(tasks)
        flat = [index for chunk in chunks for (index, *_rest) in chunk]
        assert flat == list(range(50))

    def test_empty_batch_skips_pool_creation(self):
        runner = ProcessRunner(max_workers=2)
        assert runner.map([]) == []
        assert runner._executor is None


class TestAutoRunner:
    def test_small_batch_selects_serial(self):
        runner = AutoRunner(min_tasks=4)
        assert runner.select(3) is runner._serial

    def test_single_effective_worker_selects_serial(self):
        runner = AutoRunner(max_workers=1)
        assert runner.select(100) is runner._serial

    def test_large_batch_selects_process_with_enough_cores(self):
        runner = AutoRunner(max_workers=2, min_tasks=4)
        expected = (
            runner._process
            if (os.cpu_count() or 1) >= 2
            else runner._serial
        )
        assert runner.select(10) is expected

    def test_results_match_serial_either_way(self):
        tasks = [Task(fn=_square, args=(i,)) for i in range(9)]
        with AutoRunner() as runner:
            assert runner.map(tasks) == [i * i for i in range(9)]


class TestGetRunner:
    @pytest.mark.parametrize("jobs", [None, 0, 1])
    def test_serial_values(self, jobs):
        assert isinstance(get_runner(jobs), SerialRunner)

    def test_positive_jobs_size_the_pool(self):
        runner = get_runner(3)
        assert isinstance(runner, ProcessRunner)
        assert runner.max_workers == 3

    def test_negative_jobs_auto(self):
        assert isinstance(get_runner(-1), AutoRunner)
