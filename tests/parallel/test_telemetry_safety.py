"""Process-safety of the telemetry layer under the parallel fabric.

The regression these tests pin down: a forked worker inherits the
parent's live :class:`MetricsRegistry`; if it recorded into that object
*and* shipped its own snapshot back, the parent's merge would count
every observation twice.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.parallel import ProcessRunner, SerialRunner, Task
from repro.telemetry import (
    MetricsRegistry,
    disable_metrics,
    disable_tracing,
    enable_metrics,
    get_metrics,
)


@pytest.fixture(autouse=True)
def _clean_backends():
    disable_metrics()
    disable_tracing()
    yield
    disable_metrics()
    disable_tracing()


def _observe_once(amount):
    """Task body: one counter bump, one histogram sample, one gauge set."""
    metrics = get_metrics()
    metrics.counter("fabric_test.calls").inc()
    metrics.histogram("fabric_test.amount").observe(amount)
    metrics.gauge("fabric_test.last_amount").set(amount)
    return amount


def _child_probe(conn):
    """Forked child: report what the inherited backend looks like."""
    backend = get_metrics()
    backend.counter("fabric_test.calls").inc(100)
    conn.send(
        {
            "enabled": backend.enabled,
            "pid": os.getpid(),
        }
    )
    conn.close()


class TestForkInheritance:
    def test_forked_child_demotes_inherited_registry(self):
        """get_metrics() in a fork must not hand back the parent's registry."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        registry = enable_metrics(MetricsRegistry())
        registry.counter("fabric_test.calls").inc()
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=_child_probe, args=(child_conn,))
        proc.start()
        report = parent_conn.recv()
        proc.join()
        # The child saw a NullMetrics backend, so its inc(100) was a
        # no-op on the shared object: the parent's count is untouched.
        assert report["enabled"] is False
        assert report["pid"] != os.getpid()
        assert registry.counter("fabric_test.calls").value == 1.0

    def test_parent_registry_still_live_in_parent(self):
        registry = enable_metrics(MetricsRegistry())
        assert get_metrics() is registry


class TestNoDoubleCounting:
    def test_two_workers_never_double_count(self):
        """Merged parent counts equal the serial run's, exactly.

        Each task observes once; if workers recorded into an inherited
        parent registry *and* shipped chunk snapshots, counts would come
        back doubled.
        """
        amounts = [0.1 * (i + 1) for i in range(8)]
        tasks = [Task(fn=_observe_once, args=(a,)) for a in amounts]

        registry = enable_metrics(MetricsRegistry())
        serial_values = SerialRunner().map(tasks)
        serial_state = registry.dump_state()
        disable_metrics()

        registry = enable_metrics(MetricsRegistry())
        with ProcessRunner(max_workers=2) as runner:
            parallel_values = runner.map(tasks)
        parallel_state = registry.dump_state()

        assert parallel_values == serial_values
        assert parallel_state["counters"] == serial_state["counters"]
        hist_serial = serial_state["histograms"]["fabric_test.amount"]
        hist_parallel = parallel_state["histograms"]["fabric_test.amount"]
        assert hist_parallel["count"] == hist_serial["count"] == len(amounts)
        assert hist_parallel["counts"] == hist_serial["counts"]
        assert hist_parallel["min"] == hist_serial["min"]
        assert hist_parallel["max"] == hist_serial["max"]

    def test_gauges_merge_deterministically(self):
        """Chunks fold in submission order: the last task's gauge wins."""
        amounts = [float(i) for i in range(10)]
        tasks = [Task(fn=_observe_once, args=(a,)) for a in amounts]
        states = []
        for _ in range(2):
            registry = enable_metrics(MetricsRegistry())
            with ProcessRunner(max_workers=2, chunk_size=3) as runner:
                runner.map(tasks)
            states.append(registry.dump_state())
            disable_metrics()
        assert states[0]["gauges"] == states[1]["gauges"]
        assert states[0]["gauges"]["fabric_test.last_amount"] == amounts[-1]

    def test_no_capture_when_telemetry_off(self):
        """With NullMetrics active, workers skip telemetry capture."""
        tasks = [Task(fn=_observe_once, args=(1.0,)) for _ in range(4)]
        with ProcessRunner(max_workers=2) as runner:
            values = runner.map(tasks)
        assert values == [1.0] * 4
        assert get_metrics().enabled is False

    def test_pool_reuse_does_not_leak_between_batches(self):
        """Reused pool workers must not carry counts across run() calls."""
        tasks = [Task(fn=_observe_once, args=(1.0,)) for _ in range(4)]
        registry = enable_metrics(MetricsRegistry())
        with ProcessRunner(max_workers=2) as runner:
            runner.map(tasks)
            first = registry.dump_state()["counters"]["fabric_test.calls"]
            runner.map(tasks)
            second = registry.dump_state()["counters"]["fabric_test.calls"]
        assert first == 4.0
        assert second == 8.0
