"""Byte-identity across every backend × job count × adversarial skew.

The fabric's contract is that scheduling is never observable in the
output: serial, static chunks, work-stealing, and remote loopback must
produce byte-identical reports for any task-cost skew, any worker
count, and any worker churn.  Hypothesis drives the skew; the chaos
matrix supplies a real (fault-injected) workload on top of the
synthetic one.
"""

import dataclasses
import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.parallel import (
    ProcessRunner,
    SerialRunner,
    StealingRunner,
    Task,
    spawn_task_seeds,
)
from repro.parallel.remote import RemoteRunner, WorkerServer
from tests.parallel.fabric_tasks import seeded_draw, skewed_sleep


def _skew_tasks(durations):
    seeds = spawn_task_seeds(1234, len(durations))
    return [
        Task(
            fn=skewed_sleep,
            args=(i, duration),
            seed=seed,
            label=f"skew#{i}",
        )
        for i, (duration, seed) in enumerate(zip(durations, seeds))
    ]


def _payload(values) -> bytes:
    return json.dumps(values, sort_keys=True).encode("utf-8")


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    durations=st.lists(
        st.sampled_from([0.0, 0.002, 0.05]), min_size=5, max_size=12
    )
)
def test_every_backend_and_job_count_is_byte_identical(durations):
    tasks = _skew_tasks(durations)
    reference = _payload(SerialRunner().map(tasks))

    for jobs in (2, 4):
        with ProcessRunner(max_workers=jobs) as runner:
            assert _payload(runner.map(tasks)) == reference, (
                f"static jobs={jobs} diverged"
            )
        with StealingRunner(max_workers=jobs, tick_seconds=0.1) as runner:
            assert _payload(runner.map(tasks)) == reference, (
                f"stealing jobs={jobs} diverged"
            )

    with WorkerServer(jobs=2) as server:
        with RemoteRunner(
            [(server.host, server.port)], tick_seconds=0.1
        ) as runner:
            assert _payload(runner.map(tasks)) == reference, (
                "remote loopback diverged"
            )


def test_worker_churn_never_reaches_the_output():
    # A server that drops every connection after one chunk maximizes
    # reassignment; the payload must not care.
    tasks = _skew_tasks([0.03, 0.0, 0.0, 0.03, 0.0, 0.0, 0.03, 0.0])
    reference = _payload(SerialRunner().map(tasks))
    with WorkerServer(max_chunks_per_connection=1) as server:
        with RemoteRunner(
            [(server.host, server.port)], tick_seconds=0.2
        ) as runner:
            assert _payload(runner.map(tasks)) == reference
        assert server.connections_served > 1


def test_numpy_draws_are_bitwise_stable_across_backends():
    tasks = [
        Task(fn=seeded_draw, args=(8,), seed=seed, label=f"rng#{i}")
        for i, seed in enumerate(spawn_task_seeds(99, 10))
    ]
    reference = _payload(SerialRunner().map(tasks))
    with StealingRunner(max_workers=4, tick_seconds=0.1) as runner:
        assert _payload(runner.map(tasks)) == reference
    with WorkerServer(jobs=2) as server:
        with RemoteRunner([(server.host, server.port)]) as runner:
            assert _payload(runner.map(tasks)) == reference


def test_chaos_matrix_is_byte_identical_on_every_backend():
    from repro.faults import DEFAULT_MATRIX, run_matrix

    scenarios = [
        dataclasses.replace(scenario, rounds=3)
        for scenario in DEFAULT_MATRIX[:2]
    ]

    def render(runner):
        return b"\n".join(
            report.to_json().encode("utf-8")
            for report in run_matrix(scenarios, runner=runner)
        )

    reference = render(SerialRunner())
    with ProcessRunner(max_workers=2) as runner:
        assert render(runner) == reference
    with StealingRunner(max_workers=2, tick_seconds=0.1) as runner:
        assert render(runner) == reference
    with WorkerServer(jobs=2) as server:
        with RemoteRunner(
            [(server.host, server.port)], tick_seconds=0.2
        ) as runner:
            assert render(runner) == reference
