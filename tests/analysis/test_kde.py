"""Tests for the KDE curves (Figure 9)."""

import numpy as np
import pytest

from repro.analysis import kde_curve
from repro.errors import ReproError


class TestKDECurve:
    def test_peak_near_sample_mode(self):
        samples = [5.0] * 30 + [12.0] * 5
        curve = kde_curve(samples)
        peak_x, _ = curve.peak()
        assert abs(peak_x - 5.0) < 1.5

    def test_density_nonnegative(self):
        curve = kde_curve([1.0, 2.0, 3.0, 8.0])
        assert all(d >= 0 for d in curve.density)

    def test_density_integrates_to_about_one(self):
        curve = kde_curve(list(np.random.default_rng(0).normal(5, 2, 200)))
        grid = np.asarray(curve.grid)
        density = np.asarray(curve.density)
        integral = np.trapezoid(density, grid)
        assert integral == pytest.approx(1.0, abs=0.05)

    def test_degenerate_sample_single_bump(self):
        curve = kde_curve([4.0, 4.0, 4.0])
        peak_x, _ = curve.peak()
        assert abs(peak_x - 4.0) < 0.5

    def test_single_sample_supported(self):
        curve = kde_curve([2.0])
        assert curve.sample_size == 1

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            kde_curve([])

    def test_bimodal_detects_two_peaks(self):
        samples = [3.0 + 0.1 * i for i in range(10)] + [15.0 + 0.1 * i for i in range(10)]
        curve = kde_curve(samples, bandwidth=0.3)
        peaks = curve.peaks(min_prominence=0.2)
        assert len(peaks) >= 2

    def test_grid_bounds_honoured(self):
        curve = kde_curve([5.0, 6.0], grid_min=0.0, grid_max=10.0)
        assert curve.grid[0] == pytest.approx(0.0)
        assert curve.grid[-1] == pytest.approx(10.0)
