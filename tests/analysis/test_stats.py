"""Tests for moving averages and summaries."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import moving_average, summarize
from repro.errors import ReproError


class TestMovingAverage:
    def test_window_one_is_identity(self):
        values = [3.0, 1.0, 4.0]
        assert moving_average(values, window=1) == values

    def test_warm_up_partial_windows(self):
        out = moving_average([2.0, 4.0, 6.0], window=9)
        assert out[0] == pytest.approx(2.0)
        assert out[1] == pytest.approx(3.0)
        assert out[2] == pytest.approx(4.0)

    def test_steady_state_window(self):
        values = list(range(20))
        out = moving_average([float(v) for v in values], window=3)
        assert out[10] == pytest.approx((8 + 9 + 10) / 3)

    def test_same_length_as_input(self):
        assert len(moving_average([1.0] * 37, window=9)) == 37

    def test_figure8_window9_smoothing(self):
        """The first smoothed point of Fig. 8 averages the first nine."""
        rewards = [float(i) for i in range(30)]
        out = moving_average(rewards, window=9)
        assert out[8] == pytest.approx(sum(range(9)) / 9)

    def test_empty_input(self):
        assert moving_average([], window=9) == []

    def test_nonpositive_window_raises(self):
        with pytest.raises(ReproError):
            moving_average([1.0], window=0)

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1,
                    max_size=50))
    def test_property_bounded_by_extremes(self, values):
        out = moving_average(values, window=5)
        assert all(min(values) - 1e-9 <= v <= max(values) + 1e-9 for v in out)


class TestSummarize:
    def test_basic_stats(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)

    def test_single_value(self):
        summary = summarize([7.0])
        assert summary.std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            summarize([])
