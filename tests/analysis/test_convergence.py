"""Tests for learning-curve convergence analysis."""

import pytest

from repro.analysis import analyse_curve, convergence_episode, is_plateaued
from repro.errors import ReproError


def saturating_curve(n=60, level=100.0, ramp=20):
    return [level * min(1.0, i / ramp) for i in range(n)]


class TestConvergenceEpisode:
    def test_saturating_curve_converges(self):
        episode = convergence_episode(saturating_curve(), window=5)
        assert episode is not None
        assert 10 <= episode <= 35

    def test_flat_curve_converges_at_zero(self):
        assert convergence_episode([5.0] * 20) == 0

    def test_rising_curve_converges_late(self):
        rising = [float(i) for i in range(40)]
        episode = convergence_episode(rising, window=1, tolerance=0.05)
        assert episode is not None
        assert episode > 30

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            convergence_episode([])


class TestAnalyseCurve:
    def test_report_fields(self):
        report = analyse_curve(saturating_curve(), window=5)
        assert report.converged
        assert report.final_level == pytest.approx(100.0, rel=0.01)
        assert report.improvement > 0
        assert report.auc > 0

    def test_declining_curve_negative_improvement(self):
        declining = [100.0 - i for i in range(30)]
        report = analyse_curve(declining, window=3)
        assert report.improvement < 0


class TestPlateau:
    def test_flat_tail_plateaus(self):
        curve = saturating_curve(n=60, ramp=10)
        assert is_plateaued(curve, window=5, lookback=10)

    def test_still_rising_not_plateaued(self):
        rising = [float(i) for i in range(30)]
        assert not is_plateaued(rising, window=1, lookback=10)

    def test_short_curve_not_plateaued(self):
        assert not is_plateaued([1.0, 2.0], lookback=10)

    def test_constant_curve_plateaus(self):
        assert is_plateaued([3.0] * 30, lookback=10)


class TestOnRealTraining:
    def test_fig8_style_curve_analysable(self, case_workload, tiny_config):
        from repro.core import GenTranSeq
        module = GenTranSeq(
            config=tiny_config.with_overrides(episodes=12, steps_per_episode=30)
        )
        result = module.optimize(
            case_workload.pre_state, case_workload.transactions,
            case_workload.ifus,
        )
        report = analyse_curve(result.episode_rewards)
        assert report.auc is not None
        assert isinstance(report.converged, bool)
