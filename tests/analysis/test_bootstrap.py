"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import bootstrap_ci
from repro.errors import ReproError


class TestBootstrapCI:
    def test_estimate_is_statistic_of_data(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0, 4.0])
        assert ci.estimate == pytest.approx(2.5)

    def test_interval_brackets_estimate(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 2.0, size=40)
        ci = bootstrap_ci(data)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.contains(ci.estimate)

    def test_interval_tightens_with_sample_size(self):
        rng = np.random.default_rng(1)
        small = bootstrap_ci(rng.normal(0, 1, size=10))
        large = bootstrap_ci(rng.normal(0, 1, size=400))
        assert large.width < small.width

    def test_single_value_degenerate(self):
        ci = bootstrap_ci([7.0])
        assert ci.low == ci.high == ci.estimate == 7.0

    def test_custom_statistic(self):
        ci = bootstrap_ci([1.0, 2.0, 100.0], statistic=np.median)
        assert ci.estimate == pytest.approx(2.0)

    def test_deterministic_with_seeded_rng(self):
        data = [1.0, 3.0, 2.0, 5.0]
        a = bootstrap_ci(data, rng=np.random.default_rng(3))
        b = bootstrap_ci(data, rng=np.random.default_rng(3))
        assert (a.low, a.high) == (b.low, b.high)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            bootstrap_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ReproError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_str_format(self):
        text = str(bootstrap_ci([1.0, 2.0, 3.0]))
        assert "@95%" in text

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False), min_size=2, max_size=30))
    def test_property_interval_within_data_range_for_mean(self, values):
        ci = bootstrap_ci(values, resamples=200)
        assert min(values) - 1e-9 <= ci.low
        assert ci.high <= max(values) + 1e-9
