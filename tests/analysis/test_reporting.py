"""Tests for text table/series formatting."""

from repro.analysis import format_series, format_table


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        table = format_table(("A", "B"), [(1, 2), (3, 4)])
        lines = table.splitlines()
        assert "A" in lines[0] and "B" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "1" in lines[2]

    def test_column_alignment(self):
        table = format_table(("Name", "X"), [("long-name", 1), ("s", 22)])
        lines = table.splitlines()
        # All rows have the same width.
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_empty_rows(self):
        table = format_table(("A",), [])
        assert table.splitlines()[0].strip() == "A"


class TestFormatSeries:
    def test_pairs_rendered(self):
        out = format_series("curve", [1, 2], [0.5, 0.25], precision=2)
        assert out == "curve: 1=0.50, 2=0.25"

    def test_empty_series(self):
        assert format_series("c", [], []) == "c: "
