"""Coarse scalability guards.

Not micro-benchmarks (pytest-benchmark owns those) — these are generous
upper bounds that fail only on order-of-magnitude regressions in the
paths every experiment hammers.
"""

import time

import pytest

from repro.config import GenTranSeqConfig, WorkloadConfig
from repro.core import ReorderEnv
from repro.rollup import OVM
from repro.workloads import generate_workload


@pytest.fixture(scope="module")
def big_workload():
    return generate_workload(
        WorkloadConfig(mempool_size=100, num_users=30, num_ifus=1,
                       min_ifu_involvement=10, seed=0)
    )


class TestScaling:
    def test_env_steps_at_n100(self, big_workload):
        """100 environment steps at mempool 100 stay under 10 s."""
        env = ReorderEnv(
            pre_state=big_workload.pre_state,
            transactions=big_workload.transactions,
            ifus=big_workload.ifus,
            config=GenTranSeqConfig(steps_per_episode=100, seed=0),
        )
        env.reset()
        started = time.perf_counter()
        for action in range(100):
            env.step(action % env.action_count)
        elapsed = time.perf_counter() - started
        assert elapsed < 10.0

    def test_replay_at_n100(self, big_workload):
        """A single 100-tx replay stays well under a second."""
        ovm = OVM()
        started = time.perf_counter()
        for _ in range(50):
            ovm.replay(big_workload.pre_state, big_workload.transactions)
        elapsed = time.perf_counter() - started
        assert elapsed < 5.0

    def test_action_space_at_n100(self, big_workload):
        env = ReorderEnv(
            pre_state=big_workload.pre_state,
            transactions=big_workload.transactions,
            ifus=big_workload.ifus,
        )
        assert env.action_count == 100 * 99 // 2
        assert env.observation_size == 800

    def test_workload_generation_at_n200(self):
        started = time.perf_counter()
        workload = generate_workload(
            WorkloadConfig(mempool_size=200, num_users=40, num_ifus=2,
                           min_ifu_involvement=10, seed=1)
        )
        elapsed = time.perf_counter() - started
        assert workload.mempool_size == 200
        assert elapsed < 10.0
