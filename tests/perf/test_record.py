"""BenchRecord schema: round-trips, gates, env fingerprints."""

from __future__ import annotations

import math

import pytest

from repro.perf import (
    BENCH_RECORD_SCHEMA,
    BenchRecord,
    BenchSeries,
    GateVerdict,
    env_digest,
    env_fingerprint,
    new_record,
    read_record,
    write_record,
)


class TestBenchSeries:
    def test_median_odd_and_even(self):
        assert BenchSeries("s", "x", (3.0, 1.0, 2.0)).median == 2.0
        assert BenchSeries("s", "x", (1.0, 2.0, 3.0, 4.0)).median == 2.5

    def test_empty_series_median_is_nan(self):
        assert math.isnan(BenchSeries("s", "x", ()).median)

    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            BenchSeries("s", "x", (1.0,), direction="sideways")

    def test_roundtrip(self):
        series = BenchSeries(
            "throughput", "evals/s", (10.0, 12.0), meta={"N": 50}
        )
        assert BenchSeries.from_json(series.to_json()) == series


class TestGateVerdict:
    def test_unarmed_requires_reason(self):
        with pytest.raises(ValueError):
            GateVerdict(name="speedup", armed=False)

    def test_unarmed_render_carries_reason(self):
        gate = GateVerdict(
            name="speedup_4workers",
            armed=False,
            reason="cpu_count=1 < 4",
            threshold=2.0,
            observed=1.05,
        )
        text = gate.render()
        assert "UNARMED" in text
        assert "cpu_count=1" in text

    def test_pass_fail_render(self):
        passing = GateVerdict("g", armed=True, passed=True)
        failing = GateVerdict("g", armed=True, passed=False)
        assert "PASS" in passing.render()
        assert "FAIL" in failing.render()

    def test_roundtrip(self):
        gate = GateVerdict(
            "g", armed=True, passed=True, threshold=5.0, observed=9.9
        )
        assert GateVerdict.from_json(gate.to_json()) == gate


class TestEnvFingerprint:
    def test_contains_comparability_keys(self):
        fp = env_fingerprint()
        for key in ("cpu_count", "python_version", "numpy_version"):
            assert key in fp

    def test_digest_is_stable_and_sensitive(self):
        fp = env_fingerprint()
        assert env_digest(fp) == env_digest(dict(fp))
        changed = dict(fp, cpu_count=fp["cpu_count"] + 1)
        assert env_digest(changed) != env_digest(fp)

    def test_kernel_backend_moves_the_digest(self):
        assert env_digest(env_fingerprint(kernel_backend="c")) != env_digest(
            env_fingerprint(kernel_backend="numpy")
        )


class TestBenchRecord:
    def test_new_record_stamps_env_and_rev(self):
        record = new_record(
            "replay", series=[BenchSeries("speedup", "x", (5.0,))]
        )
        assert record.schema == BENCH_RECORD_SCHEMA
        assert record.env["cpu_count"] >= 1
        assert record.created_at > 0

    def test_rejects_duplicate_series_names(self):
        with pytest.raises(ValueError):
            new_record(
                "b",
                series=[
                    BenchSeries("s", "x", (1.0,)),
                    BenchSeries("s", "x", (2.0,)),
                ],
            )

    def test_json_roundtrip_preserves_everything(self):
        record = new_record(
            "parallel",
            series=[BenchSeries("speedup", "x", (1.1, 1.2))],
            gates=[
                GateVerdict(
                    "speedup_4workers", armed=False, reason="cpu_count=1 < 4"
                )
            ],
            view={"records": [{"jobs": 4}]},
            meta={"task_count": 16},
        )
        twin = BenchRecord.from_json(record.to_json())
        assert twin == record
        assert twin.env_digest == record.env_digest

    def test_from_json_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            BenchRecord.from_json({"schema": "BENCH_replay/v2", "bench_id": "x"})

    def test_write_read_uses_legacy_filename(self, tmp_path):
        record = new_record(
            "replay", series=[BenchSeries("speedup", "x", (5.0,))]
        )
        path = write_record(record, tmp_path)
        assert path.name == "BENCH_replay.json"
        assert read_record(path) == record

    def test_unarmed_gates_listed(self):
        record = new_record(
            "b",
            series=[BenchSeries("s", "x", (1.0,))],
            gates=[
                GateVerdict("armed", armed=True, passed=True),
                GateVerdict("skipped", armed=False, reason="cpu_count=1"),
            ],
        )
        assert [g.name for g in record.unarmed_gates()] == ["skipped"]
