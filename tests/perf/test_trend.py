"""Trend store: keying, replacement, history ordering, env filtering."""

from __future__ import annotations

from repro.perf import BenchRecord, BenchSeries, TrendStore, open_trend

ENV_A = {"cpu_count": 4, "python_version": "3.11.7", "numpy_version": "2.4.6"}
ENV_B = {"cpu_count": 1, "python_version": "3.11.7", "numpy_version": "2.4.6"}


def _rec(bench_id, value, rev, created_at, env=ENV_A):
    return BenchRecord(
        bench_id=bench_id,
        created_at=created_at,
        git_rev=rev,
        env=env,
        series=(BenchSeries("speedup", "x", (value,)),),
    )


class TestTrendStore:
    def test_key_is_bench_rev_env(self):
        record = _rec("replay", 5.0, "abc123", 1.0)
        key = TrendStore.record_key(record)
        assert key == f"bench:replay:abc123:{record.env_digest}"

    def test_append_and_history_sorted_by_time(self, tmp_path):
        trend = open_trend(tmp_path)
        # Append out of chronological order; history must sort by stamp.
        trend.append(_rec("replay", 5.5, "rev2", 200.0))
        trend.append(_rec("replay", 5.0, "rev1", 100.0))
        history = trend.history("replay")
        assert [r.git_rev for r in history] == ["rev1", "rev2"]

    def test_same_triple_rerun_replaces(self, tmp_path):
        trend = open_trend(tmp_path)
        trend.append(_rec("replay", 5.0, "rev1", 100.0))
        trend.append(_rec("replay", 6.0, "rev1", 150.0))
        history = trend.history("replay")
        assert len(history) == 1
        assert history[0].series[0].median == 6.0

    def test_env_filter(self, tmp_path):
        trend = open_trend(tmp_path)
        trend.append(_rec("replay", 5.0, "rev1", 100.0, env=ENV_A))
        trend.append(_rec("replay", 2.0, "rev1", 100.0, env=ENV_B))
        digest_a = _rec("replay", 0.0, "x", 0.0, env=ENV_A).env_digest
        only_a = trend.history("replay", env_digest=digest_a)
        assert len(only_a) == 1
        assert only_a[0].series[0].median == 5.0

    def test_latest_and_at_rev_prefix(self, tmp_path):
        trend = open_trend(tmp_path)
        trend.append(_rec("replay", 5.0, "aabbccddeeff", 100.0))
        trend.append(_rec("replay", 6.0, "112233445566", 200.0))
        assert trend.latest("replay").series[0].median == 6.0
        assert trend.at_rev("replay", "aabbcc").series[0].median == 5.0
        assert trend.at_rev("replay", "zz") is None

    def test_bench_ids(self, tmp_path):
        trend = open_trend(tmp_path)
        trend.append(_rec("replay", 5.0, "rev1", 100.0))
        trend.append(_rec("parallel", 1.0, "rev1", 100.0))
        assert trend.bench_ids() == ["parallel", "replay"]

    def test_shares_store_with_other_namespaces(self, tmp_path):
        """Perf history coexists with a result cache in one directory."""
        from repro.store import ResultStore

        store = ResultStore(tmp_path)
        store.put("experiment:x", {"value": 1})
        trend = TrendStore(store)
        trend.append(_rec("replay", 5.0, "rev1", 100.0))
        assert trend.bench_ids() == ["replay"]
        assert store.get("experiment:x") == {"value": 1}
