"""Chrome-trace export: structural validity for Perfetto/chrome://tracing."""

from __future__ import annotations

import json

from repro.perf import chrome_trace_events, export_chrome_trace
from repro.telemetry import FileSink, Tracer


def _write_trace(path):
    """Record a realistic trace: nested spans, an event, worker records."""
    sink = FileSink(path)
    tracer = Tracer(sink)
    with tracer.span("campaign.run", jobs=2):
        with tracer.span("solver.round", round=0):
            tracer.event("store.miss", key="experiment:a")
    # A record absorbed from a fabric worker carries worker=<pid>.
    sink.emit(
        {
            "type": "span",
            "name": "chunk.solve",
            "span_id": 900,
            "parent_id": None,
            "start": 5.0,
            "end": 6.0,
            "duration_s": 1.0,
            "attrs": {"worker": 4242},
        }
    )
    sink.emit(
        {
            "type": "metrics",
            "name": "snapshot",
            "t": 7.0,
            "metrics": {"counters": {"store.hits": 3, "store.misses": 1}},
        }
    )
    sink.close()
    return path


class TestChromeTraceEvents:
    def test_span_events_are_complete_events(self, tmp_path):
        trace = _write_trace(tmp_path / "trace.jsonl")
        out, counts = export_chrome_trace(trace)
        payload = json.loads(out.read_text())
        spans = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        assert {s["name"] for s in spans} == {
            "campaign.run",
            "solver.round",
            "chunk.solve",
        }
        for event in spans:
            for key in ("name", "ph", "ts", "dur", "pid", "tid", "args"):
                assert key in event
            assert event["dur"] >= 0
        assert counts["skipped"] == 0
        assert counts["events"] >= counts["records"]

    def test_parent_links_survive_in_args(self, tmp_path):
        trace = _write_trace(tmp_path / "trace.jsonl")
        _, _ = export_chrome_trace(trace)
        events = chrome_trace_events(json_lines(trace))
        by_name = {e["name"]: e for e in events if e.get("ph") == "X"}
        inner = by_name["solver.round"]
        outer = by_name["campaign.run"]
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]

    def test_instants_and_counters(self, tmp_path):
        trace = _write_trace(tmp_path / "trace.jsonl")
        events = chrome_trace_events(json_lines(trace))
        instants = [e for e in events if e.get("ph") == "i"]
        assert instants and instants[0]["s"] == "t"
        assert instants[0]["name"] == "store.miss"
        counters = [e for e in events if e.get("ph") == "C"]
        assert counters
        assert counters[0]["args"] == {"store.hits": 3.0, "store.misses": 1.0}

    def test_worker_records_get_their_own_named_lane(self, tmp_path):
        trace = _write_trace(tmp_path / "trace.jsonl")
        events = chrome_trace_events(json_lines(trace))
        lanes = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert lanes[0] == "main"
        assert lanes[4242] == "worker 4242"
        worker_spans = [
            e for e in events if e.get("ph") == "X" and e["pid"] == 4242
        ]
        assert [e["name"] for e in worker_spans] == ["chunk.solve"]


class TestExportChromeTrace:
    def test_default_output_path_and_strict_json(self, tmp_path):
        trace = _write_trace(tmp_path / "trace.jsonl")
        out, counts = export_chrome_trace(trace)
        assert out == tmp_path / "trace.chrome.json"
        # Strict parse: Perfetto rejects NaN/Infinity literals.
        payload = json.loads(
            out.read_text(), parse_constant=_reject_constant
        )
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"
        assert counts["records"] > 0

    def test_nan_attrs_are_sanitized_not_emitted_raw(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            json.dumps(
                {
                    "type": "span",
                    "name": "odd",
                    "span_id": 1,
                    "parent_id": None,
                    "start": 0.0,
                    "end": 1.0,
                    "duration_s": 1.0,
                    "attrs": {"ratio": float("nan")},
                },
                allow_nan=True,
            )
            + "\n"
        )
        out, _ = export_chrome_trace(trace)
        json.loads(out.read_text(), parse_constant=_reject_constant)

    def test_malformed_lines_are_skipped_counted(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        good = {
            "type": "span",
            "name": "ok",
            "span_id": 1,
            "parent_id": None,
            "start": 0.0,
            "end": 1.0,
            "duration_s": 1.0,
            "attrs": {},
        }
        trace.write_text(json.dumps(good) + "\n" + '{"truncated": \n')
        out, counts = export_chrome_trace(trace)
        assert counts["skipped"] == 1
        payload = json.loads(out.read_text())
        assert any(e["name"] == "ok" for e in payload["traceEvents"])


def _reject_constant(name):
    raise AssertionError(f"non-strict JSON constant in export: {name}")


def json_lines(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]
