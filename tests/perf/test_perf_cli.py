"""`parole perf` CLI: check/report/compare/baseline/export-trace/ingest."""

from __future__ import annotations

import json

from repro.cli import main
from repro.perf import (
    BenchRecord,
    BenchSeries,
    open_trend,
    write_record,
)
from repro.telemetry import FileSink, Tracer

ENV = {"cpu_count": 4, "python_version": "3.11.7", "numpy_version": "2.4.6"}


def _rec(value, rev, created_at, bench_id="replay"):
    return BenchRecord(
        bench_id=bench_id,
        created_at=created_at,
        git_rev=rev,
        env=ENV,
        series=(BenchSeries("speedup", "x", (value,)),),
    )


def _seed_history(store, values=(100.0, 102.0, 98.0)):
    trend = open_trend(store)
    for i, value in enumerate(values):
        trend.append(_rec(value, f"rev{i}", 100.0 + i))
    return trend


class TestPerfCheck:
    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        trend = _seed_history(tmp_path)
        trend.append(_rec(50.0, "badrev", 500.0))
        code = main(["perf", "check", "--store", str(tmp_path)])
        assert code == 1
        assert "REGRESSION:" in capsys.readouterr().out

    def test_noise_level_jitter_exits_zero(self, tmp_path, capsys):
        trend = _seed_history(tmp_path)
        trend.append(_rec(97.0, "newrev", 500.0))
        code = main(["perf", "check", "--store", str(tmp_path)])
        assert code == 0
        assert "REGRESSION:" not in capsys.readouterr().out

    def test_unarmed_passes_unless_strict(self, tmp_path, capsys):
        trend = open_trend(tmp_path)
        trend.append(_rec(100.0, "only", 100.0))  # no history to arm against
        assert main(["perf", "check", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "gate unarmed:" in out
        assert (
            main(["perf", "check", "--store", str(tmp_path), "--strict"]) == 1
        )

    def test_empty_store(self, tmp_path):
        assert main(["perf", "check", "--store", str(tmp_path)]) == 0
        assert (
            main(["perf", "check", "--store", str(tmp_path), "--strict"]) == 1
        )

    def test_store_from_environment_variable(self, tmp_path, monkeypatch):
        trend = _seed_history(tmp_path)
        trend.append(_rec(50.0, "badrev", 500.0))
        monkeypatch.setenv("REPRO_PERF_STORE", str(tmp_path))
        assert main(["perf", "check"]) == 1

    def test_threshold_flag_tightens_the_gate(self, tmp_path):
        trend = _seed_history(tmp_path, values=(100.0, 100.0, 100.0))
        trend.append(_rec(97.0, "newrev", 500.0))  # -3%
        store = str(tmp_path)
        assert main(["perf", "check", "--store", store]) == 0
        assert (
            main(
                ["perf", "check", "--store", store, "--rel-threshold", "0.02"]
            )
            == 1
        )


class TestPerfBaseline:
    def test_freeze_then_check_against_file(self, tmp_path, capsys):
        _seed_history(tmp_path)
        baseline = tmp_path / "PERF_BASELINE.json"
        code = main(
            ["perf", "baseline", "--store", str(tmp_path), "--out",
             str(baseline)]
        )
        assert code == 0
        assert baseline.exists()
        capsys.readouterr()

        # Same numbers: clean pass against the frozen file.
        assert (
            main(
                ["perf", "check", "--store", str(tmp_path), "--against",
                 str(baseline)]
            )
            == 0
        )
        # Inject a regression on a new rev: the file check flags it.
        open_trend(tmp_path).append(_rec(50.0, "badrev", 500.0))
        assert (
            main(
                ["perf", "check", "--store", str(tmp_path), "--against",
                 str(baseline)]
            )
            == 1
        )

    def test_baseline_on_empty_store_fails(self, tmp_path):
        assert (
            main(
                ["perf", "baseline", "--store", str(tmp_path), "--out",
                 str(tmp_path / "b.json")]
            )
            == 1
        )


class TestPerfReportCompare:
    def test_report_lists_series(self, tmp_path, capsys):
        _seed_history(tmp_path)
        out_file = tmp_path / "report.txt"
        code = main(
            ["perf", "report", "--store", str(tmp_path), "--out",
             str(out_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replay" in out
        assert "speedup" in out
        assert "speedup" in out_file.read_text()

    def test_compare_shows_per_series_delta(self, tmp_path, capsys):
        _seed_history(tmp_path)
        code = main(
            ["perf", "compare", "rev0", "rev2", "--store", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "%" in out


class TestPerfExportTrace:
    def test_export_trace_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        sink = FileSink(trace)
        tracer = Tracer(sink)
        with tracer.span("campaign.run"):
            tracer.event("store.hit", key="k")
        sink.close()
        out = tmp_path / "timeline.json"
        code = main(
            ["perf", "export-trace", str(trace), "--out", str(out)]
        )
        assert code == 0
        assert "perfetto" in capsys.readouterr().out.lower()
        payload = json.loads(out.read_text())
        assert any(
            e.get("name") == "campaign.run" for e in payload["traceEvents"]
        )


class TestPerfIngest:
    def test_ingest_rendered_views(self, tmp_path, capsys):
        views = tmp_path / "views"
        views.mkdir()
        store = tmp_path / "store"
        path_a = write_record(_rec(5.0, "rev1", 100.0, bench_id="a"), views)
        path_b = write_record(_rec(6.0, "rev1", 100.0, bench_id="b"), views)
        code = main(
            ["perf", "ingest", str(path_a), str(path_b), "--store",
             str(store)]
        )
        assert code == 0
        assert "2 record(s)" in capsys.readouterr().out
        assert open_trend(store).bench_ids() == ["a", "b"]

    def test_ingest_skips_garbage_and_fails_if_nothing_lands(
        self, tmp_path, capsys
    ):
        bogus = tmp_path / "BENCH_bogus.json"
        bogus.write_text('{"schema": "something-else"}')
        code = main(
            ["perf", "ingest", str(bogus), "--store", str(tmp_path / "s")]
        )
        assert code == 1
        assert "skipping" in capsys.readouterr().out
