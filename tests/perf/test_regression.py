"""Regression detector: thresholds, MAD noise rule, unarmed verdicts."""

from __future__ import annotations

import pytest

from repro.perf import (
    BenchRecord,
    BenchSeries,
    GateVerdict,
    RegressionPolicy,
    check_against_baseline,
    compare_records,
    detect_regressions,
    make_baseline,
)

ENV = {"cpu_count": 4, "python_version": "3.11.7", "numpy_version": "2.4.6"}
OTHER_ENV = {"cpu_count": 1, "python_version": "3.11.7", "numpy_version": "2.4.6"}


def _rec(value, rev, created_at, env=ENV, direction="higher", gates=()):
    return BenchRecord(
        bench_id="replay",
        created_at=created_at,
        git_rev=rev,
        env=env,
        series=(BenchSeries("speedup", "x", (value,), direction=direction),),
        gates=tuple(gates),
    )


def _history(values, env=ENV):
    return [
        _rec(v, f"rev{i}", 100.0 + i, env=env) for i, v in enumerate(values)
    ]


class TestDetectRegressions:
    def test_injected_regression_is_caught(self):
        history = _history([100.0, 102.0, 98.0])
        candidate = _rec(50.0, "bad", 500.0)
        report = detect_regressions([candidate], {"replay": history})
        assert not report.ok
        assert report.regressions[0].series == "speedup"
        assert report.regressions[0].rel_delta == pytest.approx(-0.5)

    def test_noise_level_jitter_passes(self):
        history = _history([100.0, 102.0, 98.0])
        candidate = _rec(97.0, "meh", 500.0)  # -3%, under the 10% threshold
        report = detect_regressions([candidate], {"replay": history})
        assert report.ok
        assert report.verdicts[0].status == "ok"

    def test_lower_is_better_direction_flips_the_sign(self):
        history = [
            _rec(1.0, f"rev{i}", 100.0 + i, direction="lower")
            for i in range(3)
        ]
        slower = _rec(2.0, "bad", 500.0, direction="lower")
        report = detect_regressions([slower], {"replay": history})
        assert not report.ok
        faster = _rec(0.5, "good", 500.0, direction="lower")
        report = detect_regressions([faster], {"replay": history})
        assert report.ok
        assert report.verdicts[0].status == "improved"

    def test_noisy_history_needs_a_bigger_move(self):
        # Median 100, MAD 10: a 15% drop clears the threshold but sits
        # inside 3xMAD — confirmed noise, not a regression.
        history = _history([80.0, 90.0, 100.0, 110.0, 120.0])
        candidate = _rec(85.0, "jit", 500.0)
        report = detect_regressions([candidate], {"replay": history})
        assert report.ok
        assert "noise" in report.verdicts[0].reason

    def test_insufficient_history_is_unarmed(self):
        history = _history([100.0])
        candidate = _rec(50.0, "bad", 500.0)
        report = detect_regressions([candidate], {"replay": history})
        assert report.ok  # unarmed is loud, not a failure
        verdict = report.verdicts[0]
        assert verdict.status == "unarmed"
        assert "insufficient history" in verdict.reason

    def test_env_mismatch_is_unarmed_with_digest_reason(self):
        history = _history([100.0, 101.0, 99.0], env=OTHER_ENV)
        candidate = _rec(50.0, "bad", 500.0, env=ENV)
        report = detect_regressions([candidate], {"replay": history})
        verdict = report.verdicts[0]
        assert verdict.status == "unarmed"
        assert "no history from this environment" in verdict.reason

    def test_bench_level_unarmed_gate_poisons_the_record(self):
        history = _history([100.0, 102.0, 98.0])
        candidate = _rec(
            50.0,
            "bad",
            500.0,
            gates=[
                GateVerdict(
                    "speedup_4workers", armed=False, reason="cpu_count=1 < 4"
                )
            ],
        )
        report = detect_regressions([candidate], {"replay": history})
        verdict = report.verdicts[0]
        assert verdict.status == "unarmed"
        assert "cpu_count=1" in verdict.reason
        assert report.ok

    def test_zero_baseline_is_unarmed(self):
        history = _history([0.0, 0.0, 0.0])
        candidate = _rec(1.0, "new", 500.0)
        report = detect_regressions([candidate], {"replay": history})
        assert report.verdicts[0].status == "unarmed"
        assert "zero" in report.verdicts[0].reason

    def test_render_mentions_unarmed_gates_loudly(self):
        history = _history([100.0])
        report = detect_regressions(
            [_rec(99.0, "x", 500.0)], {"replay": history}
        )
        text = report.render()
        assert "gate unarmed:" in text
        assert "WARNING:" in text

    def test_policy_threshold_is_tunable(self):
        history = _history([100.0, 100.0, 100.0])  # MAD 0: threshold rules
        candidate = _rec(97.0, "meh", 500.0)  # -3% vs median 100
        strict = RegressionPolicy(rel_threshold=0.02)
        report = detect_regressions(
            [candidate], {"replay": history}, policy=strict
        )
        assert not report.ok

    def test_render_flags_regressions(self):
        history = _history([100.0, 102.0, 98.0])
        report = detect_regressions(
            [_rec(50.0, "bad", 500.0)], {"replay": history}
        )
        assert "REGRESSION:" in report.render()


class TestBaselineFile:
    def test_roundtrip_check_ok(self):
        baseline = make_baseline([_rec(100.0, "base", 100.0)])
        report = check_against_baseline([_rec(99.0, "new", 200.0)], baseline)
        assert report.ok
        assert report.verdicts[0].status == "ok"

    def test_regression_against_baseline(self):
        baseline = make_baseline([_rec(100.0, "base", 100.0)])
        report = check_against_baseline([_rec(50.0, "new", 200.0)], baseline)
        assert not report.ok

    def test_env_mismatch_unarms_never_fails(self):
        baseline = make_baseline([_rec(100.0, "base", 100.0, env=OTHER_ENV)])
        report = check_against_baseline([_rec(50.0, "new", 200.0)], baseline)
        assert report.ok
        assert report.verdicts[0].status == "unarmed"
        assert "environment differs" in report.verdicts[0].reason

    def test_missing_series_unarms(self):
        baseline = make_baseline([_rec(100.0, "base", 100.0)])
        other = BenchRecord(
            bench_id="replay",
            created_at=200.0,
            git_rev="new",
            env=ENV,
            series=(BenchSeries("latency", "s", (1.0,), direction="lower"),),
        )
        report = check_against_baseline([other], baseline)
        assert report.verdicts[0].status == "unarmed"

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            check_against_baseline([], {"schema": "nope"})


class TestCompareRecords:
    def test_reports_signed_deltas(self):
        old = _rec(100.0, "a", 100.0)
        new = _rec(120.0, "b", 200.0)
        verdicts = compare_records(old, new)
        assert verdicts[0].status == "improved"
        assert verdicts[0].rel_delta == pytest.approx(0.2)

    def test_small_moves_are_ok(self):
        verdicts = compare_records(
            _rec(100.0, "a", 100.0), _rec(101.0, "b", 200.0)
        )
        assert verdicts[0].status == "ok"
