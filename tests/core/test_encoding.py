"""Tests for the 8-feature transaction encoding (Figure 4)."""

import numpy as np
import pytest

from repro.config import TX_FEATURE_WIDTH
from repro.core import TransactionEncoder
from repro.workloads import CASE3_ORDER
from repro.workloads.scenarios import IFU


@pytest.fixture
def encoder(case_workload):
    return TransactionEncoder(case_workload.pre_state, (IFU,))


class TestShape:
    def test_feature_width_is_eight(self, encoder):
        assert encoder.feature_width == TX_FEATURE_WIDTH == 8

    def test_2d_shape(self, encoder, case_workload):
        matrix = encoder.encode_2d(case_workload.transactions)
        assert matrix.shape == (8, 8)

    def test_flattened_size(self, encoder, case_workload):
        flat = encoder.encode(case_workload.transactions)
        assert flat.shape == (64,)
        assert encoder.observation_size(8) == 64


class TestFlags:
    def test_type_one_hot(self, encoder, case_workload):
        matrix = encoder.encode_2d(case_workload.transactions)
        # Exactly one of the first three columns set per row.
        assert np.all(matrix[:, :3].sum(axis=1) == 1.0)

    def test_tx2_is_mint(self, encoder, case_workload):
        matrix = encoder.encode_2d(case_workload.transactions)
        assert matrix[1, 0] == 1.0  # TX2 = Mint by U19

    def test_tx7_is_burn(self, encoder, case_workload):
        matrix = encoder.encode_2d(case_workload.transactions)
        assert matrix[6, 2] == 1.0  # TX7 = Burn by U2

    def test_ifu_involvement_flags(self, encoder, case_workload):
        matrix = encoder.encode_2d(case_workload.transactions)
        involved = [bool(matrix[i, 3]) for i in range(8)]
        # IFU participates in TX3, TX5, TX8 (indices 2, 4, 7).
        assert involved == [False, False, True, False, True, False, False, True]

    def test_ifu_gains_flag(self, encoder, case_workload):
        matrix = encoder.encode_2d(case_workload.transactions)
        # TX5 mint by IFU and TX8 transfer to IFU add tokens to the IFU.
        gains = [bool(matrix[i, 4]) for i in range(8)]
        assert gains == [False, False, False, False, True, False, False, True]


class TestStateFeatures:
    def test_price_feature_normalised(self, encoder, case_workload):
        matrix = encoder.encode_2d(case_workload.transactions)
        assert np.all(matrix[:, 5] > 0.0)
        assert np.all(matrix[:, 5] <= 1.0)

    def test_price_feature_tracks_position(self, encoder, case_workload):
        """The price column is position-dependent: reordering changes it."""
        original = encoder.encode_2d(case_workload.transactions)
        reordered = encoder.encode_2d(
            [case_workload.transactions[i] for i in CASE3_ORDER]
        )
        assert not np.allclose(original[:, 5], reordered[:, 5])

    def test_supply_feature_bounded(self, encoder, case_workload):
        matrix = encoder.encode_2d(case_workload.transactions)
        assert np.all(matrix[:, 6] >= 0.0)
        assert np.all(matrix[:, 6] <= 1.0)

    def test_fee_feature_bounded(self, encoder, case_workload):
        matrix = encoder.encode_2d(case_workload.transactions)
        assert np.all(matrix[:, 7] > 0.0)
        assert np.all(matrix[:, 7] <= 1.0)

    def test_encoding_deterministic(self, encoder, case_workload):
        a = encoder.encode(case_workload.transactions)
        b = encoder.encode(case_workload.transactions)
        assert np.array_equal(a, b)
