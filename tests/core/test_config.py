"""Tests for configuration objects, including Table II values."""

import pytest

from repro.config import (
    AttackConfig,
    DefenseConfig,
    GenTranSeqConfig,
    NFTContractConfig,
    RollupConfig,
    SnapshotStudyConfig,
    WorkloadConfig,
    eth_to_satoshi,
    eth_to_wei,
    wei_to_eth,
)
from repro.errors import ConfigError


class TestTableII:
    """Defaults must equal the paper's Table II exactly."""

    def test_exploration_parameter(self):
        assert GenTranSeqConfig().epsilon == 0.95

    def test_epsilon_decay(self):
        assert GenTranSeqConfig().epsilon_decay == 0.05

    def test_discount_factor(self):
        assert GenTranSeqConfig().discount_factor == 0.618

    def test_episodes(self):
        assert GenTranSeqConfig().episodes == 100

    def test_steps_per_episode(self):
        assert GenTranSeqConfig().steps_per_episode == 200

    def test_learning_rate(self):
        assert GenTranSeqConfig().learning_rate == 0.7

    def test_replay_buffer_size(self):
        assert GenTranSeqConfig().replay_buffer_size == 5000

    def test_q_network_update_every_5(self):
        assert GenTranSeqConfig().q_network_update_every == 5

    def test_target_network_update_every_30(self):
        assert GenTranSeqConfig().target_network_update_every == 30


class TestGenTranSeqValidation:
    def test_epsilon_out_of_range(self):
        with pytest.raises(ConfigError):
            GenTranSeqConfig(epsilon=1.5)

    def test_discount_out_of_range(self):
        with pytest.raises(ConfigError):
            GenTranSeqConfig(discount_factor=-0.1)

    def test_zero_episodes(self):
        with pytest.raises(ConfigError):
            GenTranSeqConfig(episodes=0)

    def test_buffer_smaller_than_batch(self):
        with pytest.raises(ConfigError):
            GenTranSeqConfig(replay_buffer_size=4, batch_size=32)

    def test_penalty_weight_below_one(self):
        with pytest.raises(ConfigError):
            GenTranSeqConfig(penalty_weight=0.5)

    def test_with_overrides_validates(self):
        with pytest.raises(ConfigError):
            GenTranSeqConfig().with_overrides(epsilon=2.0)

    def test_with_overrides_copies(self):
        base = GenTranSeqConfig()
        changed = base.with_overrides(episodes=7)
        assert base.episodes == 100
        assert changed.episodes == 7


class TestOtherConfigs:
    def test_pt_defaults(self):
        config = NFTContractConfig()
        assert config.max_supply == 10
        assert config.initial_price_eth == 0.2

    def test_nft_config_validation(self):
        with pytest.raises(ConfigError):
            NFTContractConfig(max_supply=0)

    def test_rollup_validation(self):
        with pytest.raises(ConfigError):
            RollupConfig(challenge_period_blocks=0)

    def test_attack_requires_ifu(self):
        with pytest.raises(ConfigError):
            AttackConfig(ifu_accounts=())

    def test_attack_fraction_bounds(self):
        with pytest.raises(ConfigError):
            AttackConfig(adversarial_fraction=0.0)

    def test_workload_mix_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(tx_type_mix=(0.5, 0.5, 0.5))

    def test_workload_ifus_bounded_by_users(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(num_users=3, num_ifus=4)

    def test_defense_validation(self):
        with pytest.raises(ConfigError):
            DefenseConfig(profit_threshold_eth=-1.0)

    def test_snapshot_tier_bounds(self):
        with pytest.raises(ConfigError):
            SnapshotStudyConfig(lft_max_owners=5000, mft_max_owners=3000)


class TestUnitConversion:
    def test_eth_wei_roundtrip(self):
        assert wei_to_eth(eth_to_wei(1.5)) == pytest.approx(1.5)

    def test_satoshi_conversion(self):
        assert eth_to_satoshi(1.0) == 10**8
