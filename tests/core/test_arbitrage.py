"""Tests for the arbitrage-opportunity pre-check."""


from repro.core import assess_opportunity
from repro.rollup import NFTTransaction, TxKind


def mint(sender, nonce=0):
    return NFTTransaction(kind=TxKind.MINT, sender=sender, nonce=nonce)


def transfer(sender, recipient, nonce=0):
    return NFTTransaction(
        kind=TxKind.TRANSFER, sender=sender, recipient=recipient, nonce=nonce
    )


def burn(sender, nonce=0):
    return NFTTransaction(kind=TxKind.BURN, sender=sender, nonce=nonce)


class TestOpportunityDetection:
    def test_mint_transfer_pair_is_opportunity(self):
        txs = [mint("ifu", 0), transfer("ifu", "u1", 1)]
        assert assess_opportunity(txs, ["ifu"]).has_opportunity

    def test_case_study_flags_opportunity(self, case_workload):
        result = assess_opportunity(case_workload.transactions, case_workload.ifus)
        assert result.has_opportunity
        assert result.involvement["IFU"] == 3

    def test_single_transaction_rejected(self):
        result = assess_opportunity([mint("ifu")], ["ifu"])
        assert not result.has_opportunity
        assert any("fewer than two" in reason for reason in result.reasons)

    def test_uninvolved_ifu_rejected(self):
        txs = [mint("u1", 0), transfer("u2", "u3", 1)]
        result = assess_opportunity(txs, ["ifu"])
        assert not result.has_opportunity

    def test_single_involvement_rejected(self):
        txs = [mint("ifu", 0), transfer("u2", "u3", 1)]
        result = assess_opportunity(txs, ["ifu"])
        assert not result.has_opportunity
        assert any("multiple" in reason for reason in result.reasons)

    def test_no_price_moving_tx_rejected(self):
        txs = [transfer("ifu", "u1", 0), transfer("u2", "ifu", 1)]
        result = assess_opportunity(txs, ["ifu"])
        assert not result.has_opportunity
        assert any("constant" in reason for reason in result.reasons)

    def test_multi_ifu_any_involved_counts(self):
        txs = [mint("ifu2", 0), transfer("ifu2", "u1", 1)]
        result = assess_opportunity(txs, ["ifu1", "ifu2"])
        assert result.has_opportunity
        assert result.involvement == {"ifu1": 0, "ifu2": 2}


class TestCounters:
    def test_type_counters(self):
        txs = [
            mint("ifu", 0),
            transfer("ifu", "u1", 1),
            burn("ifu", 2),
            mint("u9", 3),
        ]
        result = assess_opportunity(txs, ["ifu"])
        assert result.ifu_mint_count == 1
        assert result.ifu_transfer_count == 1
        assert result.ifu_burn_count == 1
        assert result.price_moving_count == 3

    def test_total_involvement(self):
        txs = [mint("ifu", 0), transfer("u1", "ifu", 1)]
        result = assess_opportunity(txs, ["ifu"])
        assert result.total_ifu_involvement == 2
