"""Tests for the GENTRANSEQ MDP environment."""

import math

import numpy as np
import pytest

from repro.config import GenTranSeqConfig
from repro.core import ReorderEnv, swap_action_table
from repro.errors import DRLError
from repro.workloads import CASE2_ORDER, CASE3_ORDER
from repro.workloads.scenarios import IFU


@pytest.fixture
def env(case_workload):
    config = GenTranSeqConfig(steps_per_episode=20, seed=0)
    return ReorderEnv(
        pre_state=case_workload.pre_state,
        transactions=case_workload.transactions,
        ifus=(IFU,),
        config=config,
    )


class TestActionSpace:
    def test_action_count_is_n_choose_2(self, env):
        assert env.action_count == math.comb(8, 2) == 28

    def test_swap_table_enumerates_pairs(self):
        table = swap_action_table(4)
        assert len(table) == 6
        assert table[0] == (0, 1)
        assert table[-1] == (2, 3)

    def test_observation_size_is_8n(self, env):
        assert env.observation_size == 64

    def test_invalid_action_raises(self, env):
        env.reset()
        with pytest.raises(DRLError):
            env.step(28)

    def test_too_few_transactions_rejected(self, case_workload):
        with pytest.raises(DRLError):
            ReorderEnv(
                pre_state=case_workload.pre_state,
                transactions=case_workload.transactions[:1],
                ifus=(IFU,),
            )


class TestDynamics:
    def test_reset_restores_identity_order(self, env):
        env.reset()
        env.step(0)
        env.reset()
        assert env.current_order() == tuple(range(8))

    def test_step_swaps_exactly_two(self, env):
        env.reset()
        i, j = env.action_pair(5)
        env.step(5)
        order = env.current_order()
        expected = list(range(8))
        expected[i], expected[j] = expected[j], expected[i]
        assert order == tuple(expected)

    def test_swap_is_involution(self, env):
        env.reset()
        env.step(3)
        env.step(3)
        assert env.current_order() == tuple(range(8))

    def test_done_at_step_cap(self, env):
        env.reset()
        done = False
        for step in range(20):
            _, _, done, _ = env.step(0)
        assert done

    def test_observation_changes_with_order(self, env):
        first = env.reset()
        second, _, _, _ = env.step(0)
        assert not np.array_equal(first, second)


class TestRewards:
    def test_original_objective_matches_case1(self, env):
        assert env.original_objective == pytest.approx(2.5)

    def test_case3_order_evaluates_correctly(self, env):
        evaluation = env.evaluate_order(CASE3_ORDER)
        assert evaluation["objective"] == pytest.approx(2.5 + 7 / 30)
        assert evaluation["feasible"]
        assert evaluation["delta"] > 0

    def test_case2_order_evaluates_correctly(self, env):
        evaluation = env.evaluate_order(CASE2_ORDER)
        assert evaluation["objective"] == pytest.approx(2.5 + 1 / 15)

    def test_profitable_swap_rewarded_positively(self, case_workload):
        env = ReorderEnv(
            pre_state=case_workload.pre_state,
            transactions=case_workload.transactions,
            ifus=(IFU,),
            config=GenTranSeqConfig(steps_per_episode=50, seed=0),
        )
        env.reset()
        # Find any single swap with a positive feasible delta and check
        # the reward equals delta * reward_scale (W = 1 branch of Eq. 8).
        for action in range(env.action_count):
            env.reset()
            _, reward, _, info = env.step(action)
            if info["feasible"] and info["delta"] > 0:
                assert reward == pytest.approx(
                    info["delta"] * env.config.reward_scale
                )
                assert info["profit"] == pytest.approx(info["delta"])
                return
        pytest.fail("no single profitable swap found in the case study")

    def test_losing_swap_amplified_by_penalty_weight(self, env):
        env.reset()
        for action in range(env.action_count):
            env.reset()
            _, reward, _, info = env.step(action)
            if info["feasible"] and info["delta"] < 0:
                assert reward == pytest.approx(
                    env.config.penalty_weight
                    * info["delta"]
                    * env.config.reward_scale
                )
                assert info["profit"] == 0.0
                return
        pytest.fail("no single losing swap found in the case study")

    def test_best_order_tracked(self, env):
        env.reset()
        best_before = env.best_objective
        for action in range(env.action_count):
            env.reset()
            env.step(action)
        assert env.best_objective >= best_before
        assert env.best_objective >= env.original_objective

    def test_first_profit_swaps_recorded(self, env):
        env.reset()
        for action in range(env.action_count):
            env.reset()
            _, _, _, info = env.step(action)
            if info["profit"] > 0:
                assert env.first_profit_swaps == 1
                return
        pytest.fail("no profitable single swap found")


class TestFeasibility:
    def test_infeasible_order_penalised(self, pt_config):
        """Orders that break an originally-valid tx must score -inf-like."""
        from repro.rollup import L2State, NFTTransaction, TxKind

        state = L2State(
            pt_config,
            balances={"ifu": 1.0, "u1": 0.35, "u2": 5.0},
            inventory={"ifu": 5},
        )
        # 5 minted -> price 0.4.  After the IFU's burn the price drops to
        # 10/6*0.2 = 0.333, which u1 (0.35 ETH) can just afford.
        txs = (
            NFTTransaction(kind=TxKind.BURN, sender="ifu", nonce=0),
            NFTTransaction(kind=TxKind.MINT, sender="u1", nonce=1),
            NFTTransaction(kind=TxKind.MINT, sender="u2", nonce=2),
        )
        env = ReorderEnv(
            pre_state=state,
            transactions=txs,
            ifus=("ifu",),
            config=GenTranSeqConfig(steps_per_episode=10, seed=0),
        )
        # Reordering u1's mint before the burn prices u1 out (0.35 < 0.4)
        # -> an originally-valid transaction is skipped -> infeasible.
        evaluation = env.evaluate_order((1, 0, 2))
        assert not evaluation["feasible"]
        env.reset()
        action = env._actions.index((0, 1))
        _, reward, _, info = env.step(action)
        assert not info["feasible"]
        assert reward < 0
