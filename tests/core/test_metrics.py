"""Tests for profit metrics and multi-IFU objectives."""

import pytest

from repro.core import (
    ifu_objective,
    mean_wealth,
    min_wealth_gain,
    profit_eth,
    profit_percent,
    profit_satoshi,
)
from repro.core.metrics import average_profit, total_profit
from repro.core.multi_ifu import wealth_of


class TestProfitMetrics:
    def test_profit_eth(self):
        assert profit_eth(2.7333, 2.5) == pytest.approx(0.2333)

    def test_profit_percent_case3(self):
        # Case 3's L2 balance gain: 1.2333 vs 1.0 = +23.3% (paper: 24%).
        assert profit_percent(1.2333, 1.0) == pytest.approx(23.33, abs=0.01)

    def test_profit_percent_zero_baseline(self):
        assert profit_percent(5.0, 0.0) == 0.0

    def test_profit_satoshi(self):
        assert profit_satoshi(2.0, 1.0) == pytest.approx(10**8)

    def test_total_and_average(self):
        profits = [0.1, 0.3, 0.2]
        assert total_profit(profits) == pytest.approx(0.6)
        assert average_profit(profits) == pytest.approx(0.2)

    def test_average_of_empty(self):
        assert average_profit([]) == 0.0


class TestObjectives:
    def test_mean_wealth(self):
        assert mean_wealth({"a": 2.0, "b": 4.0}) == pytest.approx(3.0)

    def test_min_wealth(self):
        assert min_wealth_gain({"a": 2.0, "b": 4.0}) == pytest.approx(2.0)

    def test_empty_objectives(self):
        assert mean_wealth({}) == 0.0
        assert min_wealth_gain({}) == 0.0

    def test_resolve_by_name(self):
        assert ifu_objective("mean") is mean_wealth
        assert ifu_objective("min") is min_wealth_gain

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            ifu_objective("max")

    def test_wealth_of(self, basic_state):
        wealth = wealth_of(basic_state, ("alice", "bob"))
        assert wealth["alice"] == pytest.approx(basic_state.wealth("alice"))
        assert set(wealth) == {"alice", "bob"}
