"""Tests for the PAROLE attack orchestrator (Algorithm 1)."""

import pytest

from repro.config import AttackConfig
from repro.core import ParoleAttack
from repro.rollup import NFTTransaction, TxKind
from repro.workloads.scenarios import IFU


@pytest.fixture
def attack(tiny_config):
    return ParoleAttack(
        config=AttackConfig(
            ifu_accounts=(IFU,),
            gentranseq=tiny_config.with_overrides(
                episodes=10, steps_per_episode=40, seed=3
            ),
        )
    )


class TestRun:
    def test_attack_on_case_study_profits(self, attack, case_workload):
        outcome = attack.run(case_workload.pre_state, case_workload.transactions)
        assert outcome.assessment.has_opportunity
        assert outcome.attacked
        assert outcome.profit > 0
        assert outcome.per_ifu_profit[IFU] > 0

    def test_executed_sequence_is_permutation(self, attack, case_workload):
        outcome = attack.run(case_workload.pre_state, case_workload.transactions)
        assert sorted(tx.tx_hash for tx in outcome.executed_sequence) == sorted(
            tx.tx_hash for tx in case_workload.transactions
        )

    def test_precheck_blocks_hopeless_sets(self, attack, case_workload):
        # Only third-party transfers: no price movement, no IFU involvement.
        txs = (
            NFTTransaction(kind=TxKind.TRANSFER, sender="U1", recipient="U2", nonce=0),
            NFTTransaction(kind=TxKind.TRANSFER, sender="U13", recipient="U3", nonce=1),
        )
        outcome = attack.run(case_workload.pre_state, txs)
        assert not outcome.attacked
        assert outcome.result is None
        assert outcome.executed_sequence == txs
        assert outcome.profit == 0.0

    def test_precheck_can_be_disabled(self, case_workload, tiny_config):
        attack = ParoleAttack(
            config=AttackConfig(
                ifu_accounts=(IFU,),
                gentranseq=tiny_config,
                require_arbitrage_precheck=False,
            )
        )
        txs = (
            NFTTransaction(kind=TxKind.TRANSFER, sender="U1", recipient="U2", nonce=0),
            NFTTransaction(kind=TxKind.TRANSFER, sender="U13", recipient="U3", nonce=1),
        )
        outcome = attack.run(case_workload.pre_state, txs)
        assert outcome.result is not None  # GENTRANSEQ ran anyway

    def test_outcomes_accumulate(self, attack, case_workload):
        attack.run(case_workload.pre_state, case_workload.transactions)
        attack.run(case_workload.pre_state, case_workload.transactions)
        assert len(attack.outcomes) == 2
        assert attack.total_profit() >= 0


class TestReordererAdapter:
    def test_as_reorderer_returns_permutation(self, attack, case_workload):
        reorder = attack.as_reorderer()
        new_order = reorder(case_workload.pre_state, case_workload.transactions)
        assert sorted(tx.tx_hash for tx in new_order) == sorted(
            tx.tx_hash for tx in case_workload.transactions
        )

    def test_reorderer_feeds_adversarial_aggregator(self, attack, case_workload):
        from repro.rollup import AdversarialAggregator

        aggregator = AdversarialAggregator("evil", attack.as_reorderer())
        result = aggregator.process(
            case_workload.pre_state, case_workload.transactions
        )
        assert result.reordered
        assert aggregator.rounds_attacked == 1
