"""Tests for the GENTRANSEQ module."""

import pytest

from repro.config import GenTranSeqConfig
from repro.core import GenTranSeq
from repro.workloads.scenarios import IFU


@pytest.fixture
def module():
    return GenTranSeq(
        config=GenTranSeqConfig(episodes=10, steps_per_episode=40, seed=3)
    )


class TestOptimize:
    def test_finds_profit_on_case_study(self, module, case_workload):
        result = module.optimize(
            case_workload.pre_state, case_workload.transactions, (IFU,)
        )
        assert result.improved
        assert result.profit > 0.05
        assert result.best_objective > result.original_objective

    def test_best_sequence_is_permutation(self, module, case_workload):
        result = module.optimize(
            case_workload.pre_state, case_workload.transactions, (IFU,)
        )
        assert sorted(tx.tx_hash for tx in result.best_sequence) == sorted(
            tx.tx_hash for tx in case_workload.transactions
        )

    def test_history_length_matches_episodes(self, module, case_workload):
        result = module.optimize(
            case_workload.pre_state, case_workload.transactions, (IFU,)
        )
        assert len(result.episode_rewards) == 10

    def test_original_objective_matches_case1(self, module, case_workload):
        result = module.optimize(
            case_workload.pre_state, case_workload.transactions, (IFU,)
        )
        assert result.original_objective == pytest.approx(2.5)

    def test_result_records_elapsed(self, module, case_workload):
        result = module.optimize(
            case_workload.pre_state, case_workload.transactions, (IFU,)
        )
        assert result.elapsed_seconds > 0

    def test_agent_reused_across_calls(self, module, case_workload):
        module.optimize(case_workload.pre_state, case_workload.transactions, (IFU,))
        agent_first = module._agent
        module.optimize(case_workload.pre_state, case_workload.transactions, (IFU,))
        assert module._agent is agent_first

    def test_agent_rebuilt_on_shape_change(self, module, case_workload):
        module.optimize(case_workload.pre_state, case_workload.transactions, (IFU,))
        agent_first = module._agent
        module.optimize(
            case_workload.pre_state, case_workload.transactions[:5], (IFU,)
        )
        assert module._agent is not agent_first


class TestInference:
    def test_infer_runs_without_learning(self, module, case_workload):
        module.optimize(case_workload.pre_state, case_workload.transactions, (IFU,))
        result = module.infer(
            case_workload.pre_state, case_workload.transactions, (IFU,), max_swaps=10
        )
        assert result.best_objective >= result.original_objective
        assert len(result.episode_rewards) == 0

    def test_inference_memory_zero_before_training(self):
        fresh = GenTranSeq()
        assert fresh.inference_memory_bytes() == 0

    def test_inference_memory_positive_after_training(self, module, case_workload):
        module.optimize(case_workload.pre_state, case_workload.transactions, (IFU,))
        assert module.inference_memory_bytes() > 0
