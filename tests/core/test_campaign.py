"""Tests for multi-round attack campaigns."""

import pytest

from repro.config import GenTranSeqConfig, WorkloadConfig
from repro.core import AttackCampaign, cold_vs_warm


@pytest.fixture
def configs():
    workload = WorkloadConfig(
        mempool_size=10, num_users=8, num_ifus=1,
        min_ifu_involvement=3, seed=0,
    )
    gts = GenTranSeqConfig(episodes=3, steps_per_episode=20, seed=0)
    return workload, gts


class TestCampaign:
    def test_runs_requested_rounds(self, configs):
        workload, gts = configs
        report = AttackCampaign(workload, gts).run(3)
        assert len(report.rounds) == 3
        assert [r.round_index for r in report.rounds] == [0, 1, 2]

    def test_total_profit_sums_rounds(self, configs):
        workload, gts = configs
        report = AttackCampaign(workload, gts).run(3)
        assert report.total_profit_eth == pytest.approx(sum(report.profits()))

    def test_rounds_see_different_workloads(self, configs):
        workload, gts = configs
        campaign = AttackCampaign(workload, gts)
        first = campaign._round_workload(0)
        second = campaign._round_workload(1)
        assert [tx.tx_hash for tx in first.transactions] != [
            tx.tx_hash for tx in second.transactions
        ]

    def test_agent_persists_across_rounds(self, configs):
        workload, gts = configs
        campaign = AttackCampaign(workload, gts)
        campaign.run(2)
        agent = campaign.attack.gentranseq._agent
        assert agent is not None
        steps_after_two = agent.steps
        campaign.run(1)
        assert campaign.attack.gentranseq._agent is agent
        assert agent.steps > steps_after_two

    def test_hit_rate_bounds(self, configs):
        workload, gts = configs
        report = AttackCampaign(workload, gts).run(3)
        assert 0.0 <= report.hit_rate <= 1.0

    def test_split_halves(self, configs):
        workload, gts = configs
        report = AttackCampaign(workload, gts).run(4)
        early, late = report.split_halves()
        assert len(early) == 2 and len(late) == 2


class TestColdVsWarm:
    def test_same_round_count(self, configs):
        workload, gts = configs
        cold, warm = cold_vs_warm(workload, gts, rounds=2)
        assert len(cold.rounds) == len(warm.rounds) == 2

    def test_cold_rounds_independent_of_each_other(self, configs):
        """Cold round 0 equals warm round 0: both start untrained on the
        same workload."""
        workload, gts = configs
        cold, warm = cold_vs_warm(workload, gts, rounds=2)
        assert cold.rounds[0].profit_eth == pytest.approx(
            warm.rounds[0].profit_eth
        )
