"""Tests for the insertion-action environment variant."""

import pytest

from repro.config import GenTranSeqConfig
from repro.core import (
    InsertionReorderEnv,
    ReorderEnv,
    insertion_action_table,
)
from repro.errors import DRLError
from repro.workloads import CASE3_ORDER
from repro.workloads.scenarios import IFU


@pytest.fixture
def env(case_workload):
    return InsertionReorderEnv(
        pre_state=case_workload.pre_state,
        transactions=case_workload.transactions,
        ifus=(IFU,),
        config=GenTranSeqConfig(steps_per_episode=20, seed=0),
    )


class TestActionTable:
    def test_count_is_n_times_n_minus_1(self):
        assert len(insertion_action_table(8)) == 8 * 7

    def test_no_identity_moves(self):
        assert all(i != j for i, j in insertion_action_table(6))

    def test_env_action_count(self, env):
        assert env.action_count == 56


class TestDynamics:
    def test_move_front_to_back(self, env):
        env.reset()
        action = env._actions.index((0, 7))
        env.step(action)
        assert env.current_order() == (1, 2, 3, 4, 5, 6, 7, 0)

    def test_move_back_to_front(self, env):
        env.reset()
        action = env._actions.index((7, 0))
        env.step(action)
        assert env.current_order() == (7, 0, 1, 2, 3, 4, 5, 6)

    def test_order_stays_a_permutation(self, env):
        env.reset()
        for action in range(0, env.action_count, 7):
            env.step(action % env.action_count)
        assert sorted(env.current_order()) == list(range(8))

    def test_invalid_action_raises(self, env):
        env.reset()
        with pytest.raises(DRLError):
            env.step(56)

    def test_reset_restores_identity(self, env):
        env.reset()
        env.step(0)
        env.reset()
        assert env.current_order() == tuple(range(8))


class TestScoringSharedWithSwapEnv:
    def test_same_objective_for_same_order(self, case_workload):
        swap_env = ReorderEnv(
            pre_state=case_workload.pre_state,
            transactions=case_workload.transactions,
            ifus=(IFU,),
        )
        insert_env = InsertionReorderEnv(
            pre_state=case_workload.pre_state,
            transactions=case_workload.transactions,
            ifus=(IFU,),
        )
        for order in (tuple(range(8)), CASE3_ORDER):
            assert (
                swap_env.evaluate_order(order)["objective"]
                == insert_env.evaluate_order(order)["objective"]
            )

    def test_profitable_insertion_rewarded(self, env):
        found = False
        for action in range(env.action_count):
            env.reset()
            _, reward, _, info = env.step(action)
            if info["feasible"] and info["delta"] > 0:
                assert reward > 0
                found = True
                break
        assert found, "no single profitable insertion in the case study"
