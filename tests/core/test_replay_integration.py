"""Integration tests: the environments never replay from scratch.

Acceptance criterion of the replay acceleration layer: after the single
baseline replay at construction, every ``ReorderEnv.step`` (and solver
``score``) is served by an incremental resume or a permutation-cache
hit — verified through the engine counters ``replay_stats`` exposes.
"""

from __future__ import annotations

import numpy as np

from repro.config import GenTranSeqConfig
from repro.core import InsertionReorderEnv, ReorderEnv
from repro.solvers import HillClimbSolver, SimulatedAnnealingSolver
from repro.solvers.base import ReorderProblem
from repro.solvers.profiling import profile_solver
from repro.workloads.scenarios import IFU


def _env(case_workload, cls=ReorderEnv, **config_overrides):
    config = GenTranSeqConfig(
        steps_per_episode=20, seed=0, **config_overrides
    )
    return cls(
        pre_state=case_workload.pre_state,
        transactions=case_workload.transactions,
        ifus=(IFU,),
        config=config,
    )


class TestReorderEnvReplayBehaviour:
    def test_single_scratch_replay_only(self, case_workload):
        env = _env(case_workload)
        stats = env.replay_stats()
        assert stats["scratch_replays"] == 1  # the construction baseline
        rng = np.random.default_rng(0)
        for _ in range(3):
            env.reset()
            for _ in range(10):
                env.step(int(rng.integers(env.action_count)))
        stats = env.replay_stats()
        assert stats["scratch_replays"] == 1
        assert stats["incremental_replays"] > 0

    def test_reset_is_cache_hit(self, case_workload):
        env = _env(case_workload)
        before = env.replay_stats()
        env.reset()
        after = env.replay_stats()
        assert after["cache_hits"] == before["cache_hits"] + 1
        assert after["scratch_replays"] == before["scratch_replays"]
        assert after["incremental_replays"] == before["incremental_replays"]

    def test_revisited_order_hits_cache(self, case_workload):
        env = _env(case_workload)
        env.reset()
        env.step(0)  # swap (0, 1)
        misses_after_first = env.replay_stats()["cache_misses"]
        env.step(0)  # swap back -> identity, seeded at construction
        stats = env.replay_stats()
        assert stats["cache_misses"] == misses_after_first
        assert stats["cache_hit_rate"] > 0.0

    def test_evaluations_identical_to_fresh_env(self, case_workload):
        """Cached/incremental evaluations equal a fresh environment's."""
        env = _env(case_workload)
        fresh = _env(case_workload)
        rng = np.random.default_rng(3)
        orders = [
            tuple(int(x) for x in rng.permutation(len(case_workload.transactions)))
            for _ in range(10)
        ]
        # Evaluate twice on env (second pass all cache hits) and once on
        # the fresh env; every objective must agree exactly.
        for order in orders + orders:
            mine = env.evaluate_order(order)
            theirs = fresh.evaluate_order(order)
            assert mine["objective"] == theirs["objective"]
            assert mine["feasible"] == theirs["feasible"]
            assert mine["executed_count"] == theirs["executed_count"]

    def test_insertion_env_uses_engine_too(self, case_workload):
        env = _env(case_workload, cls=InsertionReorderEnv)
        env.reset()
        for action in range(5):
            env.step(action)
        stats = env.replay_stats()
        assert stats["scratch_replays"] == 1
        assert stats["incremental_replays"] >= 1

    def test_lru_eviction_bounded(self, case_workload):
        env = _env(case_workload, evaluation_cache_size=4)
        rng = np.random.default_rng(1)
        for _ in range(20):
            env.evaluate_order(
                tuple(int(x) for x in rng.permutation(8))
            )
        stats = env.replay_stats()
        assert stats["cache_evictions"] > 0
        assert len(env._eval_cache) <= 4


class TestSolverProfilingSurface:
    def test_profiled_run_reports_replay_stats(self, case_workload):
        problem = ReorderProblem(
            pre_state=case_workload.pre_state,
            transactions=case_workload.transactions,
            ifus=(IFU,),
        )
        run = profile_solver(HillClimbSolver(max_rounds=3), problem)
        # Neighbourhood sweeps are batch-kernel candidates now; only the
        # per-round post-swap refresh still touches the incremental path
        # (and is usually a cache hit).
        assert run.replay_stats["batch_candidates"] > 0
        assert run.replay_stats["scratch_replays"] == 0  # baseline predates run
        assert 0.0 <= run.cache_hit_rate <= 1.0
        assert run.mean_resume_depth >= 0.0

    def test_annealing_benefits_from_cache(self, case_workload):
        problem = ReorderProblem(
            pre_state=case_workload.pre_state,
            transactions=case_workload.transactions,
            ifus=(IFU,),
        )
        SimulatedAnnealingSolver(iterations=200, seed=0).solve(problem)
        stats = problem.replay_stats()
        # Annealing revisits swap neighbours constantly; the permutation
        # cache must absorb a meaningful share of the evaluations.
        assert stats["cache_hits"] > 0
        assert stats["scratch_replays"] == 1
