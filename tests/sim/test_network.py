"""Tests for the simulated network."""

import numpy as np
import pytest

from repro.sim import EventQueue, LatencyModel, SimNetwork
from repro.sim.events import SimError


@pytest.fixture
def setup():
    queue = EventQueue()
    network = SimNetwork(
        queue, latency=LatencyModel(base=0.1, jitter=0.0),
        rng=np.random.default_rng(0),
    )
    inbox = {"a": [], "b": []}
    network.register("a", lambda m: inbox["a"].append(m))
    network.register("b", lambda m: inbox["b"].append(m))
    return queue, network, inbox


class TestDelivery:
    def test_message_arrives_after_latency(self, setup):
        queue, network, inbox = setup
        network.send("a", "b", "ping", {"x": 1})
        queue.run()
        assert len(inbox["b"]) == 1
        message = inbox["b"][0]
        assert message.kind == "ping"
        assert message.payload == {"x": 1}
        assert message.delivered_at == pytest.approx(0.1)

    def test_unknown_recipient_rejected(self, setup):
        _, network, _ = setup
        with pytest.raises(SimError):
            network.send("a", "ghost", "ping")

    def test_duplicate_registration_rejected(self, setup):
        _, network, _ = setup
        with pytest.raises(SimError):
            network.register("a", lambda m: None)

    def test_jitter_varies_latency(self):
        queue = EventQueue()
        network = SimNetwork(
            queue, latency=LatencyModel(base=0.1, jitter=0.5),
            rng=np.random.default_rng(1),
        )
        arrivals = []
        network.register("x", lambda m: arrivals.append(m.delivered_at))
        network.register("y", lambda m: None)
        for _ in range(10):
            network.send("y", "x", "ping")
        queue.run()
        assert len(set(arrivals)) > 1
        assert all(t >= 0.1 for t in arrivals)

    def test_per_link_latency_override(self, setup):
        queue, network, inbox = setup
        network.set_link_latency("a", "b", LatencyModel(base=5.0, jitter=0.0))
        network.send("a", "b", "slow")
        queue.run()
        assert inbox["b"][0].delivered_at == pytest.approx(5.0)

    def test_broadcast_reaches_everyone_else(self, setup):
        queue, network, inbox = setup
        count = network.broadcast("a", "hello")
        queue.run()
        assert count == 1
        assert len(inbox["b"]) == 1
        assert len(inbox["a"]) == 0


class TestFailures:
    def test_partition_blocks_delivery(self, setup):
        queue, network, inbox = setup
        network.partition("a", "b")
        delivered = network.send("a", "b", "ping")
        queue.run()
        assert not delivered
        assert inbox["b"] == []
        assert network.dropped == [("a", "b", "ping")]

    def test_heal_restores_link(self, setup):
        queue, network, inbox = setup
        network.partition("a", "b")
        network.heal("a", "b")
        assert network.send("a", "b", "ping")
        queue.run()
        assert len(inbox["b"]) == 1

    def test_drop_rate(self):
        queue = EventQueue()
        network = SimNetwork(
            queue, latency=LatencyModel(base=0.0, jitter=0.0),
            rng=np.random.default_rng(0), drop_rate=0.5,
        )
        received = []
        network.register("x", lambda m: received.append(m))
        network.register("y", lambda m: None)
        for _ in range(100):
            network.send("y", "x", "ping")
        queue.run()
        assert 20 < len(received) < 80
        assert len(received) + len(network.dropped) == 100

    def test_invalid_drop_rate_rejected(self):
        with pytest.raises(SimError):
            SimNetwork(EventQueue(), drop_rate=1.0)

    def test_set_drop_rate_validates(self, setup):
        _, network, _ = setup
        network.set_drop_rate(0.3)
        assert network.drop_rate == 0.3
        with pytest.raises(SimError):
            network.set_drop_rate(1.0)
        with pytest.raises(SimError):
            network.set_drop_rate(-0.1)


class TestLatencyModelValidation:
    def test_negative_base_rejected_at_construction(self):
        """Regression: a negative base used to surface much later as a
        'cannot schedule into the past' SimError inside send()."""
        with pytest.raises(SimError):
            LatencyModel(base=-0.01)

    def test_non_finite_base_and_jitter_rejected(self):
        with pytest.raises(SimError):
            LatencyModel(base=float("nan"))
        with pytest.raises(SimError):
            LatencyModel(base=float("inf"))
        with pytest.raises(SimError):
            LatencyModel(base=0.1, jitter=float("inf"))

    def test_zero_base_still_valid(self):
        assert LatencyModel(base=0.0, jitter=0.0).sample(
            np.random.default_rng(0)
        ) == 0.0


class TestBroadcastDeterminism:
    @staticmethod
    def _run_broadcasts(seed):
        queue = EventQueue()
        network = SimNetwork(
            queue, latency=LatencyModel(base=0.05, jitter=0.02),
            rng=np.random.default_rng(seed), drop_rate=0.3,
        )
        log = []
        for name in ("a", "b", "c", "d"):
            network.register(
                name, lambda m, name=name: log.append(
                    (name, m.kind, round(m.delivered_at, 12))
                )
            )
        network.partition("a", "c")
        for i in range(20):
            network.broadcast("a", f"msg-{i}")
        queue.run()
        return log, list(network.dropped)

    def test_same_seed_same_delivery_and_drop_logs(self):
        """Partitions plus a nonzero drop rate stay fully deterministic:
        the same seed yields identical delivered and dropped logs."""
        first = self._run_broadcasts(seed=7)
        second = self._run_broadcasts(seed=7)
        assert first == second
        delivered, dropped = first
        assert delivered and dropped  # both paths actually exercised

    def test_partitioned_peer_never_hears_broadcast(self):
        delivered, dropped = self._run_broadcasts(seed=7)
        assert all(name != "c" for name, _, _ in delivered)
        assert sum(1 for _, target, _ in dropped if target == "c") == 20

    def test_different_seed_changes_drops(self):
        assert self._run_broadcasts(seed=7)[0] != self._run_broadcasts(seed=8)[0]
