"""Tests for the simulated network."""

import numpy as np
import pytest

from repro.sim import EventQueue, LatencyModel, SimNetwork
from repro.sim.events import SimError


@pytest.fixture
def setup():
    queue = EventQueue()
    network = SimNetwork(
        queue, latency=LatencyModel(base=0.1, jitter=0.0),
        rng=np.random.default_rng(0),
    )
    inbox = {"a": [], "b": []}
    network.register("a", lambda m: inbox["a"].append(m))
    network.register("b", lambda m: inbox["b"].append(m))
    return queue, network, inbox


class TestDelivery:
    def test_message_arrives_after_latency(self, setup):
        queue, network, inbox = setup
        network.send("a", "b", "ping", {"x": 1})
        queue.run()
        assert len(inbox["b"]) == 1
        message = inbox["b"][0]
        assert message.kind == "ping"
        assert message.payload == {"x": 1}
        assert message.delivered_at == pytest.approx(0.1)

    def test_unknown_recipient_rejected(self, setup):
        _, network, _ = setup
        with pytest.raises(SimError):
            network.send("a", "ghost", "ping")

    def test_duplicate_registration_rejected(self, setup):
        _, network, _ = setup
        with pytest.raises(SimError):
            network.register("a", lambda m: None)

    def test_jitter_varies_latency(self):
        queue = EventQueue()
        network = SimNetwork(
            queue, latency=LatencyModel(base=0.1, jitter=0.5),
            rng=np.random.default_rng(1),
        )
        arrivals = []
        network.register("x", lambda m: arrivals.append(m.delivered_at))
        network.register("y", lambda m: None)
        for _ in range(10):
            network.send("y", "x", "ping")
        queue.run()
        assert len(set(arrivals)) > 1
        assert all(t >= 0.1 for t in arrivals)

    def test_per_link_latency_override(self, setup):
        queue, network, inbox = setup
        network.set_link_latency("a", "b", LatencyModel(base=5.0, jitter=0.0))
        network.send("a", "b", "slow")
        queue.run()
        assert inbox["b"][0].delivered_at == pytest.approx(5.0)

    def test_broadcast_reaches_everyone_else(self, setup):
        queue, network, inbox = setup
        count = network.broadcast("a", "hello")
        queue.run()
        assert count == 1
        assert len(inbox["b"]) == 1
        assert len(inbox["a"]) == 0


class TestFailures:
    def test_partition_blocks_delivery(self, setup):
        queue, network, inbox = setup
        network.partition("a", "b")
        delivered = network.send("a", "b", "ping")
        queue.run()
        assert not delivered
        assert inbox["b"] == []
        assert network.dropped == [("a", "b", "ping")]

    def test_heal_restores_link(self, setup):
        queue, network, inbox = setup
        network.partition("a", "b")
        network.heal("a", "b")
        assert network.send("a", "b", "ping")
        queue.run()
        assert len(inbox["b"]) == 1

    def test_drop_rate(self):
        queue = EventQueue()
        network = SimNetwork(
            queue, latency=LatencyModel(base=0.0, jitter=0.0),
            rng=np.random.default_rng(0), drop_rate=0.5,
        )
        received = []
        network.register("x", lambda m: received.append(m))
        network.register("y", lambda m: None)
        for _ in range(100):
            network.send("y", "x", "ping")
        queue.run()
        assert 20 < len(received) < 80
        assert len(received) + len(network.dropped) == 100

    def test_invalid_drop_rate_rejected(self):
        with pytest.raises(SimError):
            SimNetwork(EventQueue(), drop_rate=1.0)
