"""Tests for the timed rollup scenario (and actors)."""

import pytest

from repro.config import WorkloadConfig
from repro.sim import TimedRollupScenario
from repro.workloads import generate_workload


@pytest.fixture
def workload():
    return generate_workload(
        WorkloadConfig(mempool_size=16, num_users=10, num_ifus=1,
                       min_ifu_involvement=4, seed=5)
    )


class TestHonestScenario:
    def test_all_transactions_included(self, workload):
        metrics = TimedRollupScenario(workload, collect_size=8).run()
        assert metrics.transactions_included == 16
        assert metrics.batches_committed == 2

    def test_positive_inclusion_latency(self, workload):
        metrics = TimedRollupScenario(workload, collect_size=8).run()
        assert metrics.mean_inclusion_latency > 0

    def test_honest_run_unchallenged(self, workload):
        metrics = TimedRollupScenario(workload, collect_size=8).run()
        assert metrics.challenges == 0
        assert metrics.attacks_fired == 0

    def test_final_state_consistent_with_batches(self, workload):
        from repro.rollup import OVM
        from repro.rollup.fraud_proof import state_root
        scenario = TimedRollupScenario(workload, collect_size=8)
        scenario.run()
        replayed = workload.pre_state.copy()
        ovm = OVM()
        for _, batch in scenario.aggregator.batches:
            replayed = ovm.replay(replayed, batch.transactions).final_state
        assert state_root(replayed) == state_root(scenario.state)

    def test_deterministic_per_seed(self, workload):
        a = TimedRollupScenario(workload, collect_size=8, seed=3).run()
        b = TimedRollupScenario(workload, collect_size=8, seed=3).run()
        assert a.mean_inclusion_latency == b.mean_inclusion_latency

    def test_block_interval_paces_batches(self, workload):
        scenario = TimedRollupScenario(
            workload, collect_size=8, block_interval=5.0
        )
        scenario.run()
        commit_times = [t for t, _ in scenario.aggregator.batches]
        assert commit_times[0] >= 5.0


class TestAdversarialScenario:
    def test_fast_reorderer_attacks_unchallenged(self, workload):
        def reorder(pre_state, collected):
            return tuple(reversed(collected)), 0.1

        metrics = TimedRollupScenario(
            workload, collect_size=8, reorderer=reorder, reorder_deadline=1.0
        ).run()
        assert metrics.attacks_fired == 2
        assert metrics.missed_deadlines == 0
        assert metrics.challenges == 0  # reordering is invisible

    def test_slow_reorderer_misses_deadline(self, workload):
        def reorder(pre_state, collected):
            return tuple(reversed(collected)), 50.0

        metrics = TimedRollupScenario(
            workload, collect_size=8, reorderer=reorder, reorder_deadline=1.0
        ).run()
        assert metrics.attacks_fired == 0
        assert metrics.missed_deadlines == 2
        # Falling back to honest order still includes everything.
        assert metrics.transactions_included == 16

    def test_compute_cost_delays_inclusion(self, workload):
        def slow_but_allowed(pre_state, collected):
            return tuple(reversed(collected)), 1.5

        honest = TimedRollupScenario(workload, collect_size=8).run()
        attacked = TimedRollupScenario(
            workload, collect_size=8,
            reorderer=slow_but_allowed, reorder_deadline=2.0,
        ).run()
        assert (
            attacked.mean_inclusion_latency
            > honest.mean_inclusion_latency
        )

    def test_identity_reorderer_counts_no_attack(self, workload):
        def identity(pre_state, collected):
            return tuple(collected), 0.1

        metrics = TimedRollupScenario(
            workload, collect_size=8, reorderer=identity, reorder_deadline=1.0
        ).run()
        assert metrics.attacks_fired == 0
        assert metrics.missed_deadlines == 0


class TestFailureInjection:
    def test_partitioned_users_cannot_submit(self, workload):
        scenario = TimedRollupScenario(workload, collect_size=8)
        scenario.network.partition("users", "mempool")
        metrics = scenario.run()
        assert metrics.transactions_included == 0
        assert metrics.batches_committed == 0
        assert len(scenario.network.dropped) == 16

    def test_partitioned_verifier_sees_nothing(self, workload):
        scenario = TimedRollupScenario(workload, collect_size=8)
        scenario.network.partition("aggregator", "verifier-0")
        scenario.run()
        isolated, connected = scenario.verifiers
        assert isolated.reports == []
        assert len(connected.reports) > 0

    def test_healed_partition_recovers(self, workload):
        scenario = TimedRollupScenario(workload, collect_size=8)
        scenario.network.partition("users", "mempool")
        scenario.network.heal("users", "mempool")
        metrics = scenario.run()
        assert metrics.transactions_included == 16


class TestFaultPlanWiring:
    def test_scenario_accepts_fault_plan(self, workload):
        from repro.faults import FaultEvent, FaultKind, FaultPlan

        plan = FaultPlan(events=(
            FaultEvent(time=0.5, kind=FaultKind.PARTITION,
                       target="users", peer="mempool"),
            FaultEvent(time=1.2, kind=FaultKind.HEAL,
                       target="users", peer="mempool"),
        ))
        scenario = TimedRollupScenario(workload, collect_size=8, fault_plan=plan)
        metrics = scenario.run()
        assert scenario.injector is not None
        assert scenario.injector.counts_by_kind() == {
            "partition": 1, "heal": 1,
        }
        # Submissions during the outage dropped; the rest still landed.
        assert len(scenario.network.dropped) > 0
        assert metrics.transactions_included < 16

    def test_no_plan_means_no_injector(self, workload):
        assert TimedRollupScenario(workload).injector is None
