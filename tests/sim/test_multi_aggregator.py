"""Tests for multi-aggregator timed scenarios."""

import pytest

from repro.config import WorkloadConfig
from repro.sim import TimedRollupScenario
from repro.workloads import generate_workload


@pytest.fixture
def workload():
    return generate_workload(
        WorkloadConfig(mempool_size=16, num_users=10, num_ifus=1,
                       min_ifu_involvement=4, seed=5)
    )


class TestMultiAggregator:
    def test_slots_rotate_between_aggregators(self, workload):
        scenario = TimedRollupScenario(
            workload, collect_size=4, aggregator_count=2,
        )
        metrics = scenario.run()
        assert metrics.transactions_included == 16
        producers = {
            actor.name for actor in scenario.aggregators if actor.batches
        }
        assert len(producers) == 2  # both took slots

    def test_slots_never_overlap(self, workload):
        scenario = TimedRollupScenario(
            workload, collect_size=4, aggregator_count=2, block_interval=2.0,
        )
        scenario.run()
        commit_times = sorted(
            t for actor in scenario.aggregators for t, _ in actor.batches
        )
        assert all(b - a > 0 for a, b in zip(commit_times, commit_times[1:]))

    def test_only_adversarial_slot_attacks(self, workload):
        def reorder(pre_state, collected):
            return tuple(reversed(collected)), 0.1

        scenario = TimedRollupScenario(
            workload, collect_size=4, aggregator_count=4,
            reorderer=reorder, adversarial_index=1, reorder_deadline=1.0,
        )
        metrics = scenario.run()
        evil = scenario.aggregators[1]
        honest = [a for i, a in enumerate(scenario.aggregators) if i != 1]
        assert evil.attacks_fired == metrics.attacks_fired
        assert all(actor.attacks_fired == 0 for actor in honest)

    def test_multi_aggregator_chain_still_verifies(self, workload):
        scenario = TimedRollupScenario(
            workload, collect_size=4, aggregator_count=2,
        )
        metrics = scenario.run()
        assert metrics.challenges == 0

    def test_state_advances_across_aggregators(self, workload):
        from repro.rollup import OVM
        from repro.rollup.fraud_proof import state_root

        scenario = TimedRollupScenario(
            workload, collect_size=4, aggregator_count=2,
        )
        scenario.run()
        replayed = workload.pre_state.copy()
        ovm = OVM()
        ordered = sorted(
            (t, batch)
            for actor in scenario.aggregators
            for t, batch in actor.batches
        )
        for _, batch in ordered:
            replayed = ovm.replay(replayed, batch.transactions).final_state
        assert state_root(replayed) == state_root(scenario.state)

    def test_zero_aggregators_rejected(self, workload):
        with pytest.raises(ValueError):
            TimedRollupScenario(workload, aggregator_count=0)
