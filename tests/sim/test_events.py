"""Tests for the discrete-event queue."""

import pytest

from repro.sim import EventQueue
from repro.sim.events import SimError


@pytest.fixture
def queue():
    return EventQueue()


class TestScheduling:
    def test_events_run_in_time_order(self, queue):
        order = []
        queue.schedule(3.0, lambda: order.append("c"))
        queue.schedule(1.0, lambda: order.append("a"))
        queue.schedule(2.0, lambda: order.append("b"))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_ties_resolve_in_scheduling_order(self, queue):
        order = []
        queue.schedule(1.0, lambda: order.append("first"))
        queue.schedule(1.0, lambda: order.append("second"))
        queue.run()
        assert order == ["first", "second"]

    def test_now_advances_with_events(self, queue):
        times = []
        queue.schedule(2.5, lambda: times.append(queue.now))
        queue.run()
        assert times == [2.5]
        assert queue.now == 2.5

    def test_negative_delay_rejected(self, queue):
        with pytest.raises(SimError):
            queue.schedule(-1.0, lambda: None)

    def test_nested_scheduling(self, queue):
        order = []

        def outer():
            order.append("outer")
            queue.schedule(1.0, lambda: order.append("inner"))

        queue.schedule(1.0, outer)
        queue.run()
        assert order == ["outer", "inner"]
        assert queue.now == 2.0


class TestRun:
    def test_run_until_stops_early(self, queue):
        order = []
        queue.schedule(1.0, lambda: order.append("early"))
        queue.schedule(10.0, lambda: order.append("late"))
        queue.run(until=5.0)
        assert order == ["early"]
        assert queue.now == 5.0
        assert queue.pending == 1

    def test_step_returns_event(self, queue):
        queue.schedule(1.0, lambda: None, label="tick")
        event = queue.step()
        assert event is not None and event.label == "tick"
        assert queue.step() is None

    def test_processed_counter(self, queue):
        for i in range(4):
            queue.schedule(float(i), lambda: None)
        queue.run()
        assert queue.processed == 4

    def test_runaway_loop_guarded(self, queue):
        def rescheduler():
            queue.schedule(0.1, rescheduler)

        queue.schedule(0.0, rescheduler)
        with pytest.raises(SimError):
            queue.run(max_events=100)

    def test_exact_drain_at_max_events_is_not_runaway(self, queue):
        """Regression: draining in exactly ``max_events`` events used to
        raise a spurious runaway-loop SimError via the while/else."""
        for i in range(10):
            queue.schedule(float(i), lambda: None)
        assert queue.run(max_events=10) == 10
        assert queue.pending == 0

    def test_budget_exhaustion_with_pending_events_still_raises(self, queue):
        for i in range(11):
            queue.schedule(float(i), lambda: None)
        with pytest.raises(SimError):
            queue.run(max_events=10)

    def test_budget_exhaustion_beyond_until_is_not_runaway(self, queue):
        """Events past the ``until`` horizon are not runnable, so hitting
        the budget exactly at the horizon is normal exhaustion."""
        for i in range(5):
            queue.schedule(float(i), lambda: None)
        queue.schedule(100.0, lambda: None)
        assert queue.run(until=50.0, max_events=5) == 5
        assert queue.pending == 1
