"""Tests for L1 blocks and headers."""

from repro.chain import Block
from repro.crypto import MerkleTree


class TestBlockSeal:
    def test_seal_computes_payload_root(self):
        payloads = [{"kind": "deposit"}, {"kind": "batch"}]
        block = Block.seal(0, "parent", payloads, timestamp=1)
        assert block.header.payload_root == MerkleTree(payloads).root

    def test_block_hash_depends_on_payloads(self):
        a = Block.seal(0, "p", [1], timestamp=1)
        b = Block.seal(0, "p", [2], timestamp=1)
        assert a.block_hash != b.block_hash

    def test_block_hash_depends_on_height(self):
        a = Block.seal(0, "p", [1], timestamp=1)
        b = Block.seal(1, "p", [1], timestamp=1)
        assert a.block_hash != b.block_hash

    def test_block_hash_depends_on_parent(self):
        a = Block.seal(0, "p1", [1], timestamp=1)
        b = Block.seal(0, "p2", [1], timestamp=1)
        assert a.block_hash != b.block_hash

    def test_empty_block_is_sealable(self):
        block = Block.seal(3, "p", [], timestamp=4)
        assert block.payloads == ()

    def test_payloads_preserved_in_order(self):
        block = Block.seal(0, "p", ["x", "y", "z"], timestamp=1)
        assert block.payloads == ("x", "y", "z")

    def test_header_hash_matches_block_hash(self):
        block = Block.seal(0, "p", [1], timestamp=1)
        assert block.block_hash == block.header.block_hash
