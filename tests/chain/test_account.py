"""Tests for the L1 account ledger."""

import pytest
from hypothesis import given, strategies as st

from repro.chain import AccountLedger
from repro.errors import InsufficientBalanceError, UnknownAccountError


@pytest.fixture
def ledger():
    book = AccountLedger()
    book.create("alice", 100)
    book.create("bob", 50)
    return book


class TestCreation:
    def test_create_sets_balance(self, ledger):
        assert ledger.balance("alice") == 100

    def test_duplicate_create_raises(self, ledger):
        with pytest.raises(UnknownAccountError):
            ledger.create("alice")

    def test_negative_initial_balance_raises(self):
        with pytest.raises(InsufficientBalanceError):
            AccountLedger().create("x", -1)

    def test_get_or_create_idempotent(self, ledger):
        first = ledger.get_or_create("carol")
        second = ledger.get_or_create("carol")
        assert first is second

    def test_unknown_account_raises(self, ledger):
        with pytest.raises(UnknownAccountError):
            ledger.get("nobody")

    def test_contains(self, ledger):
        assert "alice" in ledger
        assert "nobody" not in ledger

    def test_len_and_iter(self, ledger):
        assert len(ledger) == 2
        assert {a.address for a in ledger} == {"alice", "bob"}


class TestTransfers:
    def test_transfer_moves_funds(self, ledger):
        ledger.transfer("alice", "bob", 30)
        assert ledger.balance("alice") == 70
        assert ledger.balance("bob") == 80

    def test_transfer_insufficient_raises(self, ledger):
        with pytest.raises(InsufficientBalanceError):
            ledger.transfer("bob", "alice", 51)

    def test_failed_transfer_leaves_balances(self, ledger):
        with pytest.raises(InsufficientBalanceError):
            ledger.transfer("bob", "alice", 51)
        assert ledger.balance("bob") == 50
        assert ledger.balance("alice") == 100

    def test_negative_amount_rejected(self, ledger):
        with pytest.raises(InsufficientBalanceError):
            ledger.transfer("alice", "bob", -5)

    def test_credit_creates_account(self, ledger):
        ledger.credit("carol", 10)
        assert ledger.balance("carol") == 10

    def test_debit_to_zero_allowed(self, ledger):
        ledger.debit("bob", 50)
        assert ledger.balance("bob") == 0

    def test_conservation(self, ledger):
        total = ledger.total_supply()
        ledger.transfer("alice", "bob", 17)
        assert ledger.total_supply() == total

    @given(st.integers(min_value=0, max_value=100))
    def test_property_transfer_conserves(self, amount):
        book = AccountLedger()
        book.create("a", 100)
        book.create("b", 0)
        book.transfer("a", "b", amount)
        assert book.total_supply() == 100
        assert book.balance("b") == amount


class TestNonces:
    def test_bump_nonce_increments(self, ledger):
        assert ledger.bump_nonce("alice") == 1
        assert ledger.bump_nonce("alice") == 2

    def test_snapshot_shape(self, ledger):
        snap = ledger.snapshot()
        assert snap["alice"] == (100, 0)
        assert snap["bob"] == (50, 0)
