"""Tests for the gas schedule (Table III calibration)."""

import pytest

from repro.chain import GasSchedule
from repro.errors import ChainError


@pytest.fixture
def schedule():
    return GasSchedule()


class TestUsagePercentages:
    """Gas usage percentages must match Table III's published values."""

    def test_mint_matches_paper(self, schedule):
        assert schedule.usage_for("mint").usage_percent == pytest.approx(90.91, abs=0.01)

    def test_transfer_matches_paper(self, schedule):
        assert schedule.usage_for("transfer").usage_percent == pytest.approx(69.84, abs=0.01)

    def test_burn_matches_paper(self, schedule):
        assert schedule.usage_for("burn").usage_percent == pytest.approx(69.82, abs=0.01)

    def test_mint_is_most_expensive(self, schedule):
        assert schedule.usage_for("mint").gas_used > schedule.usage_for("transfer").gas_used
        assert schedule.usage_for("mint").gas_used > schedule.usage_for("burn").gas_used


class TestFees:
    def test_mint_fee_253_gwei(self, schedule):
        fee_gwei = schedule.usage_for("mint").fee_wei / 10**9
        assert fee_gwei == pytest.approx(253, rel=0.01)

    def test_transfer_fee_142k_gwei(self, schedule):
        fee_gwei = schedule.usage_for("transfer").fee_wei / 10**9
        assert fee_gwei == pytest.approx(142_000, rel=0.01)

    def test_burn_fee_141k_gwei(self, schedule):
        fee_gwei = schedule.usage_for("burn").fee_wei / 10**9
        assert fee_gwei == pytest.approx(141_000, rel=0.01)

    def test_usage_fraction_in_unit_interval(self, schedule):
        for tx_type in ("mint", "transfer", "burn"):
            assert 0.0 < schedule.usage_for(tx_type).usage_fraction <= 1.0

    def test_unknown_type_raises(self, schedule):
        with pytest.raises(ChainError):
            schedule.usage_for("swap")
