"""Tests for the Optimistic Rollup Smart Contract."""

import pytest

from repro.chain import (
    BatchStatus,
    ChallengeOutcome,
    L1Chain,
    OptimisticRollupContract,
)
from repro.config import RollupConfig
from repro.errors import BatchError, BondError, ChainError, ChallengeError

BOND = 5 * 10**18
V_BOND = 2 * 10**18


@pytest.fixture
def setup():
    chain = L1Chain()
    config = RollupConfig(challenge_period_blocks=3)
    contract = OptimisticRollupContract(chain, config)
    for user, funds in (("user", 10**19), ("agg", BOND * 2), ("ver", V_BOND * 2)):
        chain.accounts.create(user, funds)
    contract.register_aggregator("agg")
    contract.register_verifier("ver")
    return chain, contract


class TestDeposits:
    def test_deposit_mints_l2_tokens(self, setup):
        chain, contract = setup
        contract.deposit("user", 10**18)
        assert contract.l2_balance("user") == 10**18

    def test_deposit_locks_l1_eth(self, setup):
        chain, contract = setup
        before = chain.accounts.balance("user")
        contract.deposit("user", 10**18)
        assert chain.accounts.balance("user") == before - 10**18

    def test_deposit_zero_rejected(self, setup):
        _, contract = setup
        with pytest.raises(ChainError):
            contract.deposit("user", 0)

    def test_withdraw_roundtrip(self, setup):
        chain, contract = setup
        before = chain.accounts.balance("user")
        contract.deposit("user", 10**18)
        contract.withdraw("user", 10**18)
        assert chain.accounts.balance("user") == before
        assert contract.l2_balance("user") == 0

    def test_overdraw_rejected(self, setup):
        _, contract = setup
        contract.deposit("user", 10**18)
        with pytest.raises(ChainError):
            contract.withdraw("user", 2 * 10**18)

    def test_tvl_includes_deposits_and_bonds(self, setup):
        chain, contract = setup
        contract.deposit("user", 10**18)
        assert contract.total_value_locked() == 10**18 + BOND + V_BOND


class TestBonds:
    def test_aggregator_bond_recorded(self, setup):
        _, contract = setup
        assert contract.aggregator_bond("agg") == BOND

    def test_duplicate_registration_rejected(self, setup):
        _, contract = setup
        with pytest.raises(BondError):
            contract.register_aggregator("agg")

    def test_unregistered_aggregator_cannot_commit(self, setup):
        _, contract = setup
        with pytest.raises(BondError):
            contract.commit_batch("stranger", "root", "state")

    def test_unregistered_verifier_cannot_challenge(self, setup):
        _, contract = setup
        contract.commit_batch("agg", "txroot", "stateroot")
        with pytest.raises(BondError):
            contract.challenge("stranger", 0, "other")


class TestBatchLifecycle:
    def test_commit_assigns_sequential_ids(self, setup):
        _, contract = setup
        a = contract.commit_batch("agg", "t1", "s1")
        b = contract.commit_batch("agg", "t2", "s2")
        assert (a.batch_id, b.batch_id) == (0, 1)

    def test_commit_starts_pending(self, setup):
        _, contract = setup
        assert contract.commit_batch("agg", "t", "s").status is BatchStatus.PENDING

    def test_in_challenge_window_initially(self, setup):
        _, contract = setup
        contract.commit_batch("agg", "t", "s")
        assert contract.in_challenge_window(0)

    def test_window_closes_after_period(self, setup):
        chain, contract = setup
        contract.commit_batch("agg", "t", "s")
        chain.seal_blocks(3)
        assert not contract.in_challenge_window(0)

    def test_finalize_inside_window_rejected(self, setup):
        _, contract = setup
        contract.commit_batch("agg", "t", "s")
        with pytest.raises(BatchError):
            contract.finalize(0)

    def test_finalize_after_window(self, setup):
        chain, contract = setup
        contract.commit_batch("agg", "t", "s")
        chain.seal_blocks(3)
        assert contract.finalize(0).status is BatchStatus.FINALIZED

    def test_finalize_idempotent(self, setup):
        chain, contract = setup
        contract.commit_batch("agg", "t", "s")
        chain.seal_blocks(3)
        contract.finalize(0)
        assert contract.finalize(0).status is BatchStatus.FINALIZED

    def test_unknown_batch_raises(self, setup):
        _, contract = setup
        with pytest.raises(BatchError):
            contract.batch(7)

    def test_commit_queues_l1_payload(self, setup):
        chain, contract = setup
        contract.commit_batch("agg", "troot", "sroot")
        block = chain.seal_block()
        kinds = [p["kind"] for p in block.payloads]
        assert "batch" in kinds


class TestChallenges:
    def test_fraud_proven_slashes_aggregator(self, setup):
        _, contract = setup
        contract.commit_batch("agg", "t", "claimed")
        outcome = contract.challenge("ver", 0, "recomputed-differs")
        assert outcome is ChallengeOutcome.UPHELD
        assert contract.aggregator_bond("agg") == 0
        assert contract.batch(0).status is BatchStatus.REVERTED

    def test_frivolous_challenge_slashes_verifier(self, setup):
        _, contract = setup
        contract.commit_batch("agg", "t", "claimed")
        outcome = contract.challenge("ver", 0, "claimed")
        assert outcome is ChallengeOutcome.REJECTED
        assert contract.verifier_bond("ver") == 0
        assert contract.batch(0).status is BatchStatus.PENDING

    def test_challenge_after_window_rejected(self, setup):
        chain, contract = setup
        contract.commit_batch("agg", "t", "claimed")
        chain.seal_blocks(3)
        with pytest.raises(ChallengeError):
            contract.challenge("ver", 0, "other")

    def test_reverted_batch_cannot_finalize(self, setup):
        chain, contract = setup
        contract.commit_batch("agg", "t", "claimed")
        contract.challenge("ver", 0, "different")
        chain.seal_blocks(3)
        with pytest.raises(BatchError):
            contract.finalize(0)

    def test_challenge_on_settled_batch_rejected(self, setup):
        chain, contract = setup
        contract.commit_batch("agg", "t", "claimed")
        contract.challenge("ver", 0, "different")  # reverted now
        with pytest.raises(ChallengeError):
            contract.challenge("ver", 0, "different")

    def test_partial_slash_fraction(self):
        chain = L1Chain()
        config = RollupConfig(slash_fraction=0.5, challenge_period_blocks=3)
        contract = OptimisticRollupContract(chain, config)
        chain.accounts.create("agg", 2 * config.aggregator_bond_wei)
        chain.accounts.create("ver", 2 * config.verifier_bond_wei)
        contract.register_aggregator("agg")
        contract.register_verifier("ver")
        contract.commit_batch("agg", "t", "claimed")
        contract.challenge("ver", 0, "differs")
        assert contract.aggregator_bond("agg") == config.aggregator_bond_wei // 2
