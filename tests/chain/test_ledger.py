"""Tests for the L1 chain."""

import pytest

from repro.chain import L1Chain
from repro.errors import ChainError


@pytest.fixture
def chain():
    return L1Chain()


class TestBlockProduction:
    def test_starts_empty(self, chain):
        assert chain.height == 0
        assert chain.head is None

    def test_seal_advances_height_and_time(self, chain):
        chain.seal_block()
        assert chain.height == 1
        assert chain.time == 1

    def test_queued_payloads_enter_next_block(self, chain):
        chain.queue_payload({"kind": "x"})
        block = chain.seal_block()
        assert block.payloads == ({"kind": "x"},)

    def test_payloads_cleared_after_seal(self, chain):
        chain.queue_payload("a")
        chain.seal_block()
        assert chain.seal_block().payloads == ()

    def test_seal_blocks_bulk(self, chain):
        blocks = chain.seal_blocks(5)
        assert len(blocks) == 5
        assert chain.height == 5

    def test_seal_negative_raises(self, chain):
        with pytest.raises(ChainError):
            chain.seal_blocks(-1)

    def test_block_at(self, chain):
        chain.seal_blocks(3)
        assert chain.block_at(1).header.height == 1

    def test_block_at_out_of_range(self, chain):
        with pytest.raises(ChainError):
            chain.block_at(0)


class TestAncestry:
    def test_ancestry_links_verified(self, chain):
        chain.seal_blocks(4)
        assert chain.verify_ancestry()

    def test_parent_hash_chains(self, chain):
        first = chain.seal_block()
        second = chain.seal_block()
        assert second.header.parent_hash == first.block_hash


class TestFindPayload:
    def test_finds_newest_first(self, chain):
        chain.queue_payload({"kind": "batch", "id": 1})
        chain.seal_block()
        chain.queue_payload({"kind": "batch", "id": 2})
        chain.seal_block()
        found = chain.find_payload(lambda p: p.get("kind") == "batch")
        assert found["id"] == 2

    def test_returns_none_when_absent(self, chain):
        chain.seal_blocks(2)
        assert chain.find_payload(lambda p: True) is None
