"""Tests for the delayed-withdrawal exit queue."""

import pytest

from repro.chain import L1Chain, OptimisticRollupContract
from repro.config import RollupConfig
from repro.errors import ChainError


@pytest.fixture
def setup():
    chain = L1Chain()
    contract = OptimisticRollupContract(
        chain, RollupConfig(challenge_period_blocks=3)
    )
    chain.accounts.create("user", 10**19)
    contract.deposit("user", 5 * 10**18)
    return chain, contract


class TestRequest:
    def test_request_locks_l2_balance(self, setup):
        _, contract = setup
        contract.request_withdrawal("user", 2 * 10**18)
        assert contract.l2_balance("user") == 3 * 10**18
        assert contract.pending_withdrawals("user") == 2 * 10**18

    def test_unlock_height_is_challenge_period_away(self, setup):
        chain, contract = setup
        unlock = contract.request_withdrawal("user", 10**18)
        assert unlock == chain.height + 3

    def test_overdraw_rejected(self, setup):
        _, contract = setup
        with pytest.raises(ChainError):
            contract.request_withdrawal("user", 6 * 10**18)


class TestClaim:
    def test_claim_before_maturity_rejected(self, setup):
        _, contract = setup
        contract.request_withdrawal("user", 10**18)
        with pytest.raises(ChainError):
            contract.claim_withdrawals("user")

    def test_claim_after_maturity_pays_l1(self, setup):
        chain, contract = setup
        l1_before = chain.accounts.balance("user")
        contract.request_withdrawal("user", 10**18)
        chain.seal_blocks(3)
        paid = contract.claim_withdrawals("user")
        assert paid == 10**18
        assert chain.accounts.balance("user") == l1_before + 10**18
        assert contract.pending_withdrawals("user") == 0

    def test_multiple_exits_batched(self, setup):
        chain, contract = setup
        contract.request_withdrawal("user", 10**18)
        contract.request_withdrawal("user", 2 * 10**18)
        chain.seal_blocks(3)
        assert contract.claim_withdrawals("user") == 3 * 10**18

    def test_immature_exits_left_queued(self, setup):
        chain, contract = setup
        contract.request_withdrawal("user", 10**18)
        chain.seal_blocks(3)
        contract.request_withdrawal("user", 2 * 10**18)  # not yet mature
        paid = contract.claim_withdrawals("user")
        assert paid == 10**18
        assert contract.pending_withdrawals("user") == 2 * 10**18

    def test_claim_with_empty_queue_rejected(self, setup):
        _, contract = setup
        with pytest.raises(ChainError):
            contract.claim_withdrawals("user")
