"""Pipeline soak: invariants, determinism, jobs-equivalence, caching."""

import dataclasses

import pytest

from repro.errors import ReproError
from repro.parallel import get_runner
from repro.streaming import (
    ScannerConfig,
    StreamConfig,
    StreamTrafficConfig,
    run_stream,
)

#: Small but real: two lanes, backlog regime, scanner exercised.
SMALL = StreamConfig(
    lanes=2,
    duration_batches=6,
    batch_size=8,
    submit_per_batch=10,
    shards=4,
    seed=0,
    traffic=StreamTrafficConfig(num_users=60, max_supply=512),
    scanner=ScannerConfig(max_swaps=6, train_episodes=1, train_steps=10),
)


class TestSoak:
    def test_soak_holds_every_invariant(self):
        report = run_stream(SMALL)
        assert report.ok
        assert report.total_violations == ()
        assert len(report.lanes) == SMALL.lanes

    def test_backlog_regime_accounted(self):
        report = run_stream(SMALL)
        for lane in report.lanes:
            assert lane.submitted == (
                SMALL.duration_batches * SMALL.submit_per_batch
            )
            # One aggregator serves batch_size per interval; the surplus
            # accumulates as backlog and nothing is lost.
            assert lane.included + lane.pending == lane.submitted

    def test_scanner_is_exercised(self):
        report = run_stream(SMALL)
        actions = report.action_totals()
        assert sum(actions.values()) == SMALL.lanes * SMALL.duration_batches
        assert 0.0 <= report.hit_rate <= 1.0

    def test_render_mentions_headlines(self):
        text = run_stream(SMALL).render()
        assert "tx/s" in text
        assert "p99" in text
        assert "OK" in text


class TestDeterminism:
    def test_same_config_byte_identical(self):
        assert (
            run_stream(SMALL).deterministic_json()
            == run_stream(SMALL).deterministic_json()
        )

    def test_different_seed_changes_payload(self):
        other = dataclasses.replace(SMALL, seed=SMALL.seed + 1)
        assert (
            run_stream(SMALL).deterministic_json()
            != run_stream(other).deterministic_json()
        )

    def test_jobs_1_and_2_byte_identical(self):
        serial = run_stream(SMALL)
        with get_runner(2) as runner:
            parallel = run_stream(SMALL, runner=runner)
        assert serial.deterministic_json() == parallel.deterministic_json()

    def test_shard_count_never_changes_results(self):
        two = dataclasses.replace(SMALL, shards=2)
        seven = dataclasses.replace(SMALL, shards=7)
        assert (
            run_stream(two).deterministic_json()
            == run_stream(seven).deterministic_json()
        )

    def test_wall_clock_excluded_from_payload(self):
        payload = run_stream(SMALL).deterministic_payload()
        flat = str(payload)
        assert "wall" not in flat
        assert "elapsed" not in flat


class TestCaching:
    def test_cached_rerun_is_byte_identical(self, tmp_path):
        cached = dataclasses.replace(SMALL, cache_dir=str(tmp_path))
        cold = run_stream(cached)
        warm = run_stream(cached)
        assert cold.deterministic_json() == warm.deterministic_json()
        # And identical to the uncached run: memoization must never
        # change results.
        assert cold.deterministic_json() == (
            run_stream(SMALL).deterministic_json()
        )


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ReproError):
            StreamConfig(lanes=0)
        with pytest.raises(ReproError):
            StreamConfig(duration_batches=0)
        with pytest.raises(ReproError):
            StreamConfig(shards=0)
