"""ShardedMempool: drain-order equivalence, duplicates, stall, requeue."""

import pytest

from repro.errors import MempoolError, MempoolStalledError
from repro.rollup.mempool import BedrockMempool
from repro.rollup.transaction import NFTTransaction, TxKind
from repro.streaming import ShardedMempool


def _mint(sender, fee, nonce, label=""):
    return NFTTransaction(
        kind=TxKind.MINT, sender=sender, priority_fee=fee, nonce=nonce,
        label=label or f"{sender}-{nonce}",
    )


def _traffic(count=120):
    """A fee distribution with plenty of exact ties."""
    fees = [0.1, 0.25, 0.25, 0.4, 0.1, 0.25]
    return [
        _mint(f"user-{i % 13}", fees[i % len(fees)], i) for i in range(count)
    ]


class TestDrainOrderEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4, 7, 16])
    def test_drain_order_matches_unsharded_pool(self, shards):
        txs = _traffic()
        reference = BedrockMempool()
        reference.submit_all(txs)
        expected = [tx.label for tx in reference.collect(len(txs))]

        pool = ShardedMempool(shards=shards)
        pool.submit_all(txs)
        drained = []
        while len(pool):
            drained.extend(tx.label for tx in pool.collect(9))
        assert drained == expected

    def test_peek_matches_collect_prefix(self):
        pool = ShardedMempool(shards=4)
        pool.submit_all(_traffic(60))
        peeked = [tx.tx_hash for tx in pool.peek(20)]
        collected = [tx.tx_hash for tx in pool.collect(20)]
        assert peeked == collected

    def test_pending_is_globally_sorted(self):
        pool = ShardedMempool(shards=4)
        pool.submit_all(_traffic(40))
        pending = pool.pending()
        assert len(pending) == 40
        keys = [(-tx.total_fee, tx.submitted_at) for tx in pending]
        assert keys == sorted(keys)


class TestAdmission:
    def test_global_stamps_are_unique_and_sequential(self):
        pool = ShardedMempool(shards=4)
        pool.submit_all(_traffic(30))
        stamps = sorted(tx.submitted_at for tx in pool.pending())
        assert stamps == list(range(1, 31))

    def test_duplicate_rejected_across_shards(self):
        pool = ShardedMempool(shards=4)
        tx = _mint("alice", 0.3, 0)
        pool.submit(tx)
        with pytest.raises(MempoolError):
            pool.submit(tx)

    def test_contains_and_len_span_all_shards(self):
        pool = ShardedMempool(shards=3)
        hashes = pool.submit_all(_traffic(20))
        assert len(pool) == 20
        assert all(tx_hash in pool for tx_hash in hashes)

    def test_drop_finds_the_owning_shard(self):
        pool = ShardedMempool(shards=4)
        hashes = pool.submit_all(_traffic(20))
        dropped = pool.drop(hashes[7])
        assert dropped.tx_hash == hashes[7]
        assert hashes[7] not in pool
        assert len(pool) == 19

    def test_drop_unknown_hash_raises(self):
        pool = ShardedMempool(shards=2)
        with pytest.raises(MempoolError):
            pool.drop("deadbeef")

    def test_rejects_zero_shards(self):
        with pytest.raises(MempoolError):
            ShardedMempool(shards=0)


class TestStall:
    def test_stalled_collect_raises(self):
        pool = ShardedMempool(shards=2)
        pool.submit_all(_traffic(10))
        pool.stall()
        with pytest.raises(MempoolStalledError):
            pool.collect(4)

    def test_stalled_pool_still_accepts_submissions(self):
        pool = ShardedMempool(shards=2)
        pool.stall()
        pool.submit(_mint("alice", 0.1, 0))
        assert len(pool) == 1
        pool.resume()
        assert len(pool.collect(1)) == 1


class TestRequeue:
    def test_requeue_restores_original_position(self):
        pool = ShardedMempool(shards=4)
        pool.submit_all(_traffic(30))
        front = pool.collect(10)
        pool.requeue(front)
        recollected = [tx.tx_hash for tx in pool.collect(10)]
        assert recollected == [tx.tx_hash for tx in front]

    def test_requeue_matches_unsharded_behaviour(self):
        txs = _traffic(40)
        reference = BedrockMempool()
        reference.submit_all(txs)
        taken = reference.collect(15)
        reference.requeue(taken)
        expected = [tx.label for tx in reference.collect(40)]

        pool = ShardedMempool(shards=4)
        pool.submit_all(txs)
        pool.requeue(pool.collect(15))
        assert [tx.label for tx in pool.collect(40)] == expected
