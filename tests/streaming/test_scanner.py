"""BatchScanner: budget policy, degradation, memoization, determinism."""

import pytest

from repro.errors import ReproError
from repro.store import ResultStore
from repro.streaming import BatchScanner, ScannerConfig
from repro.streaming import StreamTrafficConfig, TrafficGenerator

FAST = ScannerConfig(max_swaps=6, train_episodes=1, train_steps=10)


def _generator(seed=0):
    return TrafficGenerator(
        StreamTrafficConfig(num_users=40, max_supply=256), seed=seed
    )


def _batch(generator, count=10):
    return generator.pre_state.copy(), generator.next_batch(count)


class TestPolicy:
    def test_single_tx_is_skipped(self):
        generator = _generator()
        state, txs = _batch(generator, 1)
        scanner = BatchScanner(generator.ifus, config=FAST)
        ordered, outcome = scanner.scan(state, txs)
        assert ordered == txs
        assert outcome.action == "skipped"
        assert outcome.evaluations == 0

    def test_oversize_batch_degrades_to_identity(self):
        generator = _generator()
        config = ScannerConfig(
            max_batch_size=4, max_swaps=6, train_episodes=1, train_steps=10
        )
        state, txs = _batch(generator, 8)
        scanner = BatchScanner(generator.ifus, config=config)
        ordered, outcome = scanner.scan(state, txs)
        assert ordered == txs
        assert outcome.action == "degraded"
        assert "max_batch_size" in outcome.reason

    def test_blown_eval_budget_degrades_to_identity(self):
        generator = _generator()
        # population 8 -> 6 * 64 = 384 estimated evaluations > 100.
        config = ScannerConfig(
            eval_budget_per_batch=100, max_swaps=6, population=8,
            train_episodes=1, train_steps=10,
        )
        assert config.estimated_evaluations(10) > 100
        state, txs = _batch(generator, 10)
        scanner = BatchScanner(generator.ifus, config=config)
        ordered, outcome = scanner.scan(state, txs)
        assert ordered == txs
        assert outcome.action == "degraded"
        assert "budget" in outcome.reason

    def test_no_opportunity_is_skipped_without_solving(self):
        generator = _generator()
        state, txs = _batch(generator, 8)
        scanner = BatchScanner(["nobody"], config=FAST)
        ordered, outcome = scanner.scan(state, txs)
        assert ordered == txs
        assert outcome.action == "skipped"
        assert outcome.evaluations == 0

    def test_served_batch_is_a_permutation(self):
        generator = _generator(seed=2)
        state, txs = _batch(generator, 10)
        scanner = BatchScanner(generator.ifus, config=FAST)
        ordered, outcome = scanner.scan(state, txs)
        assert sorted(tx.tx_hash for tx in ordered) == sorted(
            tx.tx_hash for tx in txs
        )
        assert outcome.action in ("reordered", "identity")
        assert outcome.evaluations > 0

    def test_rejects_bad_config(self):
        with pytest.raises(ReproError):
            ScannerConfig(max_batch_size=1)
        with pytest.raises(ReproError):
            ScannerConfig(population=0)


class TestDeterminism:
    def test_same_batch_same_decision(self):
        first_gen = _generator(seed=5)
        second_gen = _generator(seed=5)
        first = BatchScanner(first_gen.ifus, config=FAST)
        second = BatchScanner(second_gen.ifus, config=FAST)
        for _ in range(4):
            ordered_a, outcome_a = first.scan(*_batch(first_gen, 8))
            ordered_b, outcome_b = second.scan(*_batch(second_gen, 8))
            assert [t.tx_hash for t in ordered_a] == [
                t.tx_hash for t in ordered_b
            ]
            assert (
                outcome_a.deterministic_payload()
                == outcome_b.deterministic_payload()
            )

    def test_deterministic_payload_excludes_wall_clock(self):
        generator = _generator()
        scanner = BatchScanner(generator.ifus, config=FAST)
        _, outcome = scanner.scan(*_batch(generator, 6))
        assert "elapsed_ms" not in outcome.deterministic_payload()


class TestMemoization:
    def test_cache_serves_identical_order_and_counts(self, tmp_path):
        store = ResultStore(tmp_path).namespaced("stream")
        generator = _generator(seed=7)
        state, txs = _batch(generator, 8)

        cold = BatchScanner(generator.ifus, config=FAST, store=store)
        cold_order, cold_outcome = cold.scan(state.copy(), txs)
        assert not cold_outcome.cached

        warm = BatchScanner(generator.ifus, config=FAST, store=store)
        warm_order, warm_outcome = warm.scan(state.copy(), txs)
        assert warm_outcome.cached
        assert [t.tx_hash for t in warm_order] == [
            t.tx_hash for t in cold_order
        ]
        # The cached payload preserves evaluations, so warm and cold
        # deterministic views are byte-identical.
        assert (
            warm_outcome.deterministic_payload()
            == cold_outcome.deterministic_payload()
        )

    def test_different_config_misses_the_cache(self, tmp_path):
        store = ResultStore(tmp_path).namespaced("stream")
        generator = _generator(seed=7)
        state, txs = _batch(generator, 8)
        BatchScanner(generator.ifus, config=FAST, store=store).scan(
            state.copy(), txs
        )
        other = ScannerConfig(max_swaps=5, train_episodes=1, train_steps=10)
        _, outcome = BatchScanner(
            generator.ifus, config=other, store=store
        ).scan(state.copy(), txs)
        assert not outcome.cached


class TestAccounting:
    def test_action_counts_and_hit_rate(self):
        generator = _generator(seed=3)
        scanner = BatchScanner(generator.ifus, config=FAST)
        scanner.scan(*_batch(generator, 1))  # skipped
        for _ in range(3):
            scanner.scan(*_batch(generator, 8))
        counts = scanner.action_counts()
        assert sum(counts.values()) == 4
        assert counts.get("skipped", 0) >= 1
        assert 0.0 <= scanner.hit_rate <= 1.0
