"""Traffic generator: determinism, feasibility, population shape."""

import pytest

from repro.errors import ReproError
from repro.rollup.state import ExecutionMode
from repro.streaming import StreamTrafficConfig, TrafficGenerator

SMALL = StreamTrafficConfig(num_users=50, max_supply=256)


class TestDeterminism:
    def test_same_seed_identical_stream(self):
        first = TrafficGenerator(SMALL, seed=9).next_batch(60)
        second = TrafficGenerator(SMALL, seed=9).next_batch(60)
        assert [tx.tx_hash for tx in first] == [tx.tx_hash for tx in second]

    def test_batch_boundaries_do_not_matter(self):
        whole = TrafficGenerator(SMALL, seed=4).next_batch(40)
        chunked = TrafficGenerator(SMALL, seed=4)
        pieces = chunked.next_batch(15) + chunked.next_batch(25)
        assert [tx.tx_hash for tx in whole] == [tx.tx_hash for tx in pieces]

    def test_different_seed_changes_stream(self):
        first = TrafficGenerator(SMALL, seed=1).next_batch(40)
        second = TrafficGenerator(SMALL, seed=2).next_batch(40)
        assert [tx.tx_hash for tx in first] != [tx.tx_hash for tx in second]

    def test_config_seed_is_default(self):
        cfg = StreamTrafficConfig(num_users=50, max_supply=256, seed=7)
        assert TrafficGenerator(cfg).seed == 7


class TestFeasibility:
    def test_stream_is_strictly_feasible_in_generation_order(self):
        generator = TrafficGenerator(SMALL, seed=3)
        state = generator.pre_state.copy()
        state.mode = ExecutionMode.STRICT
        for tx in generator.next_batch(150):
            assert state.apply(tx).executed, tx.describe()

    def test_nonces_and_labels_are_sequential(self):
        generator = TrafficGenerator(SMALL, seed=0)
        batch = generator.next_batch(25)
        assert [tx.nonce for tx in batch] == list(range(25))
        assert [tx.label for tx in batch] == [f"stream-{i}" for i in range(25)]
        assert generator.generated == 25

    def test_fees_are_positive(self):
        batch = TrafficGenerator(SMALL, seed=5).next_batch(50)
        assert all(tx.priority_fee > 0 for tx in batch)


class TestPopulation:
    def test_every_ifu_seeded_with_a_token(self):
        cfg = StreamTrafficConfig(
            num_users=40, num_ifus=3, max_supply=64, premint_fraction=0.0
        )
        generator = TrafficGenerator(cfg, seed=0)
        for ifu in generator.ifus:
            assert generator.pre_state.holdings(ifu) >= 1

    def test_zipf_concentrates_volume_on_hot_ranks(self):
        generator = TrafficGenerator(SMALL, seed=11)
        batch = generator.next_batch(400)
        hot = sum(1 for tx in batch if tx.involves(generator.users[0]))
        cold = sum(1 for tx in batch if tx.involves(generator.users[-1]))
        assert hot > cold

    def test_involvement_counts_cover_every_ifu(self):
        cfg = StreamTrafficConfig(num_users=50, num_ifus=2, max_supply=256)
        generator = TrafficGenerator(cfg, seed=1)
        counts = generator.involvement(generator.next_batch(200))
        assert set(counts) == set(generator.ifus)
        assert sum(counts.values()) > 0


class TestValidation:
    def test_rejects_bad_mix(self):
        with pytest.raises(ReproError):
            StreamTrafficConfig(tx_type_mix=(0.5, 0.5, 0.5))

    def test_rejects_more_ifus_than_users(self):
        with pytest.raises(ReproError):
            StreamTrafficConfig(num_users=3, num_ifus=4)

    def test_rejects_supply_below_ifus(self):
        with pytest.raises(ReproError):
            StreamTrafficConfig(num_users=10, num_ifus=4, max_supply=3)

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ReproError):
            TrafficGenerator(SMALL, seed=0).next_batch(0)
