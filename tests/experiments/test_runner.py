"""Tests for the run-everything orchestrator."""

import json

import pytest

from repro.errors import ReproError
from repro.experiments import REGISTRY, run_all
from repro.experiments.common import EffortPreset

MICRO = EffortPreset(name="micro", episodes=2, steps_per_episode=10, trials=1)


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = {spec.experiment_id for spec in REGISTRY}
        assert ids >= {
            "table3", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "defense",
        }

    def test_ids_unique(self):
        ids = [spec.experiment_id for spec in REGISTRY]
        assert len(ids) == len(set(ids))


class TestDataclassList:
    def test_object_with_value_attribute_passes_through(self):
        """Regression: any repro-module object exposing ``.value`` used to
        be collapsed to that attribute as if it were an enum."""
        from repro.experiments.runner import _dataclass_list
        from repro.rollup.mempool import BedrockMempool

        class Holder:
            value = "not-an-enum"

        Holder.__module__ = "repro.fake"
        holder = Holder()
        assert _dataclass_list(holder) is holder
        pool = BedrockMempool()
        assert _dataclass_list(pool) is pool

    def test_enums_still_map_to_value(self):
        import enum

        from repro.experiments.runner import _dataclass_list

        class Color(enum.Enum):
            RED = "red"

        assert _dataclass_list(Color.RED) == "red"
        assert _dataclass_list({"c": [Color.RED]}) == {"c": ["red"]}


class TestRunAll:
    def test_selected_experiments_produce_artifacts(self, tmp_path):
        records = run_all(tmp_path, preset=MICRO, only=["table3", "fig5"])
        assert len(records) == 2
        assert all(record.ok for record in records)
        for record in records:
            text = (tmp_path / f"{record.experiment_id}.txt").read_text()
            assert text.strip()
            payload = json.loads(
                (tmp_path / f"{record.experiment_id}.json").read_text()
            )
            assert payload["experiment"] == record.experiment_id
            assert payload["preset"] == "micro"

    def test_fig5_json_contains_balances(self, tmp_path):
        run_all(tmp_path, preset=MICRO, only=["fig5"])
        payload = json.loads((tmp_path / "fig5.json").read_text())
        assert payload["data"]["case1"]["final_balance"] == pytest.approx(2.5)

    def test_unknown_id_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            run_all(tmp_path, only=["fig99"])

    def test_records_time_every_run(self, tmp_path):
        records = run_all(tmp_path, preset=MICRO, only=["table3"])
        assert records[0].elapsed_seconds >= 0
