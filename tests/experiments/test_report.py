"""Tests for the Markdown report generator."""

import pytest

from repro.errors import ReproError
from repro.experiments import build_report, run_all, write_report
from repro.experiments.common import EffortPreset

MICRO = EffortPreset(name="micro", episodes=2, steps_per_episode=10, trials=1)


class TestBuildReport:
    def test_report_includes_run_experiments(self, tmp_path):
        run_all(tmp_path, preset=MICRO, only=["table3", "fig5"])
        report = build_report(tmp_path)
        assert "Table III" in report
        assert "Figure 5" in report
        assert "90.91%" in report        # the table artifact is embedded
        assert "reproduced" in report

    def test_missing_experiments_marked_not_run(self, tmp_path):
        run_all(tmp_path, preset=MICRO, only=["table3"])
        report = build_report(tmp_path)
        assert "not run" in report

    def test_checklist_lists_all_sections(self, tmp_path):
        run_all(tmp_path, preset=MICRO, only=["table3"])
        report = build_report(tmp_path)
        for fragment in ("Figure 6", "Figure 11", "Section VIII"):
            assert fragment in report

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            build_report(tmp_path / "nope")

    def test_write_report_creates_file(self, tmp_path):
        run_all(tmp_path, preset=MICRO, only=["table3"])
        path = write_report(tmp_path)
        assert path.exists()
        assert path.name == "REPORT.md"
        assert "PAROLE reproduction report" in path.read_text()


class TestBatchEconomics:
    def test_posting_cost_permutation_invariant(self, case_workload):
        from repro.rollup import build_batch
        from repro.workloads import CASE3_ORDER
        original, _ = build_batch(
            "agg", case_workload.pre_state, case_workload.transactions
        )
        reordered, _ = build_batch(
            "agg", case_workload.pre_state,
            [case_workload.transactions[i] for i in CASE3_ORDER],
        )
        assert original.posting_cost_wei() == reordered.posting_cost_wei()

    def test_posting_cost_counts_types(self, case_workload):
        from repro.chain.gas import GasSchedule
        from repro.rollup import build_batch
        batch, _ = build_batch(
            "agg", case_workload.pre_state, case_workload.transactions
        )
        schedule = GasSchedule()
        expected = (
            2 * schedule.usage_for("mint").fee_wei
            + 5 * schedule.usage_for("transfer").fee_wei
            + 1 * schedule.usage_for("burn").fee_wei
        )
        assert batch.posting_cost_wei(schedule) == expected
