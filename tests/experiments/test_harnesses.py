"""Tests for the experiment harnesses (micro-scale runs)."""

import pytest

from repro.config import SnapshotStudyConfig
from repro.experiments import (
    EffortPreset,
    attack_round,
    render_case_studies,
    render_fig10,
    render_table3,
    run_case_studies,
    run_fig10,
    run_fig8,
    run_fig9,
    run_table3,
)
from repro.experiments.common import shared_pool_round

MICRO = EffortPreset(name="micro", episodes=2, steps_per_episode=12, trials=1)


class TestTable3Harness:
    def test_rows_regenerated(self):
        rows = run_table3()
        assert len(rows) == 3

    def test_render_contains_paper_values(self):
        text = render_table3()
        assert "90.91%" in text
        assert "142k Gwei" in text


class TestCaseStudyHarness:
    def test_three_cases(self):
        cases = run_case_studies()
        assert set(cases) == {"case1", "case2", "case3"}

    def test_headline_balances(self):
        cases = run_case_studies()
        assert cases["case1"].final_balance == pytest.approx(2.5)
        assert cases["case2"].final_balance == pytest.approx(2.5667, abs=1e-3)
        assert cases["case3"].final_balance == pytest.approx(2.7333, abs=1e-3)

    def test_l2_gains_match_paper(self):
        cases = run_case_studies()
        baseline = cases["case1"].final_l2_balance
        assert cases["case2"].l2_gain_percent(baseline) == pytest.approx(6.7, abs=0.1)
        assert cases["case3"].l2_gain_percent(baseline) == pytest.approx(23.3, abs=0.1)

    def test_certified_optimum_beats_case3(self):
        cases = run_case_studies(certify_optimum=True)
        assert cases["best"].final_balance >= cases["case3"].final_balance

    def test_render_includes_all_cases(self):
        text = render_case_studies()
        assert "case1" in text and "case3" in text


class TestAttackRound:
    def test_round_produces_outcome(self):
        outcome = attack_round(mempool_size=10, num_ifus=1, preset=MICRO, seed=1)
        assert outcome.assessment is not None
        assert len(outcome.per_ifu_profit) == 1

    def test_shared_pool_round_counts_adversaries(self):
        outcomes, workload = shared_pool_round(
            mempool_size=8, num_ifus=1, num_aggregators=4,
            adversarial_fraction=0.5, preset=MICRO, seed=0,
        )
        assert len(outcomes) == 2
        assert workload.mempool_size == 32


class TestFig8Harness:
    def test_series_for_each_cell(self):
        series = run_fig8(
            epsilons=(0.0, 1.0), ifu_counts=(1,), mempool_size=8,
            preset=MICRO,
        )
        assert len(series) == 2
        for curve in series:
            assert len(curve.episode_rewards) == MICRO.episodes
            assert len(curve.moving_avg) == MICRO.episodes


class TestFig9Harness:
    def test_curves_cover_grid(self):
        curves = run_fig9(
            mempool_sizes=(8,), ifu_counts=(1, 2), preset=MICRO,
        )
        assert len(curves) == 2
        for curve in curves:
            assert curve.mempool_size == 8


class TestFig10Harness:
    def test_six_cells(self):
        summaries = run_fig10(SnapshotStudyConfig(collections_per_tier=2, seed=1))
        assert len(summaries) == 6

    def test_render(self):
        text = render_fig10(
            run_fig10(SnapshotStudyConfig(collections_per_tier=2, seed=1))
        )
        assert "arbitrum" in text and "optimism" in text


class TestFig11Harness:
    def test_micro_sweep(self):
        from repro.experiments import render_fig11, run_fig11
        rows = run_fig11(
            sizes=(5, 8), dqn_train_episodes=1,
            nlp_restarts=1, nlp_max_iterations=5,
        )
        assert len(rows) == 2 * 4
        assert all(row.elapsed_seconds >= 0 for row in rows)
        assert all(row.peak_memory_kib > 0 for row in rows)
        text = render_fig11(rows)
        assert "DQN (inference)" in text and "SNOPT" in text


class TestDefenseHarness:
    def test_micro_sweep(self):
        from repro.experiments import render_defense_eval, run_defense_eval
        points = run_defense_eval(
            thresholds=(0.01, 10.0), rounds=1, mempool_size=8, preset=MICRO,
        )
        assert len(points) == 2
        # Impossible threshold never flags; tiny threshold flags at least
        # as often.
        assert points[0].detection_rate >= points[1].detection_rate
        assert "Threshold" in render_defense_eval(points)
