"""Tests for confidence intervals on the Fig. 6/7 sweep points."""

import pytest

from repro.experiments import EffortPreset, run_fig6, run_fig7

MICRO = EffortPreset(name="micro", episodes=2, steps_per_episode=12, trials=3)


class TestFig6CIs:
    def test_points_carry_trial_totals(self):
        points = run_fig6(
            adversarial_fractions=(0.5,), mempool_sizes=(10,),
            ifu_counts=(1,), num_aggregators=4, preset=MICRO, seed=0,
        )
        assert len(points) == 1
        point = points[0]
        assert len(point.trial_totals) == 3
        assert point.total_profit_eth == pytest.approx(
            sum(point.trial_totals) / 3
        )

    def test_ci_brackets_the_mean(self):
        points = run_fig6(
            adversarial_fractions=(0.5,), mempool_sizes=(10,),
            ifu_counts=(1,), num_aggregators=4, preset=MICRO, seed=0,
        )
        ci = points[0].profit_ci()
        if ci is not None:
            assert ci.low <= points[0].total_profit_eth <= ci.high

    def test_single_trial_has_no_ci(self):
        single = EffortPreset(name="s", episodes=2, steps_per_episode=12,
                              trials=1)
        points = run_fig6(
            adversarial_fractions=(0.5,), mempool_sizes=(10,),
            ifu_counts=(1,), num_aggregators=4, preset=single, seed=0,
        )
        assert points[0].profit_ci() is None


class TestFig7CIs:
    def test_points_carry_trial_totals(self):
        points = run_fig7(
            ifu_counts=(1,), mempool_sizes=(10,), fractions=(0.5,),
            num_aggregators=4, preset=MICRO, seed=0,
        )
        assert len(points[0].trial_totals) == 3

    def test_ci_when_trials_vary(self):
        points = run_fig7(
            ifu_counts=(1,), mempool_sizes=(10,), fractions=(0.5,),
            num_aggregators=4, preset=MICRO, seed=0,
        )
        ci = points[0].profit_ci()
        if ci is not None:
            assert ci.width >= 0
