"""ResultStore durability, eviction and namespace properties.

The satellite property suite from the ISSUE: arbitrary JSON payloads
round-trip exactly, a simulated crash between the tmp-file write and
the rename leaves the index consistent, and eviction never removes an
entry newer than one it keeps.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.store import ResultStore, StoreError

# Arbitrary JSON values (finite floats only: NaN != NaN would fail the
# equality assertion for reasons unrelated to the store).
_JSON = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


class TestRoundTrip:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(payload=_JSON)
    def test_arbitrary_json_round_trips(self, tmp_path, payload):
        store = ResultStore(tmp_path / "s")
        store.put("k", payload)
        fetched, found = store.fetch("k")
        assert found
        assert fetched == payload

    def test_miss_returns_not_found(self, tmp_path):
        store = ResultStore(tmp_path)
        payload, found = store.fetch("absent")
        assert payload is None and not found

    def test_overwrite_replaces(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2

    def test_fresh_handle_sees_entries(self, tmp_path):
        ResultStore(tmp_path).put("k", {"v": 7})
        assert ResultStore(tmp_path).get("k") == {"v": 7}

    def test_empty_key_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            ResultStore(tmp_path).put("", 1)


class TestCrashConsistency:
    def test_crash_between_tmp_write_and_rename(self, tmp_path, monkeypatch):
        """A put killed before ``os.replace`` leaves no trace in the index."""
        store = ResultStore(tmp_path)
        store.put("survivor", 1)

        real_replace = os.replace
        calls = {"n": 0}

        def dying_replace(src, dst):
            calls["n"] += 1
            if calls["n"] == 1:  # the object-file rename of this put
                raise OSError("simulated crash")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", dying_replace)
        with pytest.raises(OSError):
            store.put("victim", {"big": "payload"})
        monkeypatch.undo()

        # Index is consistent: the survivor is intact, the victim is
        # absent, and a fresh handle (full disk re-read) agrees.
        assert store.get("survivor") == 1
        _, found = store.fetch("victim")
        assert not found
        fresh = ResultStore(tmp_path)
        assert fresh.get("survivor") == 1
        _, found = fresh.fetch("victim")
        assert not found

        # The store remains writable after the crash.
        store.put("victim", 2)
        assert ResultStore(tmp_path).get("victim") == 2

    def test_leftover_tmp_file_is_invisible(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", 1)
        orphan = tmp_path / "objects" / "ab" / "deadbeef.json.tmp-999"
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_text("{ partial")
        # Even a full index rebuild (index.json lost) skips the orphan.
        store.index_path.unlink()
        fresh = ResultStore(tmp_path)
        assert fresh.get("k") == 1
        assert fresh.keys() == ["k"]

    def test_index_rebuilt_from_objects(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("a", 1)
        store.put("b", 2)
        store.index_path.unlink()
        fresh = ResultStore(tmp_path)
        assert fresh.get("a") == 1
        assert fresh.get("b") == 2
        assert sorted(fresh.keys()) == ["a", "b"]

    def test_corrupt_index_rebuilt(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("a", 1)
        store.index_path.write_text("not json at all {")
        assert ResultStore(tmp_path).get("a") == 1

    def test_corrupt_object_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        full = store.put("a", 1)
        store._object_path(full).write_text("{ corrupt")
        _, found = ResultStore(tmp_path).fetch("a")
        assert not found


class TestEviction:
    def _sizes(self, store):
        return {k: e["size"] for k, e in store.entries()}

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        payload_lengths=st.lists(
            st.integers(min_value=0, max_value=400), min_size=1, max_size=12
        ),
        max_bytes=st.integers(min_value=200, max_value=2000),
    )
    def test_survivors_are_newest_suffix(
        self, tmp_path, payload_lengths, max_bytes
    ):
        """Eviction never removes an entry newer than one it keeps."""
        root = tmp_path / f"s{len(list(tmp_path.iterdir()))}"
        store = ResultStore(root, max_bytes=max_bytes)
        order = []
        for i, length in enumerate(payload_lengths):
            key = f"k{i}"
            store.put(key, "x" * length)
            order.append(key)
        surviving = {k for k, _ in store.entries()}
        # Survivors must be a contiguous suffix of insertion order.
        kept = [k in surviving for k in order]
        first_kept = kept.index(True) if any(kept) else len(kept)
        assert all(kept[first_kept:]), (
            f"evicted an entry newer than a kept one: {kept}"
        )
        # Every surviving payload is readable.
        for i, key in enumerate(order):
            if key in surviving:
                assert store.get(key) == "x" * payload_lengths[i]

    def test_newest_entry_always_survives_its_own_put(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=250)
        for i in range(6):
            store.put(f"k{i}", "y" * 50)
        assert store.get("k5") == "y" * 50

    def test_max_age_expires_entries(self, tmp_path, monkeypatch):
        import time as time_module

        store = ResultStore(tmp_path, max_age_seconds=10.0)
        store.put("old", 1)
        real_time = time_module.time
        monkeypatch.setattr(
            "repro.store.result_store.time.time", lambda: real_time() + 60.0
        )
        _, found = store.fetch("old")
        assert not found

    def test_clear_empties_everything(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("a", 1)
        store.put("b", 2)
        assert store.clear() == 2
        assert store.keys() == []
        assert store.size_bytes() == 0


class TestNamespaces:
    def test_namespaced_entries_never_collide(self, tmp_path):
        store = ResultStore(tmp_path)
        chaos = store.namespaced("chaos")
        store.put("k", "clean")
        chaos.put("k", "chaotic")
        assert store.get("k") == "clean"
        assert chaos.get("k") == "chaotic"
        assert sorted(ResultStore(tmp_path).keys()) == ["chaos:k", "k"]

    def test_namespacing_is_idempotent(self, tmp_path):
        chaos = ResultStore(tmp_path).namespaced("chaos")
        assert chaos.namespaced("chaos") is chaos

    def test_namespaced_view_shares_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        chaos = store.namespaced("chaos")
        chaos.put("k", 1)
        chaos.fetch("k")
        assert store.stats.puts == 1
        assert store.stats.hits == 1


class TestStats:
    def test_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        store.fetch("a")  # miss
        store.put("a", 1)
        store.fetch("a")  # hit
        assert store.stats.misses == 1
        assert store.stats.puts == 1
        assert store.stats.hits == 1
        assert store.stats.bytes_written > 0
        assert store.stats.bytes_read > 0
        assert store.stats.hit_ratio == 0.5

    def test_pickled_handle_resets_stats_and_rereads(self, tmp_path):
        import pickle

        store = ResultStore(tmp_path)
        store.put("k", 1)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.stats.puts == 0
        assert clone.get("k") == 1

    def test_object_files_embed_their_key(self, tmp_path):
        store = ResultStore(tmp_path)
        full = store.put("k", 1)
        obj = json.loads(store._object_path(full).read_text())
        assert obj["key"] == full
