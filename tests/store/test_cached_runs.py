"""End-to-end caching behaviour: resumable runs, warm reruns, chaos
namespace isolation and mid-training DQN checkpoint resume."""

from __future__ import annotations

import dataclasses
import pathlib

import numpy as np
import pytest

from repro.config import GenTranSeqConfig, WorkloadConfig
from repro.core import AttackCampaign, GenTranSeq
from repro.errors import ParallelError
from repro.experiments import QUICK, run_all
from repro.parallel import SerialRunner, Task, get_runner
from repro.store import ResultStore, TrainingCheckpointer, checkpoint_key
from repro.workloads import generate_workload

_FAST = ["table3", "fig5"]


# --------------------------------------------------------------------- #
# task-level caching + crash resume
# --------------------------------------------------------------------- #


def _counted(x, counter_path, *, seed=None):
    """Record every invocation on disk so cache hits are observable."""
    path = pathlib.Path(counter_path)
    path.write_text(str(int(path.read_text() or "0") + 1) if path.exists() else "1")
    return x * x


def _fails_while_sentinel(x, sentinel_path, *, seed=None):
    if x >= 2 and pathlib.Path(sentinel_path).exists():
        raise RuntimeError("simulated mid-sweep crash")
    return x + 100


class TestTaskCache:
    def _tasks(self, counter):
        return [
            Task(fn=_counted, args=(i, str(counter)), seed=0, label=f"t{i}")
            for i in range(4)
        ]

    def test_warm_batch_never_invokes_fn(self, tmp_path):
        counter = tmp_path / "count"
        store = ResultStore(tmp_path / "cache")
        cold = SerialRunner(store=store).map(self._tasks(counter))
        assert counter.read_text() == "4"
        warm = SerialRunner(store=ResultStore(tmp_path / "cache")).map(
            self._tasks(counter)
        )
        assert counter.read_text() == "4"  # zero new invocations
        assert warm == cold

    def test_killed_run_resumes_from_completed_tasks(self, tmp_path):
        """Tasks completed before a failure are persisted; a rerun only
        recomputes from the point of interruption."""
        sentinel = tmp_path / "sentinel"
        sentinel.write_text("die")
        tasks = [
            Task(
                fn=_fails_while_sentinel,
                args=(i, str(sentinel)),
                seed=0,
                label=f"t{i}",
            )
            for i in range(4)
        ]
        store = ResultStore(tmp_path / "cache")
        with pytest.raises(ParallelError):
            SerialRunner(store=store).map(tasks)
        # Tasks 0 and 1 finished before the crash and were persisted.
        assert len(store.keys()) == 2

        sentinel.unlink()
        resumed = SerialRunner(store=ResultStore(tmp_path / "cache"))
        values = resumed.map(tasks)
        assert values == [100, 101, 102, 103]
        assert resumed.store.stats.hits == 2  # only 2 and 3 recomputed
        assert resumed.store.stats.misses == 2

    def test_uncacheable_tasks_still_run(self, tmp_path):
        store = ResultStore(tmp_path)
        tasks = [Task(fn=lambda: 7)]  # lambdas are unkeyable
        assert SerialRunner(store=store).map(tasks) == [7]
        assert store.keys() == []

    def test_explicit_cache_key_wins(self, tmp_path):
        counter = tmp_path / "count"
        store = ResultStore(tmp_path / "cache")
        pinned = [
            Task(fn=_counted, args=(9, str(counter)), cache_key="task:pinned")
        ]
        SerialRunner(store=store).map(pinned)
        assert store.contains("task:pinned")


# --------------------------------------------------------------------- #
# run_all: warm reruns byte-identical, 100% hits
# --------------------------------------------------------------------- #


class TestRunAllCache:
    def test_warm_rerun_full_hits_and_byte_identical(self, tmp_path):
        cache = tmp_path / "cache"
        out_cold, out_warm = tmp_path / "cold", tmp_path / "warm"
        cold = run_all(
            out_cold, preset=QUICK, only=_FAST, store=ResultStore(cache)
        )
        assert all(r.ok for r in cold)
        assert all(not r.cache["experiment_hit"] for r in cold)

        warm = run_all(
            out_warm, preset=QUICK, only=_FAST, store=ResultStore(cache)
        )
        assert all(r.ok for r in warm)
        assert all(r.cache["experiment_hit"] for r in warm)
        assert all(r.cache["hit_ratio"] == 1.0 for r in warm)
        for experiment_id in _FAST:
            for suffix in (".txt", ".json"):
                a = (out_cold / f"{experiment_id}{suffix}").read_bytes()
                b = (out_warm / f"{experiment_id}{suffix}").read_bytes()
                assert a == b, f"{experiment_id}{suffix} differs warm vs cold"

    def test_manifest_records_hit_ratio(self, tmp_path):
        import json

        cache = tmp_path / "cache"
        run_all(tmp_path / "a", preset=QUICK, only=["table3"],
                store=ResultStore(cache))
        run_all(tmp_path / "b", preset=QUICK, only=["table3"],
                store=ResultStore(cache))
        manifest = json.loads(
            (tmp_path / "b" / "table3.manifest.json").read_text()
        )
        assert manifest["extra"]["cache"]["experiment_hit"] is True
        assert manifest["extra"]["cache"]["hit_ratio"] == 1.0

    def test_no_store_keeps_legacy_behaviour(self, tmp_path):
        records = run_all(tmp_path / "out", preset=QUICK, only=["table3"])
        assert records[0].ok
        assert records[0].cache is None


# --------------------------------------------------------------------- #
# api facade
# --------------------------------------------------------------------- #


class TestApiFacade:
    def test_run_experiment_shares_cache_with_run_all(self, tmp_path):
        from repro import api

        cache = tmp_path / "cache"
        run_all(tmp_path / "out", preset=QUICK, only=["table3"],
                store=ResultStore(cache))
        outcome = api.run_experiment(
            "table3", store=api.open_store(cache)
        )
        assert outcome.cache_hit
        assert outcome.text == (tmp_path / "out" / "table3.txt").read_text()

    def test_unknown_experiment_raises(self):
        from repro import api
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown experiment"):
            api.run_experiment("fig99")

    def test_list_experiments_matches_registry(self):
        from repro import api
        from repro.experiments import REGISTRY

        assert [e.experiment_id for e in api.list_experiments()] == [
            s.experiment_id for s in REGISTRY
        ]


# --------------------------------------------------------------------- #
# chaos namespace isolation (regression: never share entries with clean)
# --------------------------------------------------------------------- #


class TestChaosNamespace:
    def _scenario(self):
        from repro.faults import DEFAULT_MATRIX

        return [dataclasses.replace(DEFAULT_MATRIX[0], rounds=2)]

    def test_chaos_keys_are_namespaced(self, tmp_path):
        from repro.faults import run_matrix

        store = ResultStore(tmp_path)
        with get_runner(1, store=store) as runner:
            run_matrix(self._scenario(), runner=runner)
            # The clean-run store handle is restored afterwards.
            assert runner.store is store
        keys = store.keys()
        assert keys, "chaos run cached nothing"
        assert all(key.startswith("chaos:") for key in keys)

    def test_chaos_warm_rerun_hits(self, tmp_path):
        from repro.faults import run_matrix

        scenario = self._scenario()
        with get_runner(1, store=ResultStore(tmp_path)) as runner:
            cold = run_matrix(scenario, runner=runner)
        warm_store = ResultStore(tmp_path)
        with get_runner(1, store=warm_store) as runner:
            warm = run_matrix(scenario, runner=runner)
        assert warm_store.stats.hits == 1
        assert warm[0].to_json() == cold[0].to_json()


# --------------------------------------------------------------------- #
# DQN mid-training checkpoint resume
# --------------------------------------------------------------------- #


def _training_setup(episodes: int):
    config = GenTranSeqConfig(episodes=episodes, steps_per_episode=8, seed=5)
    module = GenTranSeq(config=config)
    workload = generate_workload(
        WorkloadConfig(
            mempool_size=8, num_users=8, num_ifus=1,
            min_ifu_involvement=2, seed=5,
        )
    )
    return module, workload


class TestCheckpointResume:
    def test_interrupted_training_resumes_bit_exactly(self, tmp_path):
        """3 episodes + resume to 6 == one uninterrupted 6-episode run."""
        store = ResultStore(tmp_path)
        key = checkpoint_key("test-resume", {}, 5)

        module_ref, workload = _training_setup(6)
        reference = module_ref.optimize(
            workload.pre_state, workload.transactions, workload.ifus
        )

        module_a, workload_a = _training_setup(3)
        module_a.optimize(
            workload_a.pre_state, workload_a.transactions, workload_a.ifus,
            checkpointer=TrainingCheckpointer(store, key, every=1),
        )
        assert store.contains(key)

        module_b, workload_b = _training_setup(6)
        resumed = module_b.optimize(
            workload_b.pre_state, workload_b.transactions, workload_b.ifus,
            checkpointer=TrainingCheckpointer(store, key, every=1),
        )
        assert len(resumed.history.episodes) == 6
        assert resumed.history.rewards == reference.history.rewards
        assert resumed.best_objective == reference.best_objective
        for got, want in zip(
            module_b._agent.q_network.weights,
            module_ref._agent.q_network.weights,
        ):
            assert np.array_equal(got, want)

    def test_completed_training_clears_checkpoint(self, tmp_path):
        store = ResultStore(tmp_path)
        key = checkpoint_key("test-clear", {}, 5)
        module, workload = _training_setup(4)
        module.optimize(
            workload.pre_state, workload.transactions, workload.ifus,
            checkpointer=TrainingCheckpointer(store, key, every=1),
        )
        # A full run leaves a checkpoint; the fig8 cell clears it after
        # the surrounding task result is cached.  Here we exercise the
        # explicit clear path.
        TrainingCheckpointer(store, key, every=1).clear()
        assert not store.contains(key)


# --------------------------------------------------------------------- #
# campaign memoization
# --------------------------------------------------------------------- #


class TestCampaignCache:
    def _configs(self):
        workload = WorkloadConfig(
            mempool_size=8, num_users=8, num_ifus=1,
            min_ifu_involvement=2, seed=3,
        )
        gts = GenTranSeqConfig(episodes=2, steps_per_episode=6, seed=3)
        return workload, gts

    def test_warm_campaign_returns_cached_report(self, tmp_path):
        workload, gts = self._configs()
        store = ResultStore(tmp_path)
        cold = AttackCampaign(workload, gts).run(2, store=store)
        assert store.stats.puts == 1
        warm = AttackCampaign(workload, gts).run(2, store=store)
        assert store.stats.hits == 1
        assert warm.profits() == cold.profits()
        assert warm.total_profit_eth == cold.total_profit_eth

    def test_round_count_changes_key(self, tmp_path):
        workload, gts = self._configs()
        store = ResultStore(tmp_path)
        AttackCampaign(workload, gts).run(2, store=store)
        AttackCampaign(workload, gts).run(3, store=store)
        assert store.stats.puts == 2
