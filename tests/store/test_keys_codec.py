"""Key derivation and codec round-trips for the result store."""

from __future__ import annotations

import dataclasses
import enum
import json
import math

import numpy as np
import pytest

from repro.store import (
    CodecError,
    ResultStore,
    UnkeyableError,
    canonical,
    checkpoint_key,
    code_fingerprint,
    config_digest,
    decode,
    digest,
    encode,
    experiment_key,
    task_key,
)


def _module_fn(x, *, seed=None):
    return x * 2


@dataclasses.dataclass(frozen=True)
class Point:
    x: float
    y: float
    tags: tuple = ()


class Color(enum.Enum):
    RED = "red"
    BLUE = "blue"


# --------------------------------------------------------------------- #
# canonical / digest
# --------------------------------------------------------------------- #


class TestCanonical:
    def test_mapping_order_insensitive(self):
        assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})

    def test_distinct_values_distinct_digests(self):
        assert digest({"a": 1}) != digest({"a": 2})

    def test_dataclass_encodes_fields(self):
        one = canonical(Point(1.0, 2.0))
        two = canonical(Point(1.0, 3.0))
        assert one != two
        assert one[0] == "__dataclass__"

    def test_set_order_insensitive(self):
        assert canonical({3, 1, 2}) == canonical({2, 3, 1})

    def test_lambda_rejected(self):
        with pytest.raises(UnkeyableError):
            canonical(lambda x: x)

    def test_local_function_rejected(self):
        def local(x):
            return x

        with pytest.raises(UnkeyableError):
            canonical(local)

    def test_module_function_accepted(self):
        ref = canonical(_module_fn)
        assert "test_keys_codec" in str(ref)

    def test_unencodable_object_rejected(self):
        with pytest.raises(UnkeyableError):
            canonical(object())

    def test_store_handle_is_key_neutral(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        assert canonical(a) == canonical(b)

    def test_numpy_scalars_match_python(self):
        assert canonical(np.int64(3)) == canonical(3)


# --------------------------------------------------------------------- #
# key anatomy
# --------------------------------------------------------------------- #


class TestKeys:
    def test_prefixes(self):
        assert experiment_key("fig8", "quick", {}, 0).startswith("exp:")
        assert task_key(_module_fn, (1,), {}, 0).startswith("task:")
        assert checkpoint_key("t", {}, 0).startswith("ckpt:")

    def test_seed_changes_key(self):
        assert task_key(_module_fn, (1,), {}, 0) != task_key(
            _module_fn, (1,), {}, 1
        )

    def test_args_change_key(self):
        assert task_key(_module_fn, (1,), {}, 0) != task_key(
            _module_fn, (2,), {}, 0
        )

    def test_preset_changes_experiment_key(self):
        assert experiment_key("fig8", "quick", {}, 0) != experiment_key(
            "fig8", "full", {}, 0
        )

    def test_config_changes_experiment_key(self):
        assert experiment_key("fig8", "quick", {"k": 1}, 0) != experiment_key(
            "fig8", "quick", {"k": 2}, 0
        )

    def test_fingerprint_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()

    def test_store_handle_in_kwargs_is_key_neutral(self, tmp_path):
        with_store = task_key(
            _module_fn, (1,), {"checkpoint_store": ResultStore(tmp_path)}, 0
        )
        with_other = task_key(
            _module_fn,
            (1,),
            {"checkpoint_store": ResultStore(tmp_path / "other")},
            0,
        )
        assert with_store == with_other

    def test_config_digest_is_short_hex(self):
        d = config_digest({"a": 1})
        assert len(d) == 16
        int(d, 16)  # parses as hex


# --------------------------------------------------------------------- #
# codec round-trips
# --------------------------------------------------------------------- #


class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            42,
            -1.5,
            "text",
            [1, 2, 3],
            {"k": [1, {"nested": (2, 3)}]},
            (1, "two", 3.0),
            {1, 2, 3},
            frozenset({"a", "b"}),
            Color.BLUE,
            Point(0.1, 0.2, tags=("a", "b")),
            {("tuple", "key"): "value"},
        ],
    )
    def test_round_trip_exact(self, value):
        assert decode(encode(value)) == value

    def test_round_trip_preserves_types(self):
        restored = decode(encode((1, {2}, Point(0.0, 0.0))))
        assert isinstance(restored, tuple)
        assert isinstance(restored[1], set)
        assert isinstance(restored[2], Point)

    def test_float_repr_exact(self):
        value = [0.1 + 0.2, math.pi, 1e-300]
        text = json.dumps(encode(value))
        assert decode(json.loads(text)) == value

    def test_ndarray_round_trip(self):
        array = np.arange(6, dtype=np.float64).reshape(2, 3) / 7.0
        restored = decode(encode(array))
        assert restored.dtype == array.dtype
        assert restored.shape == array.shape
        assert np.array_equal(restored, array)

    def test_numpy_scalar_round_trip(self):
        scalar = np.float64(1.0) / 3.0
        restored = decode(encode(scalar))
        assert isinstance(restored, np.float64)
        assert restored == scalar

    def test_encoded_form_is_json_serializable(self):
        payload = encode({"arr": np.ones(3), "pt": Point(1.0, 2.0)})
        json.dumps(payload)  # must not raise, no default= needed

    def test_unsupported_type_raises(self):
        with pytest.raises(CodecError):
            encode(object())

    def test_decode_rejects_foreign_module(self):
        with pytest.raises(CodecError):
            decode({"__dc__": "subprocess:Popen", "f": {}})
