"""Protocol-level tests: actions, declarations, the generalized check."""

import pytest

from repro.errors import ReproError
from repro.rollup.transaction import NFTTransaction, TxKind
from repro.strategies import (
    ACTION_KINDS,
    BaseStrategy,
    HonestStrategy,
    MempoolView,
    ReordererStrategy,
    StrategyAccount,
    StrategyAction,
    validate_action,
)


def _mint(sender, nonce=0, fee=0.1):
    return NFTTransaction(
        kind=TxKind.MINT, sender=sender, base_fee=1.0,
        priority_fee=fee, nonce=nonce, label=f"{sender}-{nonce}",
    )


class TestStrategyAction:
    def test_permutation_declares_permute_only(self, case_workload):
        action = StrategyAction.permutation(case_workload.transactions)
        assert action.kinds == ("permute",)
        assert action.inserted == ()
        assert action.revert_marked == ()

    def test_unknown_kind_rejected_at_construction(self):
        with pytest.raises(ReproError, match="unknown action kind"):
            StrategyAction(sequence=(), kinds=("teleport",))

    def test_kind_taxonomy_is_closed(self):
        assert ACTION_KINDS == {"permute", "insert", "revert"}

    def test_sequences_coerced_to_tuples(self, case_workload):
        action = StrategyAction(sequence=list(case_workload.transactions))
        assert isinstance(action.sequence, tuple)


class TestStrategyAccount:
    def test_requires_address(self):
        with pytest.raises(ReproError):
            StrategyAccount("")

    def test_rejects_negative_funding(self):
        with pytest.raises(ReproError):
            StrategyAccount("adv", balance_eth=-1.0)


class TestValidateAction:
    def test_accepts_any_permutation(self, case_workload):
        txs = tuple(case_workload.transactions)
        action = StrategyAction.permutation(tuple(reversed(txs)))
        assert validate_action(txs, action).ok

    def test_rejects_drop(self, case_workload):
        txs = tuple(case_workload.transactions)
        action = StrategyAction.permutation(txs[1:])
        verdict = validate_action(txs, action)
        assert not verdict.ok
        assert "not conserved" in verdict.reason

    def test_rejects_undeclared_insertion(self, case_workload):
        txs = tuple(case_workload.transactions)
        extra = _mint("adv")
        # Inserted tx present in the sequence but not declared.
        action = StrategyAction.permutation(txs + (extra,))
        verdict = validate_action(
            txs, action, allowed_senders=frozenset({"adv"})
        )
        assert not verdict.ok

    def test_rejects_insertion_from_foreign_account(self, case_workload):
        txs = tuple(case_workload.transactions)
        extra = _mint("mallory")
        action = StrategyAction(
            sequence=txs + (extra,), inserted=(extra,),
            kinds=("permute", "insert"),
        )
        verdict = validate_action(
            txs, action, allowed_senders=frozenset({"adv"})
        )
        assert not verdict.ok
        assert "undeclared account" in verdict.reason

    def test_accepts_declared_insertion(self, case_workload):
        txs = tuple(case_workload.transactions)
        extra = _mint("adv")
        action = StrategyAction(
            sequence=(extra,) + txs, inserted=(extra,),
            kinds=("permute", "insert"),
        )
        assert validate_action(
            txs, action, allowed_senders=frozenset({"adv"})
        ).ok

    def test_rejects_declared_insertion_missing_from_sequence(
        self, case_workload
    ):
        txs = tuple(case_workload.transactions)
        extra = _mint("adv")
        action = StrategyAction(
            sequence=txs, inserted=(extra,), kinds=("permute", "insert")
        )
        verdict = validate_action(
            txs, action, allowed_senders=frozenset({"adv"})
        )
        assert not verdict.ok
        assert "missing from the sequence" in verdict.reason

    def test_rejects_duplicated_victim(self, case_workload):
        txs = tuple(case_workload.transactions)
        action = StrategyAction.permutation(txs + (txs[0],))
        assert not validate_action(txs, action).ok

    def test_rejects_undeclared_revert_marks(self, case_workload):
        txs = tuple(case_workload.transactions)
        extra = _mint("adv")
        action = StrategyAction(
            sequence=(extra,) + txs, inserted=(extra,),
            revert_marked=(extra.tx_hash,), kinds=("permute", "insert"),
        )
        verdict = validate_action(
            txs, action, allowed_senders=frozenset({"adv"})
        )
        assert not verdict.ok
        assert "revert" in verdict.reason

    def test_rejects_revert_mark_on_victim(self, case_workload):
        txs = tuple(case_workload.transactions)
        action = StrategyAction(
            sequence=txs, revert_marked=(txs[0].tx_hash,),
            kinds=("permute", "revert"),
        )
        verdict = validate_action(txs, action)
        assert not verdict.ok
        assert "own" in verdict.reason

    def test_accepts_declared_revert_spam(self, case_workload):
        txs = tuple(case_workload.transactions)
        claims = tuple(_mint("adv", nonce=i) for i in range(3))
        action = StrategyAction(
            sequence=claims + txs, inserted=claims,
            revert_marked=tuple(tx.tx_hash for tx in claims),
            kinds=("permute", "insert", "revert"),
        )
        assert validate_action(
            txs, action, allowed_senders=frozenset({"adv"})
        ).ok


class TestBaseStrategy:
    def test_observe_is_abstract(self, case_workload):
        view = MempoolView(transactions=tuple(case_workload.transactions))
        with pytest.raises(NotImplementedError):
            BaseStrategy().observe(case_workload.pre_state, view)

    def test_beneficiaries_default_to_account_addresses(self):
        class Funded(BaseStrategy):
            def accounts(self):
                return (StrategyAccount("adv", 1.0),)

        assert Funded().beneficiaries() == ("adv",)

    def test_honest_strategy_is_identity(self, case_workload):
        view = MempoolView(transactions=tuple(case_workload.transactions))
        action = HonestStrategy().observe(case_workload.pre_state, view)
        assert action.sequence == tuple(case_workload.transactions)
        assert action.kinds == ("permute",)


class TestReordererStrategy:
    def test_wraps_callable_as_permutation(self, case_workload):
        strategy = ReordererStrategy(
            lambda state, txs: tuple(reversed(txs)), name="reverse"
        )
        view = MempoolView(transactions=tuple(case_workload.transactions))
        action = strategy.observe(case_workload.pre_state, view)
        assert action.sequence == tuple(reversed(case_workload.transactions))
        assert action.kinds == ("permute",)
        assert strategy.name == "reverse"
