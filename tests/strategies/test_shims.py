"""Deprecation shims: old reorderer entry points keep working, loudly."""

import warnings

import pytest

from repro.config import AttackConfig, GenTranSeqConfig
from repro.core import ParoleAttack
from repro.errors import ReproError
from repro.rollup import AdversarialAggregator
from repro.streaming import BatchScanner, ScannerConfig


def _tiny_attack(case_workload):
    return ParoleAttack(
        config=AttackConfig(
            ifu_accounts=case_workload.ifus,
            gentranseq=GenTranSeqConfig(
                episodes=2, steps_per_episode=10, seed=0
            ),
        )
    )


class TestAggregatorShim:
    def test_bare_reorderer_warns_and_works(self, case_workload):
        with pytest.warns(DeprecationWarning, match="strategy"):
            aggregator = AdversarialAggregator(
                "evil", lambda state, txs: tuple(reversed(txs))
            )
        result = aggregator.process(
            case_workload.pre_state, case_workload.transactions
        )
        assert result.executed_order == tuple(
            reversed(case_workload.transactions)
        )
        assert aggregator.rounds_attacked == 1

    def test_keyword_reorderer_also_warns(self, case_workload):
        with pytest.warns(DeprecationWarning):
            AdversarialAggregator(
                "evil", reorderer=lambda state, txs: tuple(txs)
            )

    def test_strategy_keyword_does_not_warn(self):
        from repro.strategies import HonestStrategy

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            AdversarialAggregator("evil", strategy=HonestStrategy())

    def test_both_reorderer_and_strategy_rejected(self):
        from repro.strategies import HonestStrategy

        with pytest.raises(ReproError, match="not both"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                AdversarialAggregator(
                    "evil",
                    reorderer=lambda state, txs: tuple(txs),
                    strategy=HonestStrategy(),
                )

    def test_neither_rejected(self):
        with pytest.raises(ReproError):
            AdversarialAggregator("evil")


class TestParoleAttackShim:
    def test_as_reorderer_warns(self, case_workload):
        attack = _tiny_attack(case_workload)
        with pytest.warns(DeprecationWarning, match="as_strategy"):
            reorderer = attack.as_reorderer()
        order = reorderer(
            case_workload.pre_state, case_workload.transactions
        )
        assert sorted(tx.tx_hash for tx in order) == sorted(
            tx.tx_hash for tx in case_workload.transactions
        )

    def test_as_strategy_shares_bookkeeping(self, case_workload):
        attack = _tiny_attack(case_workload)
        strategy = attack.as_strategy()
        assert strategy.attack is attack
        from repro.strategies import MempoolView

        strategy.observe(
            case_workload.pre_state,
            MempoolView(transactions=tuple(case_workload.transactions)),
        )
        # The outcome landed on the wrapped instance.
        assert len(attack.outcomes) == 1

    def test_old_and_new_paths_produce_identical_orders(self, case_workload):
        from repro.strategies import MempoolView

        old = _tiny_attack(case_workload)
        new = _tiny_attack(case_workload)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old_order = tuple(
                old.as_reorderer()(
                    case_workload.pre_state, case_workload.transactions
                )
            )
        new_order = new.as_strategy().observe(
            case_workload.pre_state,
            MempoolView(transactions=tuple(case_workload.transactions)),
        ).sequence
        assert tuple(tx.tx_hash for tx in old_order) == tuple(
            tx.tx_hash for tx in new_order
        )


class TestBatchScannerShim:
    def test_as_reorderer_warns(self, case_workload):
        scanner = BatchScanner(
            case_workload.ifus,
            config=ScannerConfig(train_episodes=1, train_steps=5),
        )
        with pytest.warns(DeprecationWarning, match="as_strategy"):
            scanner.as_reorderer()

    def test_as_strategy_is_permute_only(self, case_workload):
        from repro.strategies import MempoolView

        scanner = BatchScanner(
            case_workload.ifus,
            config=ScannerConfig(train_episodes=1, train_steps=5),
        )
        action = scanner.as_strategy().observe(
            case_workload.pre_state,
            MempoolView(transactions=tuple(case_workload.transactions)),
        )
        assert action.kinds == ("permute",)
        assert sorted(tx.tx_hash for tx in action.sequence) == sorted(
            tx.tx_hash for tx in case_workload.transactions
        )
