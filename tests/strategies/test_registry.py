"""Registry behaviour: listing, creation, custom plug-ins."""

import pytest

from repro.errors import ReproError
from repro.strategies import (
    STRATEGIES,
    BaseStrategy,
    StrategyContext,
    default_strategies,
)

SHIPPED = (
    "honest", "parole-reorder", "sandwich", "revert-spam",
    "optimistic-backrun",
)


class TestDefaultRegistry:
    def test_ships_all_strategies_in_order(self):
        assert STRATEGIES.names() == SHIPPED

    def test_listing_carries_descriptions(self):
        for info in STRATEGIES.list():
            assert info.name
            assert info.description

    def test_create_builds_fresh_instances(self):
        context = StrategyContext(ifus=("ifu-0",), seed=7)
        first = STRATEGIES.create("sandwich", context)
        second = STRATEGIES.create("sandwich", context)
        assert first is not second

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(ReproError, match="honest"):
            STRATEGIES.create("no-such-strategy")

    def test_contains_and_len(self):
        assert "honest" in STRATEGIES
        assert "no-such" not in STRATEGIES
        assert len(STRATEGIES) == len(SHIPPED)

    def test_default_strategies_returns_fresh_registry(self):
        registry = default_strategies()
        assert registry is not STRATEGIES
        assert registry.names() == STRATEGIES.names()


class TestCustomRegistration:
    def test_registered_plugin_is_creatable(self):
        class Custom(BaseStrategy):
            name = "custom"

            def observe(self, pre_state, view):
                return self.honest(view)

        registry = default_strategies()
        registry.register("custom", "demo", lambda context: Custom())
        assert "custom" in registry
        assert isinstance(registry.create("custom"), Custom)

    def test_empty_name_rejected(self):
        with pytest.raises(ReproError):
            default_strategies().register("", "demo", lambda context: None)

    def test_context_defaults(self):
        context = StrategyContext()
        assert context.ifus == ()
        assert context.seed == 0
        assert context.preset == "quick"


class TestLazyExports:
    def test_plugin_classes_importable_lazily(self):
        from repro.strategies import (
            OptimisticBackrunStrategy,
            ParoleReorderStrategy,
            RevertSpamStrategy,
            SandwichStrategy,
        )

        assert ParoleReorderStrategy.name == "parole-reorder"
        assert SandwichStrategy.name == "sandwich"
        assert RevertSpamStrategy.name == "revert-spam"
        assert OptimisticBackrunStrategy.name == "optimistic-backrun"

    def test_unknown_attribute_raises(self):
        import repro.strategies as strategies

        with pytest.raises(AttributeError):
            strategies.NoSuchThing
