"""Property tests: each shipped plug-in's behaviour matches its declaration."""

from collections import Counter

from repro.rollup.ovm import OVM
from repro.rollup.state import ExecutionMode
from repro.rollup.transaction import NFTTransaction, TxKind
from repro.strategies import (
    STRATEGIES,
    MempoolView,
    StrategyContext,
    validate_action,
)


def _victim_mint(index, fee=0.2):
    return NFTTransaction(
        kind=TxKind.MINT, sender=f"user-{index}", base_fee=1.0,
        priority_fee=fee, nonce=index, submitted_at=index,
        label=f"victim-{index}",
    )


def _hashes(txs):
    return Counter(tx.tx_hash for tx in txs)


def _victim_view(count=4):
    return MempoolView(
        transactions=tuple(_victim_mint(i) for i in range(count))
    )


class TestPermuteOnlyStrategies:
    """honest and parole-reorder declare permute — and never drop/inject."""

    def test_honest_never_drops_or_injects(self, case_workload):
        strategy = STRATEGIES.create("honest")
        view = MempoolView(transactions=tuple(case_workload.transactions))
        action = strategy.observe(case_workload.pre_state, view)
        assert action.kinds == ("permute",)
        assert _hashes(action.sequence) == _hashes(view.transactions)

    def test_parole_reorder_never_drops_or_injects(self, case_workload):
        for seed in (0, 1, 2):
            strategy = STRATEGIES.create(
                "parole-reorder",
                StrategyContext(ifus=case_workload.ifus, seed=seed),
            )
            view = MempoolView(
                transactions=tuple(case_workload.transactions)
            )
            action = strategy.observe(case_workload.pre_state, view)
            assert action.kinds == ("permute",)
            assert action.inserted == ()
            assert _hashes(action.sequence) == _hashes(view.transactions)
            assert validate_action(view.transactions, action).ok

    def test_parole_reorder_beneficiaries_are_the_ifus(self, case_workload):
        strategy = STRATEGIES.create(
            "parole-reorder", StrategyContext(ifus=case_workload.ifus)
        )
        assert strategy.beneficiaries() == tuple(case_workload.ifus)


class TestSandwichStrategy:
    def _funded_state(self, case_workload, balance=10.0):
        state = case_workload.pre_state.copy()
        state.balances["sandwich-attacker"] = balance
        state.balances["sandwich-exit"] = balance
        return state

    def test_insertion_conserves_victims(self, case_workload):
        strategy = STRATEGIES.create("sandwich")
        state = self._funded_state(case_workload)
        view = _victim_view()
        action = strategy.observe(state, view)
        assert set(action.kinds) == {"permute", "insert"}
        assert len(action.inserted) == 2
        # Sequence minus declared insertions == the collected multiset.
        leftovers = _hashes(action.sequence) - _hashes(action.inserted)
        assert leftovers == _hashes(view.transactions)
        allowed = frozenset(a.address for a in strategy.accounts())
        assert validate_action(
            view.transactions, action, allowed_senders=allowed
        ).ok

    def test_straddles_the_victim_ramp(self, case_workload):
        strategy = STRATEGIES.create("sandwich")
        state = self._funded_state(case_workload)
        view = _victim_view()
        action = strategy.observe(state, view)
        front, back = action.inserted
        positions = {tx.tx_hash: i for i, tx in enumerate(action.sequence)}
        victim_positions = [
            positions[tx.tx_hash] for tx in view.transactions
        ]
        assert positions[front.tx_hash] < min(victim_positions)
        assert positions[back.tx_hash] > max(victim_positions)
        assert front.kind is TxKind.MINT
        assert back.kind is TxKind.TRANSFER

    def test_too_few_victims_degrades_to_honest(self, case_workload):
        strategy = STRATEGIES.create("sandwich")
        state = self._funded_state(case_workload)
        view = _victim_view(count=1)
        action = strategy.observe(state, view)
        assert action.inserted == ()
        assert action.sequence == view.transactions

    def test_empty_wallet_degrades_to_honest(self, case_workload):
        strategy = STRATEGIES.create("sandwich")
        state = self._funded_state(case_workload, balance=0.0)
        action = strategy.observe(state, _victim_view())
        assert action.inserted == ()

    def test_encrypted_view_blinds_the_strategy(self, case_workload):
        # Sealed stand-ins are BURNs from unknown senders: no visible
        # victim mints, so the sandwich has nothing to straddle.
        strategy = STRATEGIES.create("sandwich")
        state = self._funded_state(case_workload)
        sealed = tuple(
            NFTTransaction(
                kind=TxKind.BURN, sender=f"sealed-{i}", base_fee=1.0,
                priority_fee=0.2, nonce=i, label=f"sealed-{i}",
            )
            for i in range(4)
        )
        view = MempoolView(transactions=sealed, encrypted=True)
        action = strategy.observe(state, view)
        assert action.inserted == ()
        assert action.sequence == sealed


class TestRevertSpamStrategy:
    def test_marks_are_its_own_insertions(self, case_workload):
        strategy = STRATEGIES.create("revert-spam")
        view = _victim_view()
        action = strategy.observe(case_workload.pre_state, view)
        assert set(action.kinds) == {"permute", "insert", "revert"}
        inserted_hashes = {tx.tx_hash for tx in action.inserted}
        assert set(action.revert_marked) == inserted_hashes
        allowed = frozenset(a.address for a in strategy.accounts())
        assert validate_action(
            view.transactions, action, allowed_senders=allowed
        ).ok

    def test_losers_actually_revert_and_pay_fees(self, case_workload):
        strategy = STRATEGIES.create("revert-spam")
        state = case_workload.pre_state.copy()
        account = strategy.accounts()[0]
        # Bankroll covering exactly one claim at the current price.
        state.balances[account.address] = state.unit_price * 1.2
        action = strategy.observe(state, MempoolView(transactions=()))
        assert len(action.inserted) >= 2
        trace = OVM(mode=ExecutionMode.STRICT).replay(state, action.sequence)
        executed = [
            step for step in trace.steps
            if step.tx.tx_hash in set(action.revert_marked)
            and step.executed
        ]
        reverted = [
            step for step in trace.steps
            if step.tx.tx_hash in set(action.revert_marked)
            and not step.executed
        ]
        # Exactly one duplicate claim wins; the rest revert.
        assert len(executed) == 1
        assert len(reverted) == len(action.inserted) - 1
        # Every claim — winner and losers — bid a real fee.
        assert all(tx.total_fee > 0 for tx in action.inserted)

    def test_exhausted_supply_degrades_to_honest(self, case_workload):
        strategy = STRATEGIES.create("revert-spam")
        state = case_workload.pre_state.copy()
        # Mint out the whole collection so no claim can win.
        state.inventory["hoarder"] = (
            state.inventory.get("hoarder", 0) + state.remaining_supply
        )
        assert state.remaining_supply == 0
        action = strategy.observe(state, _victim_view())
        assert action.inserted == ()

    def test_unique_nonces_across_rounds(self, case_workload):
        strategy = STRATEGIES.create("revert-spam")
        first = strategy.observe(
            case_workload.pre_state, MempoolView(transactions=())
        )
        second = strategy.observe(
            case_workload.pre_state, MempoolView(transactions=())
        )
        hashes = [tx.tx_hash for tx in first.inserted + second.inserted]
        assert len(hashes) == len(set(hashes))


class TestOptimisticBackrunStrategy:
    def _view(self, pending_mints):
        return MempoolView(
            transactions=tuple(_victim_mint(i) for i in range(2)),
            pending=tuple(
                _victim_mint(10 + i) for i in range(pending_mints)
            ),
        )

    def test_bets_on_observed_backlog(self, case_workload):
        strategy = STRATEGIES.create("optimistic-backrun")
        state = case_workload.pre_state.copy()
        state.balances["backrun-attacker"] = 10.0
        action = strategy.observe(state, self._view(pending_mints=3))
        assert len(action.inserted) == 1
        # Speculative mint rides at the tail of the batch.
        assert action.sequence[-1] is action.inserted[0]
        allowed = frozenset(a.address for a in strategy.accounts())
        assert validate_action(
            self._view(3).transactions, action, allowed_senders=allowed
        ).ok

    def test_thin_backlog_degrades_to_honest(self, case_workload):
        strategy = STRATEGIES.create("optimistic-backrun")
        state = case_workload.pre_state.copy()
        state.balances["backrun-attacker"] = 10.0
        action = strategy.observe(state, self._view(pending_mints=1))
        assert action.inserted == ()
