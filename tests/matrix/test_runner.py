"""Matrix runner: grid semantics, determinism, memoization, faults."""

import json

import pytest

from repro import api
from repro.errors import ReproError
from repro.experiments.runner import REGISTRY
from repro.matrix import (
    FAULT_PLAN_NAMES,
    MatrixConfig,
    build_fault_plan,
    matrix_config_for,
    run_matrix,
)
from repro.parallel import get_runner
from repro.store import ResultStore

SMALL = MatrixConfig(
    strategies=("honest", "parole-reorder", "sandwich"),
    defenses=("none", "fcfs"),
    fault_plans=("commit-failure",),
    fault_strategy="sandwich",
    rounds=2,
    batch_size=6,
    submit_per_batch=8,
    num_users=16,
    seed=3,
)


@pytest.fixture(scope="module")
def small_report():
    return run_matrix(SMALL)


class TestMatrixConfig:
    def test_cells_cover_grid_plus_fault_extras(self):
        cells = SMALL.cells()
        assert len(cells) == 3 * 2 + 1
        assert cells.count(("sandwich", "none", "commit-failure")) == 1
        assert all(plan == "none" for _, _, plan in cells[:6])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ReproError, match="unknown strategy"):
            MatrixConfig(strategies=("no-such",))

    def test_unknown_defense_rejected(self):
        with pytest.raises(ReproError, match="unknown defense"):
            MatrixConfig(defenses=("no-such",))

    def test_unknown_fault_plan_rejected(self):
        with pytest.raises(ReproError, match="unknown fault plan"):
            MatrixConfig(fault_plans=("no-such",))

    def test_fault_strategy_must_be_in_grid(self):
        with pytest.raises(ReproError, match="fault_strategy"):
            MatrixConfig(
                strategies=("honest",), fault_strategy="sandwich"
            )

    def test_no_fault_cells_waives_fault_strategy(self):
        config = MatrixConfig(
            strategies=("honest",), fault_plans=(), fault_strategy="sandwich"
        )
        assert len(config.cells()) == len(config.defenses)

    def test_preset_scaling(self):
        quick = matrix_config_for("quick", seed=1)
        full = matrix_config_for("full", seed=1)
        assert full.rounds > quick.rounds
        assert quick.seed == 1

    def test_subset_swaps_fault_strategy(self):
        config = matrix_config_for("quick", strategies=("honest", "sandwich"))
        assert config.fault_strategy in config.strategies


class TestBuildFaultPlan:
    def test_known_names(self):
        for name in FAULT_PLAN_NAMES:
            plan = build_fault_plan(name, rounds=4)
            if name == "none":
                assert plan is None
            else:
                assert plan.events

    def test_unknown_name_raises(self):
        with pytest.raises(ReproError, match="unknown fault plan"):
            build_fault_plan("meteor-strike", rounds=4)


class TestGridRun:
    def test_zero_invariant_violations(self, small_report):
        assert small_report.ok
        assert small_report.total_violations == ()
        assert all(cell.violations == () for cell in small_report.cells)

    def test_every_cell_ran_all_rounds(self, small_report):
        for cell in small_report.cells:
            assert cell.rounds == SMALL.rounds
            assert cell.batches >= 1
            assert cell.submitted > 0
            assert cell.state_root
            # "Proposed" counts only rounds that deviated from honest.
            assert 0 <= cell.rounds_proposed <= cell.rounds
        honest = [c for c in small_report.cells if c.strategy == "honest"]
        assert all(cell.rounds_proposed == 0 for cell in honest)

    def test_honest_cells_have_no_lift(self, small_report):
        honest = [
            cell for cell in small_report.cells if cell.strategy == "honest"
        ]
        assert honest
        for cell in honest:
            assert cell.attack_lift_eth == pytest.approx(0.0, abs=1e-9)
            assert cell.inserted_attempted == 0

    def test_fault_cell_applied_its_faults(self, small_report):
        fault_cells = [
            cell for cell in small_report.cells
            if cell.fault_plan == "commit-failure"
        ]
        assert len(fault_cells) == 1
        assert fault_cells[0].faults_applied
        assert fault_cells[0].commit_retries >= 1

    def test_leaderboard_sorted_by_profit(self, small_report):
        rows = small_report.leaderboard()
        profits = [row.net_profit_eth for row in rows]
        assert profits == sorted(profits, reverse=True)
        assert len(rows) == len(small_report.cells)

    def test_render_mentions_every_strategy(self, small_report):
        table = small_report.render()
        for name in SMALL.strategies:
            assert name in table


class TestDeterminism:
    def test_jobs_1_vs_2_byte_identical(self, small_report):
        with get_runner(2) as runner:
            threaded = run_matrix(SMALL, runner=runner)
        assert threaded.deterministic_json() == (
            small_report.deterministic_json()
        )

    def test_payload_is_json_round_trippable(self, small_report):
        payload = json.loads(small_report.deterministic_json())
        assert payload["config"]["seed"] == SMALL.seed
        assert len(payload["cells"]) == len(small_report.cells)
        assert payload["violations"] == []

    def test_cold_vs_warm_store_identical(self, tmp_path, small_report):
        cold_store = ResultStore(tmp_path / "cache")
        cold = run_matrix(SMALL, store=cold_store)
        assert cold_store.stats.misses == len(SMALL.cells())
        assert cold_store.stats.hits == 0

        warm_store = ResultStore(tmp_path / "cache")
        warm = run_matrix(SMALL, store=warm_store)
        assert warm_store.stats.hits == len(SMALL.cells())
        assert warm_store.stats.misses == 0
        assert cold.deterministic_json() == warm.deterministic_json()
        assert warm.deterministic_json() == small_report.deterministic_json()


class TestFacade:
    def test_run_matrix_subset_through_api(self):
        report = api.run_matrix(
            strategies=("honest",), defenses=("none", "fcfs"),
            fault_plans=(), preset="quick",
        )
        assert report.ok
        assert {cell.defense for cell in report.cells} == {"none", "fcfs"}

    def test_listings_back_the_matrix(self):
        strategies = {info.name for info in api.list_strategies()}
        defenses = {info.name for info in api.list_defenses()}
        assert set(SMALL.strategies) <= strategies
        assert set(SMALL.defenses) <= defenses

    def test_matrix_registered_as_experiment(self):
        assert "matrix" in {spec.experiment_id for spec in REGISTRY}
