"""Sequencing defenses: blind/reveal/enforce hooks and the registry."""

from types import SimpleNamespace

import pytest

from repro.errors import ReproError
from repro.matrix import (
    DEFENSES,
    DefendedAggregator,
    Defense,
    EncryptedMempoolDefense,
    FCFSDefense,
    FeeAuctionDefense,
    GuardedDefense,
    default_defenses,
)
from repro.rollup.transaction import NFTTransaction, TxKind
from repro.strategies import (
    BaseStrategy,
    MempoolView,
    ReordererStrategy,
    StrategyAccount,
    StrategyAction,
)

SHIPPED = ("none", "fcfs", "fee-auction", "encrypted", "guarded")


def _mint(sender, nonce=0, fee=0.1, submitted_at=0.0):
    return NFTTransaction(
        kind=TxKind.MINT, sender=sender, base_fee=1.0, priority_fee=fee,
        nonce=nonce, submitted_at=submitted_at, label=f"{sender}-{nonce}",
    )


def _flagged_guard():
    report = SimpleNamespace(
        flagged=True, worst_case_profit_eth=1.0, threshold_eth=0.0
    )
    return SimpleNamespace(inspect=lambda state, txs: report)


class TestFCFSDefense:
    def test_returns_arrival_order(self, case_workload):
        collected = (
            _mint("late", nonce=0, submitted_at=9.0),
            _mint("early", nonce=0, submitted_at=1.0),
            _mint("mid", nonce=0, submitted_at=5.0),
        )
        action = StrategyAction.permutation(tuple(reversed(collected)))
        ruling = FCFSDefense().enforce(
            case_workload.pre_state, collected, action
        )
        assert [tx.sender for tx in ruling.sequence] == [
            "early", "mid", "late"
        ]
        assert not ruling.detected

    def test_insertions_queue_at_the_tail(self, case_workload):
        collected = (
            _mint("victim-a", submitted_at=1.0),
            _mint("victim-b", submitted_at=2.0),
        )
        front = _mint("adv", nonce=7, submitted_at=0.0)
        action = StrategyAction(
            sequence=(front,) + collected, inserted=(front,),
            kinds=("permute", "insert"),
        )
        ruling = FCFSDefense().enforce(
            case_workload.pre_state, collected, action
        )
        # Front-run attempt lands last, behind every victim.
        assert ruling.sequence[-1] is front
        assert [tx.sender for tx in ruling.sequence[:-1]] == [
            "victim-a", "victim-b"
        ]


class TestFeeAuctionDefense:
    def test_position_is_bought_not_claimed(self, case_workload):
        cheap = _mint("cheap", fee=0.01, submitted_at=0.0)
        rich = _mint("rich", fee=0.9, submitted_at=5.0)
        collected = (cheap, rich)
        # Adversary tries to put the cheap tx first anyway.
        action = StrategyAction.permutation((cheap, rich))
        ruling = FeeAuctionDefense().enforce(
            case_workload.pre_state, collected, action
        )
        assert [tx.sender for tx in ruling.sequence] == ["rich", "cheap"]


class TestEncryptedMempoolDefense:
    def test_blind_seals_content_but_keeps_fees(self):
        defense = EncryptedMempoolDefense()
        view = MempoolView(
            transactions=(_mint("alice", fee=0.25),),
            pending=(_mint("bob", fee=0.5),),
            round_index=3,
        )
        blinded = defense.blind(view)
        assert blinded.encrypted
        assert blinded.round_index == 3
        sealed = blinded.transactions[0]
        assert sealed.kind is TxKind.BURN
        assert sealed.sender != "alice"
        assert sealed.priority_fee == 0.25
        assert blinded.pending[0].priority_fee == 0.5

    def test_reveal_round_trips_sequence_and_marks(self):
        defense = EncryptedMempoolDefense()
        real = (_mint("alice", nonce=0), _mint("bob", nonce=1))
        view = MempoolView(transactions=real)
        blinded = defense.blind(view)
        # Strategy permutes the envelopes and marks one for revert.
        action = StrategyAction(
            sequence=tuple(reversed(blinded.transactions)),
            revert_marked=(blinded.transactions[0].tx_hash,),
            kinds=("permute", "revert"),
        )
        revealed = defense.reveal(action, blinded)
        assert tuple(tx.tx_hash for tx in revealed.sequence) == (
            real[1].tx_hash, real[0].tx_hash,
        )
        assert revealed.revert_marked == (real[0].tx_hash,)


class TestGuardedDefense:
    def test_unchanged_action_skips_the_probe(self, case_workload):
        defense = GuardedDefense()
        defense.guard = SimpleNamespace(
            inspect=lambda state, txs: pytest.fail("probe should not run")
        )
        collected = tuple(case_workload.transactions)
        ruling = defense.enforce(
            case_workload.pre_state,
            collected,
            StrategyAction.permutation(collected),
        )
        assert ruling.sequence == collected
        assert not ruling.detected

    def test_flagged_proposal_demotes_to_honest_order(self, case_workload):
        defense = GuardedDefense(profit_threshold_eth=0.0)
        defense.guard = _flagged_guard()
        collected = tuple(case_workload.transactions)
        action = StrategyAction.permutation(tuple(reversed(collected)))
        ruling = defense.enforce(
            case_workload.pre_state, collected, action
        )
        assert ruling.detected
        assert ruling.sequence == collected
        assert "worst-case" in ruling.note

    def test_sky_high_threshold_never_flags(self, case_workload):
        defense = GuardedDefense(profit_threshold_eth=1e9)
        collected = tuple(case_workload.transactions)
        action = StrategyAction.permutation(tuple(reversed(collected)))
        ruling = defense.enforce(
            case_workload.pre_state, collected, action
        )
        assert not ruling.detected
        assert ruling.sequence == action.sequence


class TestDefendedAggregator:
    def test_detections_counter_increments(self, case_workload):
        defense = GuardedDefense(profit_threshold_eth=0.0)
        defense.guard = _flagged_guard()
        aggregator = DefendedAggregator(
            "agg",
            strategy=ReordererStrategy(
                lambda state, txs: tuple(reversed(txs)), name="reverse"
            ),
            defense=defense,
        )
        result = aggregator.process(
            case_workload.pre_state, case_workload.transactions
        )
        assert aggregator.detections == 1
        # Demoted: honest collected order executed, not the reversal.
        assert result.executed_order == tuple(case_workload.transactions)

    def test_backlog_feeds_the_pending_view(self, case_workload):
        seen = {}

        class Spy(BaseStrategy):
            name = "spy"

            def observe(self, pre_state, view):
                seen["pending"] = view.pending
                return self.honest(view)

        backlog = (_mint("queued", nonce=3),)
        aggregator = DefendedAggregator(
            "agg", strategy=Spy(), backlog=lambda: backlog
        )
        aggregator.process(
            case_workload.pre_state, case_workload.transactions
        )
        assert seen["pending"] == backlog

    def test_encrypted_defense_blinds_then_reveals(self, case_workload):
        seen = {}

        class Spy(BaseStrategy):
            name = "spy"

            def accounts(self):
                return (StrategyAccount("spy", 1.0),)

            def observe(self, pre_state, view):
                seen["encrypted"] = view.encrypted
                seen["senders"] = {tx.sender for tx in view.transactions}
                return StrategyAction.permutation(
                    tuple(reversed(view.transactions))
                )

        aggregator = DefendedAggregator(
            "agg", strategy=Spy(), defense=EncryptedMempoolDefense()
        )
        result = aggregator.process(
            case_workload.pre_state, case_workload.transactions
        )
        assert seen["encrypted"]
        real_senders = {tx.sender for tx in case_workload.transactions}
        assert seen["senders"].isdisjoint(real_senders)
        # The committed batch is the *real* transactions, reversed.
        assert result.executed_order == tuple(
            reversed(case_workload.transactions)
        )


class TestDefenseRegistry:
    def test_ships_all_defenses_in_order(self):
        assert DEFENSES.names() == SHIPPED

    def test_create_builds_fresh_instances(self):
        first = DEFENSES.create("encrypted")
        second = DEFENSES.create("encrypted")
        assert first is not second
        assert isinstance(first, EncryptedMempoolDefense)

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(ReproError, match="fcfs"):
            DEFENSES.create("no-such-defense")

    def test_info_and_iteration(self):
        assert DEFENSES.info("none").name == "none"
        assert len(DEFENSES) == len(SHIPPED)
        assert [info.name for info in DEFENSES] == list(SHIPPED)
        assert "guarded" in DEFENSES

    def test_default_defenses_is_fresh(self):
        registry = default_defenses()
        assert registry is not DEFENSES
        assert registry.names() == DEFENSES.names()

    def test_base_defense_is_a_pass_through(self, case_workload):
        collected = tuple(case_workload.transactions)
        action = StrategyAction.permutation(tuple(reversed(collected)))
        ruling = Defense().enforce(
            case_workload.pre_state, collected, action
        )
        assert ruling.sequence == action.sequence
        assert Defense().blind(
            MempoolView(transactions=collected)
        ).transactions == collected
