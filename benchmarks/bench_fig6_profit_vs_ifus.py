"""Figure 6 bench: average attack profit per IFU vs #IFUs served.

Runs the shared-pool sweep at benchmark scale (reduced DQN budget,
reduced grid) and checks the paper's qualitative shape: a single IFU
earns the highest average profit per IFU, and a higher adversarial
fraction earns more in total.
"""


from repro.experiments import EffortPreset, render_fig6, run_fig6

from conftest import BenchSeries

BENCH = EffortPreset(name="bench", episodes=4, steps_per_episode=30, trials=2)


def _run():
    return run_fig6(
        adversarial_fractions=(0.1, 0.5),
        mempool_sizes=(10, 25),
        ifu_counts=(1, 2, 4),
        num_aggregators=6,
        preset=BENCH,
        seed=0,
    )


def _mean(values):
    return sum(values) / len(values)


def test_fig6_profit_vs_ifus(benchmark, save_artifact, emit_bench):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_artifact("fig6_profit_vs_ifus", render_fig6(points))
    emit_bench(
        "fig6_profit_vs_ifus",
        series=[
            BenchSeries(
                f"avg_profit_per_ifu_{n}ifus",
                "ETH",
                tuple(
                    p.avg_profit_per_ifu_eth for p in points if p.num_ifus == n
                ),
                meta={"num_ifus": n},
            )
            for n in (1, 2, 4)
        ],
        benchmark=benchmark,
    )

    assert len(points) == 2 * 2 * 3

    # Shape 1 (paper: "serving less number of IFUs incurs better results
    # in terms of average profit per IFU"): the 1-IFU cells average the
    # highest per-IFU profit across the whole grid.
    mean_by_ifus = {
        n: _mean([p.avg_profit_per_ifu_eth for p in points if p.num_ifus == n])
        for n in (1, 2, 4)
    }
    assert mean_by_ifus[1] > mean_by_ifus[2]
    assert mean_by_ifus[1] > mean_by_ifus[4]

    # Shape 2: 50% adversarial earns more total profit than 10%.
    total_10 = sum(p.total_profit_eth for p in points if p.adversarial_fraction == 0.1)
    total_50 = sum(p.total_profit_eth for p in points if p.adversarial_fraction == 0.5)
    assert total_50 > total_10

    # Shape 3: the larger mempool earns at least as much in total.
    total_small = sum(p.total_profit_eth for p in points if p.mempool_size == 10)
    total_large = sum(p.total_profit_eth for p in points if p.mempool_size == 25)
    assert total_large >= total_small
