"""Figure 5 bench: the three case studies plus the certified optimum.

Replays the paper's exact orderings and exhaustively certifies the best
achievable final balance.  Shape assertions: case 1 (2.50) < case 2
(2.57) < case 3 (2.73) <= certified best, with the paper's +7% / +24%
L2-balance gains.
"""

import pytest

from repro.experiments import render_case_studies, run_case_studies

from conftest import BenchSeries


def test_case_study_replay(benchmark, save_artifact, emit_bench):
    cases = benchmark(run_case_studies)
    assert cases["case1"].final_balance == pytest.approx(2.5)
    assert cases["case2"].final_balance == pytest.approx(2.5667, abs=1e-3)
    assert cases["case3"].final_balance == pytest.approx(2.7333, abs=1e-3)
    save_artifact("fig5_case_studies", render_case_studies(cases))
    emit_bench(
        "fig5_case_studies",
        series=[
            BenchSeries(f"{name}_balance", "ETH", (cases[name].final_balance,))
            for name in ("case1", "case2", "case3")
        ],
        benchmark=benchmark,
    )


def test_case_study_certified_optimum(benchmark, save_artifact, emit_bench):
    def certify():
        return run_case_studies(certify_optimum=True)

    cases = benchmark.pedantic(certify, rounds=1, iterations=1)
    assert cases["best"].final_balance >= cases["case3"].final_balance
    save_artifact(
        "fig5_certified_optimum",
        f"exhaustive optimum over 8! orders: "
        f"{cases['best'].final_balance:.4f} ETH "
        f"(paper case 3: {cases['case3'].final_balance:.4f} ETH)",
    )
    emit_bench(
        "fig5_certified_optimum",
        series=[
            BenchSeries("best_balance", "ETH", (cases["best"].final_balance,))
        ],
        benchmark=benchmark,
    )
