"""Figure 10 bench: profit opportunity in real-world NFT snapshots.

Generates the synthetic Optimism/Arbitrum population, runs the scanner,
and checks the paper's observations: every chain x tier cell reports
opportunity and Arbitrum exceeds Optimism in total.
"""


from repro.config import SnapshotStudyConfig
from repro.experiments import render_fig10, run_fig10
from repro.market import Chain

from conftest import BenchSeries


def _run():
    return run_fig10(SnapshotStudyConfig(collections_per_tier=8, seed=0))


def test_fig10_snapshot_study(benchmark, save_artifact, emit_bench):
    summaries = benchmark(_run)
    save_artifact("fig10_nft_snapshots", render_fig10(summaries))
    emit_bench(
        "fig10_nft_snapshots",
        series=[
            BenchSeries(
                f"total_profit_{chain.name.lower()}",
                "ETH",
                tuple(
                    cell.total_profit_eth
                    for cell in summaries
                    if cell.chain is chain
                ),
                meta={"chain": chain.name},
            )
            for chain in (Chain.OPTIMISM, Chain.ARBITRUM)
        ],
        benchmark=benchmark,
    )

    assert len(summaries) == 6
    assert all(cell.total_profit_eth > 0 for cell in summaries)

    arbitrum = sum(
        cell.total_profit_eth for cell in summaries
        if cell.chain is Chain.ARBITRUM
    )
    optimism = sum(
        cell.total_profit_eth for cell in summaries
        if cell.chain is Chain.OPTIMISM
    )
    # The paper's headline: higher arbitrage opportunity on Arbitrum.
    assert arbitrum > optimism
