"""Shared helpers for the benchmark suite.

Every bench regenerates its paper table/figure as text; outputs are
printed (visible with ``pytest -s``) and archived under
``benchmarks/results/`` so a bench run leaves the full set of regenerated
artifacts on disk.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_artifact():
    """Persist one regenerated table/figure and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, content: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(content + "\n")
        print(f"\n===== {name} =====\n{content}\n")

    return _save
