"""Shared helpers for the benchmark suite.

Every bench regenerates its paper table/figure as text; outputs are
printed (visible with ``pytest -s``) and archived under
``benchmarks/results/`` so a bench run leaves the full set of regenerated
artifacts on disk.

Numbers flow through one shared writer: the :func:`emit_bench` fixture
builds a versioned :class:`repro.perf.BenchRecord` (environment
fingerprint, named series, machine-readable gate verdicts, the bench's
legacy payload as the ``view``), renders it to the historical
``BENCH_<id>.json`` filename, and — when ``REPRO_PERF_STORE`` names a
directory — appends it to the perf trend store for regression tracking.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.perf import (
    BenchSeries,
    GateVerdict,
    new_record,
    open_trend_from_env,
    write_record,
)

__all__ = ["RESULTS_DIR", "BenchSeries", "GateVerdict"]

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_artifact():
    """Persist one regenerated table/figure and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, content: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(content + "\n")
        print(f"\n===== {name} =====\n{content}\n")

    return _save


def _benchmark_samples(benchmark) -> list:
    """Raw wall-clock samples from a pytest-benchmark fixture, if any.

    Absent stats (``--benchmark-disable``, or the fixture never ran)
    degrade to no series rather than an error.
    """
    if benchmark is None:
        return []
    try:
        return [float(v) for v in benchmark.stats.stats.data]
    except (AttributeError, TypeError):
        return []


@pytest.fixture()
def emit_bench():
    """The one shared writer behind every ``BENCH_*.json`` artifact."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(
        bench_id: str,
        series=(),
        gates=(),
        view=None,
        meta=None,
        kernel_backend=None,
        benchmark=None,
    ):
        series = list(series)
        samples = _benchmark_samples(benchmark)
        if samples:
            series.append(
                BenchSeries("wall_time", "s", samples, direction="lower")
            )
        record = new_record(
            bench_id,
            series=series,
            gates=gates,
            view=view,
            meta=meta,
            kernel_backend=kernel_backend,
        )
        path = write_record(record, RESULTS_DIR)
        for gate in record.gates:
            print(gate.render())
        trend = open_trend_from_env()
        if trend is not None:
            trend.append(record)
        print(f"bench record: {path.name} (env {record.env_digest})")
        return record

    return _emit
