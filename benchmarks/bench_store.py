"""Result-store bench: cold vs warm ``run_all`` at QUICK effort.

Runs a representative experiment subset cold into a fresh
content-addressed store, then reruns it warm from the same cache, and
archives wall-clock numbers plus the acceptance gates
(``BENCH_store.json``):

* the warm rerun serves **every** experiment from cache (100% hit
  ratio, no recomputation);
* the warm ``<id>.txt``/``<id>.json`` artifacts are byte-identical to
  the cold run's;
* the warm pass clears a 5x wall-clock speedup over cold.
"""

from __future__ import annotations

import pathlib
import tempfile
import time

from repro.experiments import QUICK, run_all
from repro.store import ResultStore

from conftest import BenchSeries, GateVerdict

BENCH_SCHEMA = "BENCH_store/v1"
#: Everything cheap enough to run twice in a bench, including one DQN
#: training experiment (fig8) so the speedup covers real compute.
EXPERIMENTS = ["table3", "fig5", "fig8", "fig9"]
REQUIRED_SPEEDUP = 5.0


def test_store_warm_rerun_speedup(save_artifact, emit_bench):
    """Cold vs warm run_all; archives BENCH_store.json."""
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        cache = root / "cache"

        started = time.perf_counter()
        cold_records = run_all(
            root / "cold", preset=QUICK, only=EXPERIMENTS,
            store=ResultStore(cache),
        )
        cold_seconds = time.perf_counter() - started
        assert all(record.ok for record in cold_records)

        warm_store = ResultStore(cache)
        started = time.perf_counter()
        warm_records = run_all(
            root / "warm", preset=QUICK, only=EXPERIMENTS, store=warm_store,
        )
        warm_seconds = time.perf_counter() - started
        assert all(record.ok for record in warm_records)

        hit_ratio = (
            sum(1 for r in warm_records if r.cache["experiment_hit"])
            / len(warm_records)
        )
        identical = {}
        for experiment_id in EXPERIMENTS:
            identical[experiment_id] = all(
                (root / "cold" / f"{experiment_id}{suffix}").read_bytes()
                == (root / "warm" / f"{experiment_id}{suffix}").read_bytes()
                for suffix in (".txt", ".json")
            )
        speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
        store_bytes = warm_store.size_bytes()

    lines = [
        f"Result store: cold vs warm run_all ({', '.join(EXPERIMENTS)})",
        "",
        f"cold : {cold_seconds:8.2f}s",
        f"warm : {warm_seconds:8.2f}s  ({speedup:.1f}x, "
        f"hit ratio {hit_ratio:.0%}, store {store_bytes} bytes)",
        "byte-identical artifacts: "
        + ", ".join(f"{k}={v}" for k, v in identical.items()),
    ]
    save_artifact("bench_store", "\n".join(lines))

    emit_bench(
        "store",
        series=[
            BenchSeries("cold_seconds", "s", (cold_seconds,), direction="lower"),
            BenchSeries("warm_seconds", "s", (warm_seconds,), direction="lower"),
            BenchSeries("warm_speedup", "x", (speedup,)),
            BenchSeries("warm_hit_ratio", "fraction", (hit_ratio,)),
        ],
        gates=[
            GateVerdict(
                name="warm_speedup",
                armed=True,
                passed=speedup >= REQUIRED_SPEEDUP,
                threshold=REQUIRED_SPEEDUP,
                observed=speedup,
            ),
            GateVerdict(
                name="warm_hit_ratio",
                armed=True,
                passed=hit_ratio == 1.0,
                threshold=1.0,
                observed=hit_ratio,
            ),
        ],
        view={
            "schema": BENCH_SCHEMA,
            "experiments": EXPERIMENTS,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": speedup,
            "required_speedup": REQUIRED_SPEEDUP,
            "warm_hit_ratio": hit_ratio,
            "byte_identical": identical,
            "store_bytes": store_bytes,
        },
    )

    assert hit_ratio == 1.0, "warm rerun recomputed an experiment"
    assert all(identical.values()), f"artifacts differ: {identical}"
    assert speedup >= REQUIRED_SPEEDUP, (
        f"warm rerun only {speedup:.1f}x faster (need {REQUIRED_SPEEDUP}x)"
    )
