"""Figure 7 bench: total IFU profit vs adversarial-aggregator fraction.

Sweeps the fraction at benchmark scale and checks the paper's shape:
total profit grows with the fraction of adversarial aggregators in
every (IFU count, mempool) panel, and serving 2 IFUs yields a
sub-linear total compared to 1 IFU.
"""


from repro.experiments import EffortPreset, render_fig7, run_fig7

from conftest import BenchSeries

BENCH = EffortPreset(name="bench", episodes=3, steps_per_episode=25, trials=1)
FRACTIONS = (0.25, 0.5, 0.75)


def _run():
    return run_fig7(
        ifu_counts=(1, 2),
        mempool_sizes=(25, 50),
        fractions=FRACTIONS,
        num_aggregators=4,
        preset=BENCH,
        seed=0,
    )


def test_fig7_adversarial_fraction(benchmark, save_artifact, emit_bench):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_artifact("fig7_adversarial_fraction", render_fig7(points))
    emit_bench(
        "fig7_adversarial_fraction",
        series=[
            BenchSeries(
                f"total_profit_frac{int(fraction * 100)}",
                "ETH",
                tuple(
                    p.total_profit_eth
                    for p in points
                    if p.adversarial_fraction == fraction
                ),
                meta={"fraction": fraction},
            )
            for fraction in FRACTIONS
        ],
        benchmark=benchmark,
    )

    assert len(points) == 2 * 2 * 3
    by_cell = {
        (p.num_ifus, p.mempool_size, p.adversarial_fraction): p for p in points
    }

    # Shape 1: in every panel, more adversarial aggregators never earn
    # less, and the ends strictly increase.
    for ifus in (1, 2):
        for mempool in (25, 50):
            series = [
                by_cell[(ifus, mempool, f)].total_profit_eth for f in FRACTIONS
            ]
            assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))
            assert series[-1] > series[0]

    # Shape 2: profits are finite and non-negative everywhere.
    assert all(p.total_profit_eth >= 0 for p in points)

    # Shape 3 (paper: "2 IFUs ... total profit increase is not linear"):
    # serving 2 IFUs earns less than 2x the single-IFU total.
    total_1 = sum(p.total_profit_eth for p in points if p.num_ifus == 1)
    total_2 = sum(p.total_profit_eth for p in points if p.num_ifus == 2)
    assert total_2 < 2.0 * total_1
