"""Fabric scheduler bench: static chunks vs work stealing on skewed costs.

The adversarial workload the work-stealing scheduler exists for: a
sweep whose first few tasks are ~25x more expensive than the rest
(chaos-matrix cells and DQN epsilons look exactly like this).  The
static chunker puts all the heavies into one contiguous chunk, so one
worker grinds through them serially while the rest of the pool idles —
the measured ceiling is ~1.6x no matter how many cores are present.
LPT planning + adaptive chunks + stealing spread them, which is what
the >= 2.5x acceptance gate at 4 workers checks.

Determinism is asserted unconditionally (identical values from every
backend, including a remote loopback worker).  The speedup gates arm
only with >= 4 CPU cores — this is a *compute-bound* workload, so on a
1-2 core runner the honest verdict is ``UNARMED`` with the cpu_count in
the reason, never a silently green check.
"""

from __future__ import annotations

import os
import time

from repro.parallel import (
    ProcessRunner,
    SerialRunner,
    StealingRunner,
    Task,
    spawn_task_seeds,
)
from repro.parallel.remote import RemoteRunner, WorkerServer

from conftest import BenchSeries, GateVerdict

BENCH_SCHEMA = "BENCH_fabric/v1"
TASK_COUNT = 64
HEAVY_COUNT = 4
HEAVY_UNITS = 25
LIGHT_UNITS = 1
#: Busy-loop iterations per cost unit (~2-4 ms on current hardware).
ITERATIONS_PER_UNIT = 120_000
WORKERS = 4
MIN_CORES_FOR_GATE = 4
REQUIRED_STEALING_SPEEDUP = 2.5
REQUIRED_ADVANTAGE_OVER_STATIC = 1.25


def spin(units: int, seed=None) -> int:
    """Deterministic CPU-bound work: ``units`` blocks of xorshift."""
    state = (seed or 0) % (2**32) or 0x9E3779B9
    for _ in range(units * ITERATIONS_PER_UNIT):
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
    return state


def _tasks():
    """Heavies first and contiguous — worst case for static chunking.

    With 64 tasks and 4 workers the static chunker cuts chunks of 4,
    so tasks 0-3 (all the heavies) land in one chunk and serialize on
    one worker: makespan ~HEAVY_COUNT*HEAVY_UNITS of a
    ~(HEAVY+LIGHT)-unit total.
    """
    seeds = spawn_task_seeds(0, TASK_COUNT)
    return [
        Task(
            fn=spin,
            args=(HEAVY_UNITS if index < HEAVY_COUNT else LIGHT_UNITS,),
            seed=seed,
            label=f"{'heavy' if index < HEAVY_COUNT else 'light'}#{index}",
        )
        for index, seed in enumerate(seeds)
    ]


def _time_runner(runner, tasks):
    started = time.perf_counter()
    values = runner.map(tasks)
    return time.perf_counter() - started, values


def test_stealing_beats_static_on_skewed_costs(save_artifact, emit_bench):
    cpu_count = os.cpu_count() or 1
    tasks = _tasks()

    serial_seconds, serial_values = _time_runner(SerialRunner(), tasks)

    with ProcessRunner(max_workers=WORKERS) as runner:
        runner.map(tasks[:1])  # pool startup outside the timed region
        static_seconds, static_values = _time_runner(runner, tasks)

    with StealingRunner(max_workers=WORKERS, tick_seconds=0.2) as runner:
        runner.map(tasks[:1])
        stealing_seconds, stealing_values = _time_runner(runner, tasks)
        scheduler = runner.last_scheduler
    utilization = scheduler.utilization_report()
    steals = scheduler.steals

    with WorkerServer(jobs=WORKERS) as server:
        with RemoteRunner(
            [(server.host, server.port)], tick_seconds=0.2
        ) as runner:
            remote_seconds, remote_values = _time_runner(runner, tasks)

    static_speedup = serial_seconds / static_seconds
    stealing_speedup = serial_seconds / stealing_seconds
    advantage = stealing_speedup / static_speedup
    busy = [entry["busy_seconds"] for entry in utilization]
    idle_ms = [
        max(0.0, stealing_seconds - entry["busy_seconds"]) * 1000.0
        for entry in utilization
    ]

    gate_active = cpu_count >= MIN_CORES_FOR_GATE
    gates = [
        GateVerdict(
            name="stealing_speedup_4w",
            armed=gate_active,
            passed=(
                (stealing_speedup >= REQUIRED_STEALING_SPEEDUP)
                if gate_active
                else None
            ),
            reason=(
                ""
                if gate_active
                else f"cpu_count={cpu_count} < {MIN_CORES_FOR_GATE}"
            ),
            threshold=REQUIRED_STEALING_SPEEDUP,
            observed=stealing_speedup,
        ),
        GateVerdict(
            name="stealing_beats_static",
            armed=gate_active,
            passed=(
                (advantage >= REQUIRED_ADVANTAGE_OVER_STATIC)
                if gate_active
                else None
            ),
            reason=(
                ""
                if gate_active
                else f"cpu_count={cpu_count} < {MIN_CORES_FOR_GATE}"
            ),
            threshold=REQUIRED_ADVANTAGE_OVER_STATIC,
            observed=advantage,
        ),
    ]

    records = {
        "serial_seconds": serial_seconds,
        "static_seconds": static_seconds,
        "stealing_seconds": stealing_seconds,
        "remote_loopback_seconds": remote_seconds,
        "static_speedup": static_speedup,
        "stealing_speedup": stealing_speedup,
        "stealing_advantage_over_static": advantage,
        "steals": steals,
        "per_worker": utilization,
    }

    lines = [
        f"Fabric schedule bench: {TASK_COUNT} tasks, {HEAVY_COUNT} heavies "
        f"x{HEAVY_UNITS} cost, {WORKERS} workers ({cpu_count} CPU core(s))",
        "",
        f"{'backend':>16}  {'seconds':>8}  {'speedup':>8}",
        f"{'serial':>16}  {serial_seconds:>8.2f}  {'1.00x':>8}",
        f"{'static':>16}  {static_seconds:>8.2f}  {static_speedup:>7.2f}x",
        f"{'stealing':>16}  {stealing_seconds:>8.2f}  "
        f"{stealing_speedup:>7.2f}x",
        f"{'remote-loopback':>16}  {remote_seconds:>8.2f}  "
        f"{serial_seconds / remote_seconds:>7.2f}x",
        "",
        f"steals: {steals}",
    ]
    for entry, idle in zip(utilization, idle_ms):
        lines.append(
            f"  {entry['worker']}: {entry['tasks']} task(s), "
            f"busy {entry['busy_seconds']:.2f}s, idle {idle:.0f}ms"
        )
    for gate in gates:
        lines.append(gate.render())
    save_artifact("bench_fabric", "\n".join(lines))

    emit_bench(
        "fabric",
        series=[
            BenchSeries("serial_seconds", "s", (serial_seconds,),
                        direction="lower"),
            BenchSeries("static_4w_seconds", "s", (static_seconds,),
                        direction="lower"),
            BenchSeries("stealing_4w_seconds", "s", (stealing_seconds,),
                        direction="lower"),
            BenchSeries("remote_loopback_seconds", "s", (remote_seconds,),
                        direction="lower"),
            BenchSeries("static_speedup_4w", "x", (static_speedup,),
                        direction="higher"),
            BenchSeries("stealing_speedup_4w", "x", (stealing_speedup,),
                        direction="higher"),
            BenchSeries("stealing_advantage", "x", (advantage,),
                        direction="higher"),
            BenchSeries("steals", "count", (float(steals),),
                        direction="lower"),
            BenchSeries("worker_busy_seconds", "s", tuple(busy),
                        direction="higher"),
            BenchSeries("worker_idle_ms", "ms", tuple(idle_ms),
                        direction="lower"),
        ],
        gates=gates,
        view={
            "schema": BENCH_SCHEMA,
            "task_count": TASK_COUNT,
            "heavy_count": HEAVY_COUNT,
            "heavy_units": HEAVY_UNITS,
            "workers": WORKERS,
            "cpu_count": cpu_count,
            "gate_active": gate_active,
            "records": records,
        },
    )

    # Byte-identity is machine-independent: assert it everywhere.
    assert static_values == serial_values, "static backend diverged"
    assert stealing_values == serial_values, "stealing backend diverged"
    assert remote_values == serial_values, "remote loopback diverged"

    if gate_active:
        assert stealing_speedup >= REQUIRED_STEALING_SPEEDUP, (
            f"stealing only {stealing_speedup:.2f}x on {cpu_count} cores "
            f"(acceptance requires >= {REQUIRED_STEALING_SPEEDUP}x)"
        )
        assert advantage >= REQUIRED_ADVANTAGE_OVER_STATIC, (
            f"stealing only {advantage:.2f}x over static "
            f"(requires >= {REQUIRED_ADVANTAGE_OVER_STATIC}x)"
        )
