"""Table II tuning-claim sweeps (extension).

Section V-C justifies Table II empirically: "Experimentation with
learning rates ranging from 0.05 to 0.75 shows 0.7 as favorable for
rapid learning and stability" and "a discount factor of 0.618 balances
short-term and long-term rewards effectively".  These benches rerun the
sweeps at benchmark scale and archive the resulting tables; the loose
assertion is that the paper's chosen values remain competitive (within
the best observed profit), not that they strictly dominate at this
reduced budget.
"""


from repro.analysis import format_table
from repro.config import GenTranSeqConfig
from repro.core import GenTranSeq
from repro.workloads import case_study_fixture

from conftest import BenchSeries

BUDGET = dict(episodes=8, steps_per_episode=35)


def _train(config):
    workload = case_study_fixture()
    module = GenTranSeq(config=config)
    return module.optimize(
        workload.pre_state, workload.transactions, workload.ifus
    )


def test_learning_rate_sweep(benchmark, save_artifact, emit_bench):
    rates = (0.05, 0.35, 0.7)

    def run():
        rows = []
        for rate in rates:
            result = _train(GenTranSeqConfig(
                learning_rate=rate, seed=3, **BUDGET
            ))
            rows.append((f"alpha={rate:g}", result.profit))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "table2_learning_rate",
        format_table(
            ("Learning rate", "Best profit (ETH)"),
            [(label, f"{profit:.4f}") for label, profit in rows],
        ),
    )
    emit_bench(
        "table2_learning_rate",
        series=[
            BenchSeries(
                label.replace("=", "_").replace(".", "_"), "ETH", (profit,)
            )
            for label, profit in rows
        ],
        benchmark=benchmark,
    )
    best = max(profit for _, profit in rows)
    paper_choice = dict(rows)["alpha=0.7"]
    # The paper's alpha=0.7 finds profit and stays near the sweep's best.
    assert paper_choice > 0
    assert paper_choice >= 0.5 * best


def test_discount_factor_sweep(benchmark, save_artifact, emit_bench):
    gammas = (0.1, 0.618, 0.95)

    def run():
        rows = []
        for gamma in gammas:
            result = _train(GenTranSeqConfig(
                discount_factor=gamma, seed=3, **BUDGET
            ))
            rows.append((f"gamma={gamma:g}", result.profit))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "table2_discount_factor",
        format_table(
            ("Discount factor", "Best profit (ETH)"),
            [(label, f"{profit:.4f}") for label, profit in rows],
        ),
    )
    emit_bench(
        "table2_discount_factor",
        series=[
            BenchSeries(
                label.replace("=", "_").replace(".", "_"), "ETH", (profit,)
            )
            for label, profit in rows
        ],
        benchmark=benchmark,
    )
    paper_choice = dict(rows)["gamma=0.618"]
    best = max(profit for _, profit in rows)
    assert paper_choice > 0
    assert paper_choice >= 0.5 * best
