"""Replay-engine throughput: scratch vs incremental candidate scoring.

The hot path of every solver and DQN episode is "apply one swap, rescore
the order".  This bench measures that exact operation — replay the
candidate and derive the Eq. 8 scoring inputs (executed set, batch-end
consistency, IFU wealth) — four ways:

* ``scratch_seed``      — ``OVM.replay`` against a state with the seed's
  O(users)-per-read aggregate scans (the cost model this PR replaced);
* ``scratch``           — ``OVM.replay`` against the current state with
  O(1) counters (the optimised from-scratch path);
* ``incremental``       — ``IncrementalOVM.evaluate``, resuming from the
  shared prefix on the allocation-light columnar path;
* ``env_memoized``      — the full ``ReorderEnv.evaluate_order`` with the
  permutation LRU in front.

A second sweep measures the columnar batch kernel
(``BatchReplayEngine.evaluate_many``) at K ∈ {1, 8, 32, 128} candidates
per call against the K = 1 incremental path — the population-solver hot
path this PR vectorised.

A JSON record (``BENCH_replay.json``) is archived — including the host
``cpu_count``, the numpy version, the compiled-kernel backend and the
swept batch sizes — so future PRs can track the perf trajectory.

Acceptance: incremental single-swap re-evaluation at N = 50 must be at
least 5x faster than from-scratch replay (measured against the stronger,
already-optimised scratch baseline; the seed-cost speedup is reported
alongside), and the batch kernel at K = 32 must deliver at least 5x the
aggregate throughput of the K = 1 incremental path.

A second bench (``BENCH_telemetry.json``) measures what the telemetry
instrumentation costs on the same hot path: the disabled no-op backends
must stay within 5% of a fully uninstrumented scoring loop, and the
enabled-path overhead is archived for the record.
"""

from __future__ import annotations

import os
import platform
import time

import numpy as np

from repro.config import GenTranSeqConfig, WorkloadConfig
from repro.core import ReorderEnv
from repro.rollup import BatchReplayEngine, IncrementalOVM, L2State, OVM
from repro.telemetry import (
    RingBufferSink,
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
)
from repro.workloads import generate_workload

from conftest import BenchSeries, GateVerdict

SIZES = (10, 20, 50, 100)
SWAPS_PER_SIZE = 300

BATCH_N = 50
BATCH_SIZES = (1, 8, 32, 128)
BATCH_POOL = 512
BATCH_REPEATS = 3
BATCH_MIN_SPEEDUP_AT_32 = 5.0

BENCH_SCHEMA = "BENCH_replay/v2"
TELEMETRY_BENCH_SCHEMA = "BENCH_telemetry/v1"
TELEMETRY_SIZES = (20, 50)
TELEMETRY_REPEATS = 5
MAX_DISABLED_OVERHEAD = 0.05


class SeedCostState(L2State):
    """L2State with the seed's O(users) aggregate reads.

    Before this PR, every ``unit_price`` / ``remaining_supply`` /
    ``inventory_is_consistent`` read re-scanned the inventory dict.  This
    subclass restores those costs (bit-identical values) so the bench can
    report how much of the speedup comes from the O(1) counters vs the
    incremental engine.
    """

    @property
    def minted_count(self) -> int:
        return sum(self.inventory.values())

    @property
    def remaining_supply(self) -> int:
        return self.nft_config.max_supply - self.minted_count

    @property
    def unit_price(self) -> float:
        remaining = self.remaining_supply
        return (
            self.nft_config.max_supply
            / max(remaining, 1)
            * self.nft_config.initial_price_eth
        )

    def inventory_is_consistent(self) -> bool:
        return all(count >= 0 for count in self.inventory.values())


def _workload(size: int):
    return generate_workload(
        WorkloadConfig(
            mempool_size=size,
            num_users=max(8, size // 3),
            num_ifus=1,
            seed=42,
        )
    )


def _swap_orders(rng: np.random.Generator, size: int, count: int):
    """A random walk of single swaps from the identity order."""
    order = list(range(size))
    orders = []
    for _ in range(count):
        i, j = rng.choice(size, size=2, replace=False)
        order[i], order[j] = order[j], order[i]
        orders.append(tuple(order))
    return orders


def _time_scratch(pre_state, workload, orders) -> float:
    """From-scratch scoring: replay + executed set + consistency + wealth."""
    ovm = OVM()
    ifus = workload.ifus
    started = time.perf_counter()
    for order in orders:
        sequence = tuple(workload.transactions[i] for i in order)
        trace = ovm.replay(pre_state, sequence)
        frozenset(
            index
            for index, step in zip(order, trace.steps)
            if step.executed
        )
        trace.consistent()
        {user: trace.final_state.wealth(user) for user in ifus}
    return time.perf_counter() - started


def _bench_size(size: int) -> dict:
    workload = _workload(size)
    rng = np.random.default_rng(7)
    orders = _swap_orders(rng, size, SWAPS_PER_SIZE)
    pre = workload.pre_state

    seed_pre = SeedCostState(
        pre.nft_config,
        balances=pre.balances,
        inventory=pre.inventory,
        mode=pre.mode,
        charge_fees=pre.charge_fees,
    )
    scratch_seed_seconds = _time_scratch(seed_pre, workload, orders)
    scratch_seconds = _time_scratch(pre, workload, orders)

    # Incremental resume from the shared prefix (the solver hot path).
    engine = IncrementalOVM(
        pre, workload.transactions, wealth_users=workload.ifus
    )
    engine.evaluate(range(size))  # the one-time baseline
    started = time.perf_counter()
    for order in orders:
        engine.evaluate(order)
    incremental_seconds = time.perf_counter() - started
    engine_stats = engine.stats

    # Full environment scoring with permutation memoization: the second
    # pass over the same walk is answered entirely from the LRU.
    env = ReorderEnv(
        pre_state=pre,
        transactions=workload.transactions,
        ifus=workload.ifus,
        config=GenTranSeqConfig(steps_per_episode=SWAPS_PER_SIZE, seed=0),
    )
    started = time.perf_counter()
    for order in orders + orders:
        env.evaluate_order(order)
    env_seconds = time.perf_counter() - started
    stats = env.replay_stats()

    return {
        "size": size,
        "swaps": SWAPS_PER_SIZE,
        "scratch_seed_seconds": scratch_seed_seconds,
        "scratch_seconds": scratch_seconds,
        "incremental_seconds": incremental_seconds,
        "speedup": scratch_seconds / incremental_seconds,
        "speedup_vs_seed": scratch_seed_seconds / incremental_seconds,
        "scratch_evals_per_second": SWAPS_PER_SIZE / scratch_seconds,
        "incremental_evals_per_second": SWAPS_PER_SIZE / incremental_seconds,
        "env_memoized_seconds": env_seconds,
        "mean_resume_depth": engine_stats.mean_resume_depth,
        "step_reuse_fraction": engine_stats.step_reuse_fraction,
        "cache_hit_rate": stats["cache_hit_rate"],
    }


def _bench_batch_kernel() -> dict:
    """Aggregate candidate throughput of evaluate_many across K.

    K = 1 is the incremental engine (the pre-batch scoring path); K > 1
    chunks the same 512-candidate pool into columnar kernel calls.
    Best-of-``BATCH_REPEATS`` per configuration suppresses scheduler
    noise; throughput is candidates scored per second.
    """
    workload = _workload(BATCH_N)
    pre = workload.pre_state
    rng = np.random.default_rng(13)
    pool = [
        tuple(int(x) for x in rng.permutation(BATCH_N))
        for _ in range(BATCH_POOL)
    ]

    records = []
    incremental_rate = None
    backend = "numpy"
    for k in BATCH_SIZES:
        best = float("inf")
        for _ in range(BATCH_REPEATS):
            if k == 1:
                engine = IncrementalOVM(
                    pre, workload.transactions, wealth_users=workload.ifus
                )
                engine.evaluate(range(BATCH_N))  # the one-time baseline
                started = time.perf_counter()
                for order in pool:
                    engine.evaluate(order)
                best = min(best, time.perf_counter() - started)
            else:
                engine = BatchReplayEngine(
                    pre, workload.transactions, wealth_users=workload.ifus
                )
                backend = engine.kernel_backend
                started = time.perf_counter()
                for lo in range(0, BATCH_POOL, k):
                    engine.evaluate_many(pool[lo : lo + k])
                best = min(best, time.perf_counter() - started)
        rate = BATCH_POOL / best
        if k == 1:
            incremental_rate = rate
        records.append(
            {
                "batch_size": k,
                "candidates": BATCH_POOL,
                "seconds": best,
                "evals_per_second": rate,
                "speedup_vs_incremental": rate / incremental_rate,
            }
        )
    return {
        "size": BATCH_N,
        "pool": BATCH_POOL,
        "repeats": BATCH_REPEATS,
        "kernel_backend": backend,
        "records": records,
    }


def test_replay_engine_throughput(save_artifact, emit_bench):
    """Scratch vs incremental replay across N; archives BENCH_replay.json."""
    records = [_bench_size(size) for size in SIZES]
    batch = _bench_batch_kernel()

    lines = [
        "Replay engine: single-swap re-evaluation throughput",
        "",
        f"{'N':>4}  {'scratch ev/s':>13}  {'incremental ev/s':>17}  "
        f"{'speedup':>8}  {'vs seed':>8}  {'resume depth':>13}  "
        f"{'cache hit%':>10}",
    ]
    for rec in records:
        lines.append(
            f"{rec['size']:>4}  {rec['scratch_evals_per_second']:>13.0f}  "
            f"{rec['incremental_evals_per_second']:>17.0f}  "
            f"{rec['speedup']:>7.1f}x  {rec['speedup_vs_seed']:>7.1f}x  "
            f"{rec['mean_resume_depth']:>13.1f}  "
            f"{rec['cache_hit_rate'] * 100:>9.1f}%"
        )
    lines += [
        "",
        f"Batch kernel ({batch['kernel_backend']} backend): aggregate "
        f"candidate throughput at N = {BATCH_N}",
        "",
        f"{'K':>4}  {'evals/s':>10}  {'vs K=1':>8}",
    ]
    for rec in batch["records"]:
        lines.append(
            f"{rec['batch_size']:>4}  {rec['evals_per_second']:>10.0f}  "
            f"{rec['speedup_vs_incremental']:>7.2f}x"
        )
    save_artifact("bench_replay_engine", "\n".join(lines))

    at_50 = next(rec for rec in records if rec["size"] == 50)
    at_32 = next(
        rec for rec in batch["records"] if rec["batch_size"] == 32
    )
    series = [
        BenchSeries(
            f"incremental_evals_per_s_N{rec['size']}",
            "evals/s",
            (rec["incremental_evals_per_second"],),
            meta={"N": rec["size"]},
        )
        for rec in records
    ] + [
        BenchSeries("incremental_speedup_N50", "x", (at_50["speedup"],)),
        BenchSeries(
            "batch_evals_per_s_K32", "evals/s", (at_32["evals_per_second"],)
        ),
        BenchSeries(
            "batch_speedup_K32", "x", (at_32["speedup_vs_incremental"],)
        ),
    ]
    emit_bench(
        "replay",
        series=series,
        gates=[
            GateVerdict(
                name="incremental_speedup_N50",
                armed=True,
                passed=at_50["speedup"] >= 5.0,
                threshold=5.0,
                observed=at_50["speedup"],
            ),
            GateVerdict(
                name="batch_speedup_K32",
                armed=True,
                passed=(
                    at_32["speedup_vs_incremental"]
                    >= BATCH_MIN_SPEEDUP_AT_32
                ),
                threshold=BATCH_MIN_SPEEDUP_AT_32,
                observed=at_32["speedup_vs_incremental"],
            ),
        ],
        view={
            "schema": BENCH_SCHEMA,
            "swaps_per_size": SWAPS_PER_SIZE,
            "environment": {
                "cpu_count": os.cpu_count(),
                "numpy_version": np.__version__,
                "python_version": platform.python_version(),
                "kernel_backend": batch["kernel_backend"],
            },
            "batch_sizes": list(BATCH_SIZES),
            "records": records,
            "batch": batch,
        },
        kernel_backend=batch["kernel_backend"],
    )

    assert at_50["speedup"] >= 5.0, (
        f"incremental replay only {at_50['speedup']:.1f}x faster at N=50 "
        "(acceptance requires >= 5x)"
    )
    assert at_32["speedup_vs_incremental"] >= BATCH_MIN_SPEEDUP_AT_32, (
        f"batch kernel only {at_32['speedup_vs_incremental']:.1f}x the "
        f"incremental path at K=32 (acceptance requires >= "
        f"{BATCH_MIN_SPEEDUP_AT_32:.0f}x)"
    )


def test_incremental_results_match_scratch():
    """The bench's paths must agree on what they compute."""
    workload = _workload(20)
    rng = np.random.default_rng(3)
    engine = IncrementalOVM(
        workload.pre_state, workload.transactions, wealth_users=workload.ifus
    )
    scratch = OVM()
    for order in _swap_orders(rng, 20, 25):
        sequence = tuple(workload.transactions[i] for i in order)
        mine = engine.replay_order(order)
        summary = engine.evaluate(order)
        theirs = scratch.replay(workload.pre_state, sequence)
        assert (
            mine.final_state.canonical_items()
            == theirs.final_state.canonical_items()
        )
        executed = [s.executed for s in theirs.steps]
        assert [s.executed for s in mine.steps] == executed
        assert summary.executed == executed
        assert summary.wealth == {
            user: theirs.final_state.wealth(user) for user in workload.ifus
        }


class UninstrumentedEnv(ReorderEnv):
    """The pre-telemetry scoring loop: no counter call at all.

    Serves as the bench's true baseline — the disabled no-op backends
    are compared against code with zero instrumentation, not against
    themselves.
    """

    def evaluate_order(self, order):
        key = tuple(order)
        cached = self._eval_cache.get(key)
        if cached is None:
            summary = self._engine.evaluate(key)
            cached = self._evaluation_from_summary(key, summary)
            self._eval_cache.put(key, cached)
        return dict(cached)


def _time_env_walk(env_cls, workload, orders, repeats: int) -> float:
    """Best-of-``repeats`` wall time of scoring the swap walk once.

    A fresh environment per repeat (identical cache state across
    configurations); best-of-N suppresses scheduler noise.
    """
    best = float("inf")
    for _ in range(repeats):
        env = env_cls(
            pre_state=workload.pre_state,
            transactions=workload.transactions,
            ifus=workload.ifus,
            config=GenTranSeqConfig(steps_per_episode=len(orders), seed=0),
        )
        started = time.perf_counter()
        for order in orders:
            env.evaluate_order(order)
        best = min(best, time.perf_counter() - started)
    return best


def _bench_telemetry_size(size: int) -> dict:
    workload = _workload(size)
    rng = np.random.default_rng(11)
    orders = _swap_orders(rng, size, SWAPS_PER_SIZE)

    disable_metrics()
    disable_tracing()
    uninstrumented = _time_env_walk(
        UninstrumentedEnv, workload, orders, TELEMETRY_REPEATS
    )
    disabled = _time_env_walk(ReorderEnv, workload, orders, TELEMETRY_REPEATS)

    enable_metrics()
    enable_tracing(RingBufferSink(capacity=4096))
    try:
        enabled = _time_env_walk(
            ReorderEnv, workload, orders, TELEMETRY_REPEATS
        )
    finally:
        disable_metrics()
        disable_tracing()

    return {
        "size": size,
        "swaps": SWAPS_PER_SIZE,
        "repeats": TELEMETRY_REPEATS,
        "uninstrumented_seconds": uninstrumented,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "disabled_overhead": disabled / uninstrumented - 1.0,
        "enabled_overhead": enabled / uninstrumented - 1.0,
    }


def test_telemetry_overhead(save_artifact, emit_bench):
    """Disabled telemetry must cost <= 5% on single-swap re-evaluation."""
    records = [_bench_telemetry_size(size) for size in TELEMETRY_SIZES]

    lines = [
        "Telemetry overhead on ReorderEnv.evaluate_order (single-swap walk)",
        "",
        f"{'N':>4}  {'uninstr ms':>11}  {'disabled ms':>12}  "
        f"{'enabled ms':>11}  {'off ovh%':>9}  {'on ovh%':>8}",
    ]
    for rec in records:
        lines.append(
            f"{rec['size']:>4}  {rec['uninstrumented_seconds'] * 1e3:>11.2f}  "
            f"{rec['disabled_seconds'] * 1e3:>12.2f}  "
            f"{rec['enabled_seconds'] * 1e3:>11.2f}  "
            f"{rec['disabled_overhead'] * 100:>8.2f}%  "
            f"{rec['enabled_overhead'] * 100:>7.2f}%"
        )
    save_artifact("bench_telemetry_overhead", "\n".join(lines))

    emit_bench(
        "telemetry",
        series=[
            BenchSeries(
                f"disabled_overhead_N{rec['size']}",
                "fraction",
                (rec["disabled_overhead"],),
                direction="lower",
                meta={"N": rec["size"]},
            )
            for rec in records
        ]
        + [
            BenchSeries(
                f"enabled_overhead_N{rec['size']}",
                "fraction",
                (rec["enabled_overhead"],),
                direction="lower",
                meta={"N": rec["size"]},
            )
            for rec in records
        ],
        gates=[
            GateVerdict(
                name=f"disabled_overhead_N{rec['size']}",
                armed=True,
                passed=rec["disabled_overhead"] <= MAX_DISABLED_OVERHEAD,
                threshold=MAX_DISABLED_OVERHEAD,
                observed=rec["disabled_overhead"],
            )
            for rec in records
        ],
        view={
            "schema": TELEMETRY_BENCH_SCHEMA,
            "swaps_per_size": SWAPS_PER_SIZE,
            "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
            "records": records,
        },
    )

    for rec in records:
        assert rec["disabled_overhead"] <= MAX_DISABLED_OVERHEAD, (
            f"disabled telemetry costs {rec['disabled_overhead']:.1%} at "
            f"N={rec['size']} (acceptance requires <= "
            f"{MAX_DISABLED_OVERHEAD:.0%})"
        )


def test_seed_cost_state_is_bit_identical():
    """The seed-cost comparator changes cost, never values."""
    workload = _workload(12)
    pre = workload.pre_state
    seed_pre = SeedCostState(
        pre.nft_config,
        balances=pre.balances,
        inventory=pre.inventory,
        mode=pre.mode,
        charge_fees=pre.charge_fees,
    )
    sequence = workload.transactions
    fast = OVM().replay(pre, sequence)
    slow = OVM().replay(seed_pre, sequence)
    assert (
        fast.final_state.canonical_items()
        == slow.final_state.canonical_items()
    )
    assert [s.result.price_after for s in fast.steps] == [
        s.result.price_after for s in slow.steps
    ]
