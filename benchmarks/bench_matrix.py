"""Strategy × defense matrix: full quick-tier grid throughput + safety.

One measurement backs the leaderboard story: the complete default grid
(every shipped strategy × every shipped defense, plus the fault-plan
extras) is driven cold through :func:`repro.matrix.run_matrix` and must

* finish at a usable interactive rate (cells/minute floor with ~10x
  headroom below the development-machine figure, so the armed gate
  catches order-of-magnitude regressions rather than scheduler noise);
* report **zero invariant violations** across every cell — the grid is
  only a leaderboard if every cell ran inside the safety envelope.

Archived as ``BENCH_matrix.json`` via the shared perf-record writer.
"""

from __future__ import annotations

import time

from repro.matrix import MatrixConfig, run_matrix

from conftest import BenchSeries, GateVerdict

BENCH_SCHEMA = "BENCH_matrix/v1"

MIN_CELLS_PER_MINUTE = 60.0


def test_matrix_grid(save_artifact, emit_bench):
    """Run the full default grid cold and gate rate + safety."""
    config = MatrixConfig()
    started = time.perf_counter()
    report = run_matrix(config)
    elapsed = time.perf_counter() - started

    cells = len(report.cells)
    cells_per_minute = cells * 60.0 / elapsed if elapsed > 0 else 0.0
    top = report.leaderboard()[0]

    lines = [
        "Strategy x defense matrix (full default grid, cold)",
        "",
        report.render(),
        "",
        f"{cells} cells in {elapsed:.2f}s "
        f"({cells_per_minute:,.0f} cells/minute)",
        f"top of leaderboard: {top.strategy} vs {top.defense} "
        f"({top.net_profit_eth:+.4f} ETH)",
    ]
    save_artifact("bench_matrix", "\n".join(lines))

    emit_bench(
        "matrix",
        series=[
            BenchSeries("cells_per_minute", "cells/min", (cells_per_minute,)),
            BenchSeries("grid_cells", "cells", (float(cells),)),
            BenchSeries(
                "elapsed_seconds", "s", (elapsed,), direction="lower"
            ),
            BenchSeries(
                "top_net_profit", "ETH", (top.net_profit_eth,),
            ),
            BenchSeries(
                "total_detections", "detections",
                (float(sum(cell.detections for cell in report.cells)),),
            ),
        ],
        gates=[
            GateVerdict(
                name="cells_per_minute",
                armed=True,
                passed=cells_per_minute >= MIN_CELLS_PER_MINUTE,
                threshold=MIN_CELLS_PER_MINUTE,
                observed=cells_per_minute,
            ),
            GateVerdict(
                name="zero_invariant_violations",
                armed=True,
                passed=report.ok,
                threshold=0.0,
                observed=float(len(report.total_violations)),
            ),
        ],
        view={
            "schema": BENCH_SCHEMA,
            "grid": {
                "strategies": list(config.strategies),
                "defenses": list(config.defenses),
                "fault_plans": list(config.fault_plans),
                "cells": cells,
            },
            "wall": {
                "elapsed_seconds": elapsed,
                "cells_per_minute": cells_per_minute,
            },
            "report": report.deterministic_payload(),
        },
    )

    assert report.ok, f"invariant violations: {report.total_violations}"
    assert cells_per_minute >= MIN_CELLS_PER_MINUTE, (
        f"grid ran at {cells_per_minute:.0f} cells/minute, below the "
        f"{MIN_CELLS_PER_MINUTE:.0f} cells/minute floor"
    )
