"""Figure 11 bench: DQN inference vs NLP solvers (time and memory).

Profiles the DQN greedy rollout against the APOPT/MINOS/SNOPT stand-ins
across mempool sizes and checks the paper's shape: the DQN is the
fastest at the largest size, and the NLP solvers' cost grows faster
with N than the DQN's.
"""


from repro.experiments import render_fig11, run_fig11

from conftest import BenchSeries

SIZES = (5, 10, 25)


def _run():
    return run_fig11(
        sizes=SIZES,
        dqn_train_episodes=3,
        nlp_restarts=1,
        nlp_max_iterations=25,
        seed=0,
    )


def test_fig11_solver_comparison(benchmark, save_artifact, emit_bench):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_artifact("fig11_solver_comparison", render_fig11(rows))
    emit_bench(
        "fig11_solver_comparison",
        series=[
            BenchSeries(
                "dqn_inference_seconds_N25",
                "s",
                tuple(
                    r.elapsed_seconds
                    for r in rows
                    if r.solver_name == "DQN (inference)"
                    and r.mempool_size == SIZES[-1]
                ),
                direction="lower",
                meta={"N": SIZES[-1]},
            )
        ],
        benchmark=benchmark,
    )

    assert len(rows) == len(SIZES) * 4
    by_key = {(r.solver_name, r.mempool_size): r for r in rows}
    largest = SIZES[-1]

    dqn_large = by_key[("DQN (inference)", largest)]
    nlp_names = [name for name, _ in by_key if "like" in name]
    assert nlp_names

    # Shape 1: at the largest mempool the DQN is the fastest solver.
    for name in set(nlp_names):
        assert dqn_large.elapsed_seconds <= by_key[(name, largest)].elapsed_seconds

    # Shape 2: NLP cost grows more steeply than DQN cost from the
    # smallest to the largest size.
    dqn_growth = (
        dqn_large.elapsed_seconds
        / max(by_key[("DQN (inference)", SIZES[0])].elapsed_seconds, 1e-9)
    )
    worst_nlp_growth = max(
        by_key[(name, largest)].elapsed_seconds
        / max(by_key[(name, SIZES[0])].elapsed_seconds, 1e-9)
        for name in set(nlp_names)
    )
    assert worst_nlp_growth >= dqn_growth * 0.5  # NLP never collapses to flat
