"""Timed-deployment bench (extension): attack success vs slot deadline.

Section VII-F's motivation — "time is critical in off-chain transaction
processing" — made concrete: the adversarial aggregator's reordering
must fit inside the Bedrock block interval or it forfeits the arbitrage.
This bench sweeps the reorder deadline against the measured compute cost
of DQN inference and checks that tight deadlines suppress the attack
without disturbing liveness.
"""

import time


from repro.analysis import format_table
from repro.config import AttackConfig, GenTranSeqConfig, WorkloadConfig
from repro.core import ParoleAttack
from repro.sim import TimedRollupScenario
from repro.workloads import generate_workload

from conftest import BenchSeries


def _workload():
    return generate_workload(
        WorkloadConfig(mempool_size=16, num_users=10, num_ifus=1,
                       min_ifu_involvement=4, seed=5)
    )


def _timed_reorderer(workload):
    attack = ParoleAttack(
        config=AttackConfig(
            ifu_accounts=workload.ifus,
            gentranseq=GenTranSeqConfig(episodes=3, steps_per_episode=20, seed=0),
        )
    )

    def reorder(pre_state, collected):
        started = time.perf_counter()
        executed = attack.run(pre_state, collected).executed_sequence
        # Simulated compute cost = measured wall time, scaled into the
        # simulation's time units (1 sim unit ~ 1 second of compute).
        return executed, time.perf_counter() - started

    return reorder


def _run():
    workload = _workload()
    rows = []
    for deadline in (1e-4, 10.0):
        metrics = TimedRollupScenario(
            workload,
            collect_size=8,
            reorderer=_timed_reorderer(workload),
            reorder_deadline=deadline,
            seed=0,
        ).run()
        rows.append((deadline, metrics))
    honest = TimedRollupScenario(workload, collect_size=8, seed=0).run()
    return rows, honest


def test_deadline_gates_the_attack(benchmark, save_artifact, emit_bench):
    (sweeps, honest) = benchmark.pedantic(_run, rounds=1, iterations=1)

    table_rows = [
        (
            f"{deadline:g}",
            metrics.attacks_fired,
            metrics.missed_deadlines,
            metrics.transactions_included,
            f"{metrics.mean_inclusion_latency:.3f}",
        )
        for deadline, metrics in sweeps
    ]
    table_rows.append(
        ("honest", honest.attacks_fired, honest.missed_deadlines,
         honest.transactions_included,
         f"{honest.mean_inclusion_latency:.3f}")
    )
    save_artifact(
        "timed_deployment",
        format_table(
            ("Reorder deadline", "Attacks fired", "Missed deadlines",
             "TXs included", "Mean inclusion latency"),
            table_rows,
        ),
    )

    tight, generous = sweeps[0][1], sweeps[1][1]
    emit_bench(
        "timed_deployment",
        series=[
            BenchSeries(
                "mean_inclusion_latency_honest",
                "sim units",
                (honest.mean_inclusion_latency,),
                direction="lower",
            ),
            BenchSeries(
                "mean_inclusion_latency_generous",
                "sim units",
                (generous.mean_inclusion_latency,),
                direction="lower",
            ),
        ],
        benchmark=benchmark,
    )
    # A deadline far below real DQN compute suppresses the attack...
    assert tight.attacks_fired == 0
    assert tight.missed_deadlines > 0
    # ...while a generous one lets it fire.
    assert generous.attacks_fired > 0
    assert generous.missed_deadlines == 0
    # Liveness holds in every configuration.
    assert tight.transactions_included == 16
    assert generous.transactions_included == 16
    # And reordering is invisible to verifiers either way.
    assert tight.challenges == 0
    assert generous.challenges == 0
