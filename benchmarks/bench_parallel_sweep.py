"""Parallel fabric bench: serial vs process-pool sweep throughput.

Runs the same Fig. 6-style sweep — independent, explicitly seeded
``shared_pool_round`` trials — through the serial backend and process
pools of 2 and 4 workers, and archives wall-clock times and speedups
(``BENCH_parallel.json``).  Determinism is asserted unconditionally:
every backend must return the identical value list.

Acceptance: with at least 4 CPU cores, 4 workers must clear a 2x
speedup over serial.  On smaller machines (CI runners are often 1-2
cores) the speedup is recorded but not asserted — a process pool cannot
beat serial without cores to run on — and the bench record carries a
machine-readable unarmed gate verdict (``armed: false`` with the
``cpu_count`` reason) instead of a silently skipped check.
"""

from __future__ import annotations

import os
import time

from repro.experiments.common import QUICK
from repro.experiments.fig6_profit import _fig6_trial
from repro.parallel import (
    ProcessRunner,
    SerialRunner,
    StealingRunner,
    Task,
    spawn_task_seeds,
)

from conftest import BenchSeries, GateVerdict

BENCH_SCHEMA = "BENCH_parallel/v1"
TASK_COUNT = 16
WORKER_COUNTS = (2, 4)
MIN_CORES_FOR_GATE = 4
REQUIRED_SPEEDUP = 2.0


def _tasks():
    """A Fig. 6-style sweep: independent seeded shared-pool trials."""
    seeds = spawn_task_seeds(0, TASK_COUNT)
    return [
        Task(
            fn=_fig6_trial,
            args=(0.5, 10, 1 + index % 2, 4, QUICK),
            seed=seed,
            label=f"trial#{index}",
        )
        for index, seed in enumerate(seeds)
    ]


def _time_runner(runner, tasks):
    started = time.perf_counter()
    values = runner.map(tasks)
    return time.perf_counter() - started, values


def test_parallel_sweep_speedup(save_artifact, emit_bench):
    """Serial vs 2/4 workers; archives BENCH_parallel.json."""
    cpu_count = os.cpu_count() or 1
    tasks = _tasks()

    serial_seconds, serial_values = _time_runner(SerialRunner(), tasks)

    records = [
        {
            "jobs": 1,
            "backend": "serial",
            "seconds": serial_seconds,
            "speedup": 1.0,
            "identical_to_serial": True,
        }
    ]
    for backend, make_runner in (
        ("process", lambda n: ProcessRunner(max_workers=n)),
        ("stealing", lambda n: StealingRunner(max_workers=n)),
    ):
        for workers in WORKER_COUNTS:
            with make_runner(workers) as runner:
                # Warm the pool outside the timed region: a long sweep
                # pays worker startup once, and the bench measures
                # steady state.
                runner.map(tasks[:1])
                seconds, values = _time_runner(runner, tasks)
            records.append(
                {
                    "jobs": workers,
                    "backend": backend,
                    "seconds": seconds,
                    "speedup": serial_seconds / seconds,
                    "identical_to_serial": values == serial_values,
                }
            )

    gate_active = cpu_count >= MIN_CORES_FOR_GATE

    lines = [
        f"Parallel sweep: {TASK_COUNT} seeded Fig. 6-style trials "
        f"({cpu_count} CPU core(s))",
        "",
        f"{'jobs':>5}  {'backend':>8}  {'seconds':>8}  {'speedup':>8}  "
        f"{'identical':>9}",
    ]
    for rec in records:
        lines.append(
            f"{rec['jobs']:>5}  {rec['backend']:>8}  "
            f"{rec['seconds']:>8.2f}  {rec['speedup']:>7.2f}x  "
            f"{str(rec['identical_to_serial']):>9}"
        )
    if not gate_active:
        lines.append(
            f"(speedup gate skipped: {cpu_count} core(s) < "
            f"{MIN_CORES_FOR_GATE})"
        )
    save_artifact("bench_parallel_sweep", "\n".join(lines))

    at_4 = next(
        rec for rec in records
        if rec["jobs"] == 4 and rec["backend"] == "process"
    )
    gate = GateVerdict(
        name="speedup_4workers",
        armed=gate_active,
        passed=(at_4["speedup"] >= REQUIRED_SPEEDUP) if gate_active else None,
        reason=(
            ""
            if gate_active
            else f"cpu_count={cpu_count} < {MIN_CORES_FOR_GATE}"
        ),
        threshold=REQUIRED_SPEEDUP,
        observed=at_4["speedup"],
    )
    emit_bench(
        "parallel",
        series=[
            BenchSeries(
                f"{rec['backend']}_{rec['jobs']}w_seconds",
                "s",
                (rec["seconds"],),
                direction="lower",
                meta={"jobs": rec["jobs"]},
            )
            for rec in records
        ]
        + [
            BenchSeries(
                "speedup_4workers", "x", (at_4["speedup"],), direction="higher"
            )
        ],
        gates=[gate],
        view={
            "schema": BENCH_SCHEMA,
            "task_count": TASK_COUNT,
            "cpu_count": cpu_count,
            "speedup_gate_active": gate_active,
            "required_speedup_at_4_workers": REQUIRED_SPEEDUP,
            "records": records,
        },
    )

    # Determinism is not machine-dependent: assert it everywhere.
    for rec in records:
        assert rec["identical_to_serial"], (
            f"--jobs {rec['jobs']} returned different values than serial"
        )

    if gate_active:
        assert at_4["speedup"] >= REQUIRED_SPEEDUP, (
            f"4 workers only {at_4['speedup']:.2f}x faster than serial "
            f"on {cpu_count} cores (acceptance requires >= "
            f"{REQUIRED_SPEEDUP:.0f}x)"
        )
