"""Streaming pipeline: sustained throughput, batch latency, hit rate.

Two measurements back the always-on serving story:

* **Soak headline** — one lane of the full pipeline (zipf traffic ->
  sharded mempool -> batch scanner -> rollup + invariant sweep) served
  for a fixed number of block intervals.  Reports sustained transactions
  per second, the p50/p99 per-batch service latency and the scanner's
  opportunity hit rate, and requires zero invariant violations.
* **Mempool drain** — the heap-backed ``collect`` against the seed's
  full-sort-per-collect behaviour on a 20k-transaction backlog.  The
  O(k log N) lazy-deletion heap is what makes the backlog regime
  (submission rate above collection rate) serveable at all.

Gate thresholds are deliberately conservative (3-4x headroom below the
numbers measured on the development machine) so the armed gates catch
order-of-magnitude regressions, not scheduler noise.

Archived as ``BENCH_streaming.json`` via the shared perf-record writer.
"""

from __future__ import annotations

import time

import numpy as np

from repro.rollup.mempool import BedrockMempool
from repro.rollup.transaction import NFTTransaction, TxKind, sort_by_fee
from repro.streaming import StreamConfig, run_stream

from conftest import BenchSeries, GateVerdict

BENCH_SCHEMA = "BENCH_streaming/v1"

SOAK_BATCHES = 30
MIN_TX_PER_SECOND = 100.0
MAX_P99_BATCH_MS = 500.0

DRAIN_POOL = 20_000
DRAIN_BATCH = 16
MIN_DRAIN_SPEEDUP = 3.0


def _drain_pool_txs() -> list:
    rng = np.random.default_rng(0)
    return [
        NFTTransaction(
            kind=TxKind.MINT,
            sender=f"u{i % 97}",
            priority_fee=float(rng.uniform(0.0, 1.0)),
            nonce=i,
            label=f"t{i}",
        )
        for i in range(DRAIN_POOL)
    ]


def _bench_mempool_drain() -> dict:
    """Heap-backed collect vs the seed's full-sort-per-collect."""
    txs = _drain_pool_txs()

    # Baseline: re-sort the whole pending set for every 16-tx collection
    # (what `collect` cost before the lazy-deletion heap).  Run over the
    # same stamped transactions so the ordering work is identical.
    stamper = BedrockMempool()
    for tx in txs:
        stamper.submit(tx)
    remaining = list(stamper.pending())
    started = time.perf_counter()
    while remaining:
        ordered = sort_by_fee(remaining)
        remaining = list(ordered[DRAIN_BATCH:])
    sort_seconds = time.perf_counter() - started

    pool = BedrockMempool()
    for tx in txs:
        pool.submit(tx)
    started = time.perf_counter()
    while len(pool):
        pool.collect(DRAIN_BATCH)
    heap_seconds = time.perf_counter() - started

    return {
        "pool": DRAIN_POOL,
        "collect_size": DRAIN_BATCH,
        "full_sort_seconds": sort_seconds,
        "heap_seconds": heap_seconds,
        "full_sort_tx_per_second": DRAIN_POOL / sort_seconds,
        "heap_tx_per_second": DRAIN_POOL / heap_seconds,
        "speedup": sort_seconds / heap_seconds,
    }


def test_streaming_pipeline(save_artifact, emit_bench):
    """Soak one lane and gate the serving headline numbers."""
    report = run_stream(StreamConfig(lanes=1, duration_batches=SOAK_BATCHES))
    drain = _bench_mempool_drain()

    lines = [
        "Streaming pipeline soak + mempool drain",
        "",
        report.render(),
        "",
        f"mempool drain ({DRAIN_POOL} txs, collect({DRAIN_BATCH})):",
        f"  full sort  {drain['full_sort_tx_per_second']:>10,.0f} tx/s",
        f"  heap       {drain['heap_tx_per_second']:>10,.0f} tx/s "
        f"({drain['speedup']:.1f}x)",
    ]
    save_artifact("bench_streaming", "\n".join(lines))

    emit_bench(
        "streaming",
        series=[
            BenchSeries(
                "sustained_tx_per_s", "tx/s",
                (report.sustained_tx_per_second,),
            ),
            BenchSeries(
                "p50_batch_ms", "ms", (report.p50_batch_ms,),
                direction="lower",
            ),
            BenchSeries(
                "p99_batch_ms", "ms", (report.p99_batch_ms,),
                direction="lower",
            ),
            BenchSeries("hit_rate", "fraction", (report.hit_rate,)),
            BenchSeries(
                "profit_total", "ETH", (report.profit_total,),
            ),
            BenchSeries(
                "mempool_drain_tx_per_s", "tx/s",
                (drain["heap_tx_per_second"],),
            ),
            BenchSeries(
                "mempool_drain_speedup", "x", (drain["speedup"],),
            ),
        ],
        gates=[
            GateVerdict(
                name="sustained_tx_per_s",
                armed=True,
                passed=report.sustained_tx_per_second >= MIN_TX_PER_SECOND,
                threshold=MIN_TX_PER_SECOND,
                observed=report.sustained_tx_per_second,
            ),
            GateVerdict(
                name="p99_batch_ms",
                armed=True,
                passed=report.p99_batch_ms <= MAX_P99_BATCH_MS,
                threshold=MAX_P99_BATCH_MS,
                observed=report.p99_batch_ms,
            ),
            GateVerdict(
                name="mempool_drain_speedup",
                armed=True,
                passed=drain["speedup"] >= MIN_DRAIN_SPEEDUP,
                threshold=MIN_DRAIN_SPEEDUP,
                observed=drain["speedup"],
            ),
            GateVerdict(
                name="zero_invariant_violations",
                armed=True,
                passed=report.ok,
                threshold=0.0,
                observed=float(len(report.total_violations)),
            ),
        ],
        view={
            "schema": BENCH_SCHEMA,
            "soak_batches": SOAK_BATCHES,
            "report": report.deterministic_payload(),
            "wall": {
                "elapsed_seconds": report.elapsed_seconds,
                "sustained_tx_per_second": report.sustained_tx_per_second,
                "p50_batch_ms": report.p50_batch_ms,
                "p99_batch_ms": report.p99_batch_ms,
            },
            "drain": drain,
        },
    )

    assert report.ok, f"invariant violations: {report.total_violations}"
    assert report.sustained_tx_per_second >= MIN_TX_PER_SECOND, (
        f"sustained {report.sustained_tx_per_second:.0f} tx/s below the "
        f"{MIN_TX_PER_SECOND:.0f} tx/s floor"
    )
    assert report.p99_batch_ms <= MAX_P99_BATCH_MS, (
        f"p99 batch latency {report.p99_batch_ms:.1f} ms above the "
        f"{MAX_P99_BATCH_MS:.0f} ms ceiling"
    )
    assert drain["speedup"] >= MIN_DRAIN_SPEEDUP, (
        f"heap drain only {drain['speedup']:.1f}x the full-sort baseline "
        f"(acceptance requires >= {MIN_DRAIN_SPEEDUP:.0f}x)"
    )
