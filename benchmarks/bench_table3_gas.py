"""Table III bench: PAROLE Token gas/fee rows.

Regenerates the three Table III rows from the calibrated gas model and
benchmarks the row-generation path.  Paper values asserted: 90.91% /
69.84% / 69.82% gas usage; 253 Gwei / 142k Gwei / 141k Gwei fees.
"""

import pytest

from repro.experiments import render_table3, run_table3

from conftest import BenchSeries


def test_table3_regeneration(benchmark, save_artifact, emit_bench):
    rows = benchmark(run_table3)
    assert [r.tx_type for r in rows] == ["mint", "transfer", "burn"]
    assert rows[0].gas_usage_percent == pytest.approx(90.91, abs=0.01)
    assert rows[1].gas_usage_percent == pytest.approx(69.84, abs=0.01)
    assert rows[2].gas_usage_percent == pytest.approx(69.82, abs=0.01)
    save_artifact("table3", render_table3(rows))
    emit_bench(
        "table3_gas",
        series=[
            BenchSeries(
                f"gas_usage_{row.tx_type}",
                "%",
                (row.gas_usage_percent,),
                direction="lower",
            )
            for row in rows
        ],
        benchmark=benchmark,
    )
