"""Ablation benches for the design choices DESIGN.md §5 calls out.

Not paper figures — these quantify the GENTRANSEQ design decisions:

* swap actions (the paper's choice) vs insertion actions;
* the penalty weight ``W`` of Eq. 8;
* the target-network update period of Table II;
* the Eq. 9 exponential schedule vs the paper's literal (typo) form.
"""

import pytest

from repro.analysis import format_table
from repro.config import GenTranSeqConfig
from repro.core import InsertionReorderEnv, ReorderEnv
from repro.drl import (
    DoubleDQNAgent,
    DQNAgent,
    EpsilonSchedule,
    PrioritizedDQNAgent,
    train,
)
from repro.workloads import case_study_fixture
from repro.workloads.scenarios import IFU

from conftest import BenchSeries

BUDGET = dict(episodes=10, steps_per_episode=40)


def _slug(label: str) -> str:
    return (
        label.replace(" ", "_").replace("(", "").replace(")", "")
        .replace("=", "_").replace(".", "_")
    )


def _train_on_case_study(env_cls, config, agent_cls=DQNAgent):
    workload = case_study_fixture()
    env = env_cls(
        pre_state=workload.pre_state,
        transactions=workload.transactions,
        ifus=(IFU,),
        config=config,
    )
    agent = agent_cls(env.observation_size, env.action_count, config=config)
    history = train(env, agent, config)
    return env, history


def test_ablation_swap_vs_insertion(benchmark, save_artifact, emit_bench):
    """The paper's swap-action MDP vs the insertion-action variant."""
    config = GenTranSeqConfig(seed=3, **BUDGET)

    def run():
        rows = []
        for name, env_cls in (
            ("swap (paper)", ReorderEnv),
            ("insertion", InsertionReorderEnv),
        ):
            env, history = _train_on_case_study(env_cls, config)
            solutions = history.first_profit_steps()
            rows.append(
                (
                    name,
                    env.action_count,
                    f"{history.best_profit:.4f}",
                    f"{min(solutions) if solutions else '-'}",
                    len(solutions),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "ablation_swap_vs_insertion",
        format_table(
            ("Action space", "#actions", "Best profit (ETH)",
             "Min solution size", "Episodes w/ solution"),
            rows,
        ),
    )
    emit_bench(
        "ablation_swap_vs_insertion",
        series=[
            BenchSeries(
                f"best_profit_{_slug(row[0])}", "ETH", (float(row[2]),)
            )
            for row in rows
        ],
        benchmark=benchmark,
    )
    # Both action spaces must be able to exploit the case study.
    assert all(float(row[2]) > 0 for row in rows)
    # Insertion has the larger action space (N(N-1) vs N(N-1)/2).
    assert rows[1][1] == 2 * rows[0][1]


def test_ablation_penalty_weight(benchmark, save_artifact, emit_bench):
    """Eq. 8's W: how hard to punish infeasible/losing orders."""

    def run():
        rows = []
        for weight in (1.0, 10.0, 50.0):
            config = GenTranSeqConfig(seed=3, penalty_weight=weight, **BUDGET)
            _, history = _train_on_case_study(ReorderEnv, config)
            rows.append(
                (
                    f"W={weight:g}",
                    f"{history.best_profit:.4f}",
                    f"{sum(history.rewards) / len(history.rewards):.0f}",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "ablation_penalty_weight",
        format_table(("Penalty", "Best profit (ETH)", "Mean episode reward"), rows),
    )
    emit_bench(
        "ablation_penalty_weight",
        series=[
            BenchSeries(
                f"best_profit_{_slug(row[0])}", "ETH", (float(row[1]),)
            )
            for row in rows
        ],
        benchmark=benchmark,
    )
    # All weights complete and the paper's W>1 setting still finds profit.
    assert all(float(row[1]) >= 0 for row in rows)
    assert float(rows[1][1]) > 0  # W=10 (library default)
    # Stronger penalties push mean episode reward down (more negative).
    assert float(rows[2][2]) <= float(rows[0][2])


def test_ablation_target_network_period(benchmark, save_artifact, emit_bench):
    """Table II updates the target network every 30 steps; vary it."""

    def run():
        rows = []
        for period in (5, 30, 10_000):
            config = GenTranSeqConfig(
                seed=3, target_network_update_every=period, **BUDGET
            )
            _, history = _train_on_case_study(ReorderEnv, config)
            label = "never (10k)" if period == 10_000 else f"every {period}"
            rows.append((label, f"{history.best_profit:.4f}"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "ablation_target_period",
        format_table(("Target update", "Best profit (ETH)"), rows),
    )
    emit_bench(
        "ablation_target_period",
        series=[
            BenchSeries(
                f"best_profit_{_slug(row[0])}", "ETH", (float(row[1]),)
            )
            for row in rows
        ],
        benchmark=benchmark,
    )
    assert len(rows) == 3
    assert all(float(row[1]) >= 0 for row in rows)


def test_ablation_dqn_variants(benchmark, save_artifact, emit_bench):
    """Vanilla DQN (the paper) vs Double DQN vs prioritized replay."""
    config = GenTranSeqConfig(seed=3, **BUDGET)

    def run():
        rows = []
        for name, agent_cls in (
            ("vanilla (paper)", DQNAgent),
            ("double", DoubleDQNAgent),
            ("prioritized", PrioritizedDQNAgent),
        ):
            _, history = _train_on_case_study(ReorderEnv, config, agent_cls)
            rows.append(
                (
                    name,
                    f"{history.best_profit:.4f}",
                    len(history.first_profit_steps()),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "ablation_dqn_variants",
        format_table(
            ("Agent", "Best profit (ETH)", "Episodes w/ solution"), rows
        ),
    )
    emit_bench(
        "ablation_dqn_variants",
        series=[
            BenchSeries(
                f"best_profit_{_slug(row[0])}", "ETH", (float(row[1]),)
            )
            for row in rows
        ],
        benchmark=benchmark,
    )
    # All variants must exploit the case study within the budget.
    assert all(float(row[1]) > 0 for row in rows)


def test_ablation_epsilon_schedule_modes(benchmark, save_artifact, emit_bench):
    """Eq. 9 as printed grows above 1; the exponential fix decays."""

    def run():
        exponential = EpsilonSchedule(
            epsilon_max=0.95, epsilon_min=0.01, decay=0.05
        )
        literal = EpsilonSchedule(
            epsilon_max=0.95, epsilon_min=0.01, decay=0.05, mode="literal"
        )
        return (
            [exponential.value(i) for i in (0, 25, 50, 99)],
            [literal.value(i) for i in (0, 25, 50, 99)],
        )

    exp_values, lit_values = benchmark(run)
    save_artifact(
        "ablation_epsilon_schedule",
        format_table(
            ("Episode", "Exponential (ours)", "Literal Eq. 9 (clamped)"),
            [
                (episode, f"{e:.4f}", f"{l:.4f}")
                for episode, e, l in zip((0, 25, 50, 99), exp_values, lit_values)
            ],
        ),
    )
    emit_bench(
        "ablation_epsilon_schedule",
        series=[
            BenchSeries(
                "exponential_eps", "epsilon", exp_values, direction="lower"
            ),
            BenchSeries("literal_eps", "epsilon", lit_values, direction="lower"),
        ],
        benchmark=benchmark,
    )
    # The exponential schedule decays toward eps_min...
    assert exp_values[0] > exp_values[-1]
    assert exp_values[-1] == pytest.approx(0.01, abs=0.01)
    # ...while the literal formula never decays (clamps at eps_max).
    assert all(v == pytest.approx(0.95) for v in lit_values)
