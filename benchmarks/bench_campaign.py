"""Campaign bench (extension): training transfer across rounds.

Measures a persistent-agent campaign against fresh-agent rounds on the
same workload stream.  Asserts the campaign machinery itself: identical
first rounds, accumulating experience, bounded hit rate.  The cold
rounds fan out over the execution fabric (auto-sized to the machine);
results are backend-independent, so the assertions hold either way.
"""

import pytest

from repro.analysis import format_table
from repro.config import GenTranSeqConfig, WorkloadConfig
from repro.core import cold_vs_warm
from repro.parallel import AutoRunner

from conftest import BenchSeries

WORKLOAD = WorkloadConfig(
    mempool_size=10, num_users=8, num_ifus=1, min_ifu_involvement=3, seed=0
)
GTS = GenTranSeqConfig(episodes=4, steps_per_episode=25, seed=0)


def _run():
    with AutoRunner() as runner:
        return cold_vs_warm(WORKLOAD, GTS, rounds=4, runner=runner)


def test_campaign_cold_vs_warm(benchmark, save_artifact, emit_bench):
    cold, warm = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [
        (
            record.round_index,
            f"{cold.rounds[record.round_index].profit_eth:.4f}",
            f"{record.profit_eth:.4f}",
        )
        for record in warm.rounds
    ]
    save_artifact(
        "campaign_cold_vs_warm",
        format_table(("Round", "Cold profit (ETH)", "Warm profit (ETH)"), rows)
        + f"\ncold total: {cold.total_profit_eth:.4f} ETH"
        + f"\nwarm total: {warm.total_profit_eth:.4f} ETH",
    )

    emit_bench(
        "campaign",
        series=[
            BenchSeries("cold_total_profit", "ETH", (cold.total_profit_eth,)),
            BenchSeries("warm_total_profit", "ETH", (warm.total_profit_eth,)),
            BenchSeries("warm_hit_rate", "fraction", (warm.hit_rate,)),
        ],
        benchmark=benchmark,
    )

    assert len(cold.rounds) == len(warm.rounds) == 4
    # Round 0 is identical by construction (same seed, untrained agent).
    assert cold.rounds[0].profit_eth == pytest.approx(warm.rounds[0].profit_eth)
    assert 0.0 <= warm.hit_rate <= 1.0
    assert warm.total_profit_eth >= 0.0
