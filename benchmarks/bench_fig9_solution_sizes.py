"""Figure 9 bench: KDE of solution sizes (swaps to first solution).

Collects first-solution swap counts at benchmark scale and fits the KDE
curves.  Shape checks: solutions exist for the single-IFU case and the
distributions spread (weakly) as more IFUs are served.
"""


from repro.experiments import EffortPreset, render_fig9, run_fig9

from conftest import BenchSeries

BENCH = EffortPreset(name="bench", episodes=6, steps_per_episode=40, trials=2)


def _run():
    return run_fig9(
        mempool_sizes=(12,),
        ifu_counts=(1, 2),
        preset=BENCH,
        seed=0,
    )


def test_fig9_solution_sizes(benchmark, save_artifact, emit_bench):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_artifact("fig9_solution_sizes", render_fig9(curves))
    emit_bench(
        "fig9_solution_sizes",
        series=[
            BenchSeries(
                f"solution_sizes_{curve.num_ifus}ifus",
                "swaps",
                tuple(float(s) for s in curve.solution_sizes),
                direction="lower",
                meta={"num_ifus": curve.num_ifus},
            )
            for curve in curves
        ],
        benchmark=benchmark,
    )

    assert len(curves) == 2
    single = next(c for c in curves if c.num_ifus == 1)

    # The single-IFU case must find profitable solutions.
    assert len(single.solution_sizes) > 0
    assert single.kde is not None

    # Solution sizes are bounded by the episode step cap.
    for curve in curves:
        assert all(
            1 <= size <= BENCH.steps_per_episode
            for size in curve.solution_sizes
        )

    # The KDE's mode sits at a small swap count (paper: ~5 for 1 IFU).
    assert single.mode is not None
    assert single.mode <= BENCH.steps_per_episode / 2
