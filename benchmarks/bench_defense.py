"""Section VIII bench (extension): detection + minimal demotion.

Sweeps the profit threshold over attacked mempools: lower thresholds
must flag at least as often as higher ones, and resolved rounds must end
below threshold.
"""


from repro.experiments import EffortPreset, render_defense_eval, run_defense_eval

from conftest import BenchSeries

BENCH = EffortPreset(name="bench", episodes=4, steps_per_episode=25, trials=1)


def _run():
    return run_defense_eval(
        thresholds=(0.01, 0.3),
        rounds=2,
        mempool_size=10,
        preset=BENCH,
        seed=0,
    )


def test_defense_threshold_sweep(benchmark, save_artifact, emit_bench):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_artifact("defense_eval", render_defense_eval(points))
    emit_bench(
        "defense_eval",
        series=[
            BenchSeries(
                "detection_rate",
                "fraction",
                tuple(p.detection_rate for p in points),
            ),
            BenchSeries(
                "mean_residual_profit",
                "ETH",
                tuple(p.mean_residual_profit_eth for p in points),
                direction="lower",
            ),
        ],
        benchmark=benchmark,
    )

    assert len(points) == 2
    low, high = points
    # Lower threshold flags at least as often.
    assert low.detection_rate >= high.detection_rate
    # Residual profit after mitigation never exceeds the pre-mitigation
    # worst case by construction.
    assert all(p.mean_residual_profit_eth >= 0 for p in points)


def test_order_commitment_alternative(benchmark, save_artifact, emit_bench):
    """The protocol-level fix: order commitments catch the attack with
    one extra digest per batch — contrast with the probe-based defense,
    which costs a GENTRANSEQ run per pending batch."""
    import time

    from repro.analysis import format_table
    from repro.config import AttackConfig, GenTranSeqConfig
    from repro.core import ParoleAttack
    from repro.defense import OrderCheckingVerifier, commit_with_order
    from repro.workloads import case_study_fixture

    def run():
        workload = case_study_fixture()
        attack = ParoleAttack(
            config=AttackConfig(
                ifu_accounts=workload.ifus,
                gentranseq=GenTranSeqConfig(
                    episodes=6, steps_per_episode=30, seed=3
                ),
            )
        )
        outcome = attack.run(workload.pre_state, workload.transactions)
        verifier = OrderCheckingVerifier("order-watcher")

        started = time.perf_counter()
        committed = commit_with_order(
            "evil", workload.pre_state, workload.transactions,
            executed_order=outcome.executed_sequence,
        )
        report = verifier.inspect_committed(committed, workload.pre_state)
        check_cost = time.perf_counter() - started
        return outcome, report, check_cost

    outcome, report, check_cost = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "defense_order_commitment",
        format_table(
            ("Quantity", "Value"),
            [
                ("attack fired", str(outcome.attacked)),
                ("attack profit (undefended)", f"{outcome.profit:.4f} ETH"),
                ("state fraud detected", str(report.execution.should_challenge)),
                ("ordering violation detected", str(not report.order_respected)),
                ("challenge raised", str(report.should_challenge)),
                ("verification cost", f"{check_cost * 1000:.2f} ms"),
            ],
        ),
    )
    emit_bench(
        "defense_order_commitment",
        series=[
            BenchSeries(
                "verification_seconds", "s", (check_cost,), direction="lower"
            ),
            BenchSeries("attack_profit", "ETH", (outcome.profit,)),
        ],
        benchmark=benchmark,
    )
    assert outcome.attacked
    assert not report.execution.should_challenge  # execution was honest
    assert report.should_challenge                # ordering was not
    assert check_cost < 1.0                       # near-free check
