"""Figure 8 bench: DQN learning curves across exploration settings.

Trains agents with epsilon starting at {0, 0.5, 1} (1 IFU panel) at
benchmark scale.  The paper's headline observation — pure exploitation
(eps=0) gets trapped in a local optimum while exploration finds better
solutions — is asserted on the best profit each agent discovers.  A
faster epsilon decay (0.3) compresses the paper's 100-episode schedule
into the benchmark's budget.
"""


from repro.analysis import moving_average
from repro.experiments import EffortPreset, render_fig8, run_fig8

from conftest import BenchSeries

BENCH = EffortPreset(name="bench", episodes=12, steps_per_episode=40, trials=1)


def _run():
    return run_fig8(
        epsilons=(0.0, 0.5, 1.0),
        ifu_counts=(1,),
        mempool_size=12,
        preset=BENCH,
        seed=0,
        epsilon_decay=0.3,
    )


def test_fig8_learning_curves(benchmark, save_artifact, emit_bench):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_artifact("fig8_learning_curves", render_fig8(series))
    emit_bench(
        "fig8_learning_curves",
        series=[
            BenchSeries(
                f"best_profit_eps{curve.epsilon:g}",
                "ETH",
                (curve.best_profit,),
                meta={"epsilon": curve.epsilon},
            )
            for curve in series
        ],
        benchmark=benchmark,
    )

    assert len(series) == 3
    by_eps = {curve.epsilon: curve for curve in series}

    # Moving average has window-9 semantics (same length as the input).
    for curve in series:
        assert len(curve.moving_avg) == BENCH.episodes
        assert curve.moving_avg == tuple(
            moving_average(curve.episode_rewards, 9)
        )

    # Shape (paper Fig. 8 discussion): exploration escapes the local
    # optimum pure exploitation is trapped in — the exploring agents
    # find at least as much profit, and eps=1 finds strictly more.
    assert by_eps[1.0].best_profit >= by_eps[0.5].best_profit >= 0.0
    assert by_eps[1.0].best_profit > by_eps[0.0].best_profit
